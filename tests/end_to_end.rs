//! End-to-end integration: SQL → engine → communication layer → simulated
//! devices, verifying the paper's §6.2 behaviour at the system boundary.

use aorta::{Aorta, EngineConfig};
use aorta_device::{DeviceId, DeviceKind, PervasiveLab, PhotoOutcome};
use aorta_sim::SimDuration;

fn eventful_lab() -> PervasiveLab {
    PervasiveLab::standard().with_periodic_events(SimDuration::from_mins(1), SimDuration::ZERO)
}

fn ten_queries(aorta: &mut Aorta) {
    for i in 0..10 {
        aorta
            .execute_sql(&format!(
                r#"CREATE AQ snapshot_{i} AS
                   SELECT photo(c.ip, s.loc, "photos/admin")
                   FROM sensor s, camera c
                   WHERE s.accel_x > 500 AND s.id = {i} AND coverage(c.id, s.loc)"#
            ))
            .expect("valid §6.2 query");
    }
}

#[test]
fn synchronized_run_has_no_interference_outcomes() {
    let mut aorta = Aorta::with_lab(EngineConfig::seeded(1), eventful_lab());
    ten_queries(&mut aorta);
    aorta.run_for(SimDuration::from_mins(5));
    aorta.run_for(SimDuration::from_secs(30));
    let stats = aorta.stats();
    // Locking makes concurrent interference impossible: no photo may be
    // blurred or taken at a wrong position.
    assert_eq!(stats.photos_blurred, 0, "{stats:?}");
    assert_eq!(stats.photos_wrong, 0, "{stats:?}");
    assert_eq!(stats.busy_rejections, 0, "{stats:?}");
    assert!(stats.photos_ok > 30, "{stats:?}");
    assert!(stats.lock_acquisitions > 0);
}

#[test]
fn unsynchronized_run_shows_the_papers_interference() {
    let mut aorta = Aorta::with_lab(EngineConfig::seeded(2).without_sync(), eventful_lab());
    ten_queries(&mut aorta);
    aorta.run_for(SimDuration::from_mins(5));
    aorta.run_for(SimDuration::from_secs(30));
    let stats = aorta.stats();
    // "More than half of the action requests failed …, resulted in blurred
    // photos, or took photos at wrong positions" (§6.2).
    let rate = stats.failure_rate().expect("requests were made");
    assert!(
        rate > 0.5,
        "expected >50% failures, got {:.1}%",
        rate * 100.0
    );
    assert!(
        stats.photos_blurred + stats.photos_wrong + stats.busy_rejections > 0,
        "interference must be visible: {stats:?}"
    );
}

#[test]
fn photos_point_at_the_triggering_motes() {
    let mut aorta = Aorta::with_lab(EngineConfig::seeded(3), eventful_lab());
    aorta
        .execute_sql(
            r#"CREATE AQ one AS
               SELECT photo(c.ip, s.loc, "photos")
               FROM sensor s, camera c
               WHERE s.accel_x > 500 AND s.id = 4 AND coverage(c.id, s.loc)"#,
        )
        .unwrap();
    aorta.run_for(SimDuration::from_mins(2));
    aorta.run_for(SimDuration::from_secs(30));

    let mote_loc = aorta
        .registry()
        .get(DeviceId::sensor(4))
        .unwrap()
        .sim
        .location()
        .unwrap();
    let mut photos = 0;
    for i in 0..2 {
        let entry = aorta
            .registry()
            .get(DeviceId::new(DeviceKind::Camera, i))
            .unwrap();
        let cam = entry.sim.as_camera().unwrap();
        for photo in cam.photos() {
            photos += 1;
            assert_eq!(photo.outcome, PhotoOutcome::Ok);
            // The photo's head target equals the camera's aim at the mote.
            let expected = cam.spec().clamp(cam.aim_at(&mote_loc));
            assert!(
                (photo.target.pan - expected.pan).abs() < 1e-6,
                "photo aimed at {} but mote is at {}",
                photo.target,
                expected
            );
        }
    }
    assert!(photos >= 2, "two minutes of events should yield photos");
}

#[test]
fn device_leave_and_rejoin_is_handled() {
    let mut aorta = Aorta::with_lab(EngineConfig::seeded(4), eventful_lab());
    ten_queries(&mut aorta);
    aorta.run_for(SimDuration::from_secs(90));
    let mid_stats = aorta.stats();
    assert!(mid_stats.executed > 0);

    // Camera 1 leaves the network; camera 0 still covers every mote.
    aorta.registry_mut().set_online(DeviceId::camera(1), false);
    aorta.run_for(SimDuration::from_mins(2));
    let one_cam = aorta.stats();
    assert!(
        one_cam.executed > mid_stats.executed,
        "the remaining camera keeps servicing requests"
    );

    // It rejoins; probes see it again.
    aorta.registry_mut().set_online(DeviceId::camera(1), true);
    aorta.run_for(SimDuration::from_mins(2));
    let back = aorta.stats();
    assert!(back.executed > one_cam.executed);
}

#[test]
fn shared_operator_spans_queries() {
    let mut aorta = Aorta::with_lab(EngineConfig::seeded(5), eventful_lab());
    ten_queries(&mut aorta);
    aorta.run_for(SimDuration::from_mins(2));
    let op = aorta.shared_operator("photo").expect("photo is shared");
    assert_eq!(
        op.subscriber_count(),
        10,
        "all ten queries share one operator"
    );
    assert!(op.total_enqueued() >= 10);
}

#[test]
fn dropping_a_query_stops_its_requests() {
    let mut aorta = Aorta::with_lab(EngineConfig::seeded(6), eventful_lab());
    aorta
        .execute_sql(
            r#"CREATE AQ short_lived AS
               SELECT photo(c.ip, s.loc, "p")
               FROM sensor s, camera c
               WHERE s.accel_x > 500 AND coverage(c.id, s.loc)"#,
        )
        .unwrap();
    aorta.run_for(SimDuration::from_mins(2));
    let before = aorta.stats().requests;
    assert!(before > 0);
    aorta.execute_sql("DROP AQ short_lived").unwrap();
    aorta.run_for(SimDuration::from_mins(3));
    assert_eq!(aorta.stats().requests, before, "no new requests after DROP");
}

#[test]
fn probing_disabled_still_executes() {
    let mut aorta = Aorta::with_lab(EngineConfig::seeded(8).without_probing(), eventful_lab());
    ten_queries(&mut aorta);
    aorta.run_for(SimDuration::from_mins(3));
    let stats = aorta.stats();
    assert!(stats.executed > 0);
    assert_eq!(stats.probes, 0, "probing disabled sends no probes");
}
