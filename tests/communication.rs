//! Wire-level integration of the uniform data communication layer: the
//! basic communication methods (§3.3), per-device-type link asymmetries,
//! and the network-data-independence property — the engine sees identical
//! tuples regardless of which protocol carried them.

use aorta::net::{Channel, DeviceRegistry, Message, ScanOperator};
use aorta_data::Value;
use aorta_device::{DeviceKind, PervasiveLab};
use aorta_sim::{LinkModel, SimDuration, SimRng, SimTime};

#[test]
fn per_kind_links_have_the_expected_asymmetry() {
    let registry = DeviceRegistry::new();
    // The mote radio is slower and lossier than camera Ethernet; the cell
    // link has the highest base latency.
    let camera = registry.link(DeviceKind::Camera);
    let sensor = registry.link(DeviceKind::Sensor);
    let phone = registry.link(DeviceKind::Phone);
    assert!(sensor.loss_prob() > camera.loss_prob());
    assert!(phone.base_latency() > sensor.base_latency());
    assert!(sensor.base_latency() > camera.base_latency());
}

#[test]
fn connect_send_receive_close_over_every_kind() {
    let registry = DeviceRegistry::new();
    let mut rng = SimRng::seed(1);
    for kind in DeviceKind::ALL {
        let channel = Channel::new(registry.link(kind).clone());
        // Retry the handshake a few times; only per-message loss can fail it.
        let mut connected = false;
        for _ in 0..20 {
            if channel.connect(&mut rng).is_some() {
                connected = true;
                break;
            }
        }
        assert!(connected, "{kind}: connect never succeeded in 20 tries");
        channel.close(&mut rng);
    }
}

#[test]
fn bigger_payloads_cost_more_on_slow_links() {
    let registry = DeviceRegistry::new();
    let channel = Channel::new(registry.link(DeviceKind::Sensor).clone());
    let small = Message::ReadAttrs {
        names: vec!["temp".into()],
    };
    let big = Message::ReadAttrs {
        names: (0..40).map(|i| format!("attribute_number_{i}")).collect(),
    };
    // Compare expected serialization cost through wire_len (the link charges
    // per byte at the MICA2 radio's ~4.8 kB/s).
    assert!(big.wire_len() > small.wire_len() * 10);
    let mut rng = SimRng::seed(2);
    let mut small_sum = SimDuration::ZERO;
    let mut big_sum = SimDuration::ZERO;
    let mut pairs = 0;
    for _ in 0..200 {
        if let (Some(a), Some(b)) = (channel.send(&small, &mut rng), channel.send(&big, &mut rng)) {
            small_sum += a;
            big_sum += b;
            pairs += 1;
        }
    }
    assert!(pairs > 100, "loss should be rare enough to sample");
    assert!(
        big_sum > small_sum + SimDuration::from_millis(10) * pairs,
        "per-byte cost must dominate: {small_sum} vs {big_sum}"
    );
}

#[test]
fn network_data_independence_across_protocols() {
    // The same logical view — one tuple per device, same schema discipline —
    // regardless of whether the wire is Ethernet, a mesh radio or a cell
    // link with wildly different parameters.
    let mut registry = DeviceRegistry::from_lab(PervasiveLab::standard());
    // Make every link ideal: the *content* must not change, only timing.
    for kind in DeviceKind::ALL {
        registry.set_link(kind, LinkModel::ideal());
    }
    let mut rng = SimRng::seed(3);
    for kind in [DeviceKind::Camera, DeviceKind::Sensor, DeviceKind::Phone] {
        let tuples = ScanOperator::new(kind).run(&mut registry, SimTime::ZERO, &mut rng);
        let schema = registry.schema(kind).clone();
        for t in &tuples {
            assert_eq!(schema.check(t), Ok(()), "{kind}");
            // The id attribute is always first and non-null.
            assert!(matches!(t.get(0), Some(Value::Int(_))), "{kind}");
        }
    }
}

#[test]
fn devices_joining_mid_run_become_eligible_for_selection() {
    use aorta::{Aorta, EngineConfig};
    use aorta_data::Location;
    use aorta_device::{Camera, CameraFailureModel, CameraSpec, Mote, SpikeModel};

    // Start with a single, distant camera and a mote spiking once a minute.
    let mut registry = DeviceRegistry::new();
    registry.register(
        Camera::new(
            0,
            CameraSpec::axis_2130(),
            Location::new(1.0, 1.0, 3.0),
            90.0,
            CameraFailureModel::reliable(),
        )
        .into(),
        SimTime::ZERO,
    );
    registry.register(
        Mote::new(0, Location::new(8.0, 5.0, 1.0), 1)
            .with_per_hop_loss(0.0)
            .with_spikes(SpikeModel::Periodic {
                period: SimDuration::from_mins(1),
                offset: SimDuration::from_secs(5),
                width: SimDuration::from_secs(8),
            })
            .into(),
        SimTime::ZERO,
    );
    let mut aorta = Aorta::with_registry(EngineConfig::seeded(41), registry);
    aorta
        .execute_sql(
            r#"CREATE AQ q AS
               SELECT photo(c.ip, s.loc, "p")
               FROM sensor s, camera c
               WHERE s.accel_x > 500"#,
        )
        .unwrap();
    aorta.run_for(SimDuration::from_mins(3));
    assert!(
        aorta.trace().any("dispatch", "assigned to camera-0"),
        "the founding camera should be serving requests before the join"
    );
    assert!(
        !aorta.trace().any("dispatch", "camera-1"),
        "camera-1 does not exist yet"
    );

    // A new camera joins mid-run while the founding one goes dark: device
    // selection must pick the newcomer up on the very next sampling scans
    // rather than serving from a membership snapshot taken at engine start.
    let now = aorta.now();
    aorta.registry_mut().register(
        Camera::new(
            1,
            CameraSpec::axis_2130(),
            Location::new(8.0, 4.5, 3.0),
            90.0,
            CameraFailureModel::reliable(),
        )
        .into(),
        now,
    );
    aorta
        .registry_mut()
        .set_online(aorta_device::DeviceId::camera(0), false);
    let before = aorta.stats();
    aorta.run_for(SimDuration::from_mins(3));
    let after = aorta.stats();
    assert!(
        aorta.trace().any("dispatch", "assigned to camera-1"),
        "the newcomer is the only live camera and must win assignments \
         once registered:\n{}",
        aorta.trace().render()
    );
    assert!(
        after.executed > before.executed,
        "requests after the join must actually execute: {after:?}"
    );
    assert_eq!(
        after.no_candidate, before.no_candidate,
        "no event should go unserved while the newcomer is online"
    );
}

#[test]
fn probe_messages_round_trip_device_status() {
    use aorta::net::endpoint;
    use aorta_device::{PhysicalStatus, PtzPosition};

    // The probe reply crosses the wire as flat floats and reconstructs.
    let status = PhysicalStatus::CameraHead(PtzPosition::new(-33.0, 5.0, 0.75));
    let reply = endpoint::probe_reply(&status);
    let bytes = reply.encode();
    let decoded = Message::decode(bytes).expect("probe replies decode");
    let Message::ProbeReply { fields } = decoded else {
        panic!("expected a probe reply");
    };
    let back = endpoint::camera_status_from_fields(&fields).expect("3 fields");
    assert_eq!(back, status);
}
