//! Soak test: two simulated hours of a busy deployment — counters stay
//! consistent, locks drain, photo outcomes account for every accepted
//! command, and the virtual clock holds up over long horizons.

use aorta::{Aorta, EngineConfig};
use aorta_device::{DeviceKind, PervasiveLab};
use aorta_sim::SimDuration;

#[test]
fn two_simulated_hours_stay_consistent() {
    let lab = PervasiveLab::with_sizes(4, 20, 1)
        .with_periodic_events(SimDuration::from_secs(90), SimDuration::from_secs(4));
    let mut aorta = Aorta::with_lab(EngineConfig::seeded(2026), lab);
    aorta.disable_trace();
    aorta
        .execute_sql(
            r#"CREATE AQ watch AS
               SELECT photo(c.ip, s.loc, "photos/soak")
               FROM sensor s, camera c
               WHERE s.accel_x > 500 AND coverage(c.id, s.loc)"#,
        )
        .unwrap();
    aorta
        .execute_sql(
            r#"CREATE AQ alert AS
               SELECT sendphoto(p.number, "photos/soak/latest.jpg")
               FROM sensor s, phone p
               WHERE s.accel_x > 500 AND p.in_coverage = TRUE"#,
        )
        .unwrap();

    aorta.run_for(SimDuration::from_mins(120));
    // Drain: queued executions can start up to request_timeout (30 s) after
    // their event and then run for seconds more.
    aorta.run_for(SimDuration::from_mins(2));
    let stats = aorta.stats();

    // 20 motes × ~80 spikes over two hours, detected once per query
    // (events_detected counts per-query rising edges), one request each.
    assert!(stats.events_detected >= 1_000, "{stats:?}");
    assert_eq!(stats.requests, stats.events_detected, "{stats:?}");

    // Every request is accounted for exactly once — modulo the handful
    // whose events fired in the final seconds and are still queued.
    let accounted = stats.executed
        + stats.connect_failures
        + stats.busy_rejections
        + stats.no_candidate
        + stats.timed_out
        + stats.out_of_range
        + stats.action_errors;
    let pending_tail = (stats.requests + stats.retries).saturating_sub(accounted);
    assert!(pending_tail <= 10, "tail {pending_tail}: {stats:?}");

    // Every accepted photo command produced a photo record with an outcome.
    let photos = stats.photos_ok + stats.photos_blurred + stats.photos_wrong;
    assert_eq!(
        photos + stats.messages_delivered,
        stats.executed,
        "{stats:?}"
    );

    // With synchronization on, no interference outcomes even after hours.
    assert_eq!(stats.photos_blurred + stats.photos_wrong, 0, "{stats:?}");

    // All locks have drained by a minute after the last event.
    let now = aorta.now();
    for entry in aorta.registry().of_kind(DeviceKind::Camera) {
        assert!(
            !aorta.locks().is_locked(entry.sim.id(), now),
            "{} still locked at {now}",
            entry.sim.id()
        );
    }

    // The engine stayed responsive: mean latency bounded.
    let latency = stats.mean_action_latency.expect("work happened");
    assert!(latency < SimDuration::from_secs(20), "{latency}");

    // Rising-edge state is bounded by live (query, source) pairs — it must
    // not grow with time (2 queries over ≤ 25 devices here, even after two
    // hours of epochs).
    assert!(
        aorta.rising_edge_entries() <= 2 * 25,
        "edge map leaked: {} entries",
        aorta.rising_edge_entries()
    );
    // ... and deregistration reclaims it: after dropping both queries no
    // entry survives, so register/drop churn cannot leak either.
    aorta.execute_sql("DROP AQ watch").unwrap();
    aorta.execute_sql("DROP AQ alert").unwrap();
    assert_eq!(aorta.rising_edge_entries(), 0, "drop must GC edge state");
}
