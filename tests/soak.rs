//! Soak test: two simulated hours of a busy deployment — counters stay
//! consistent, locks drain, photo outcomes account for every accepted
//! command, and the virtual clock holds up over long horizons.

use aorta::engine::{AqPlan, Catalog};
use aorta::sql::ast::Statement;
use aorta::{Aorta, EngineConfig};
use aorta_device::{DeviceKind, PervasiveLab};
use aorta_sim::SimDuration;

#[test]
fn two_simulated_hours_stay_consistent() {
    let lab = PervasiveLab::with_sizes(4, 20, 1)
        .with_periodic_events(SimDuration::from_secs(90), SimDuration::from_secs(4));
    let mut aorta = Aorta::with_lab(EngineConfig::seeded(2026), lab);
    aorta.disable_trace();
    aorta
        .execute_sql(
            r#"CREATE AQ watch AS
               SELECT photo(c.ip, s.loc, "photos/soak")
               FROM sensor s, camera c
               WHERE s.accel_x > 500 AND coverage(c.id, s.loc)"#,
        )
        .unwrap();
    aorta
        .execute_sql(
            r#"CREATE AQ alert AS
               SELECT sendphoto(p.number, "photos/soak/latest.jpg")
               FROM sensor s, phone p
               WHERE s.accel_x > 500 AND p.in_coverage = TRUE"#,
        )
        .unwrap();

    aorta.run_for(SimDuration::from_mins(120));
    // Drain: queued executions can start up to request_timeout (30 s) after
    // their event and then run for seconds more.
    aorta.run_for(SimDuration::from_mins(2));
    let stats = aorta.stats();

    // 20 motes × ~80 spikes over two hours, detected once per query
    // (events_detected counts per-query rising edges), one request each.
    assert!(stats.events_detected >= 1_000, "{stats:?}");
    assert_eq!(stats.requests, stats.events_detected, "{stats:?}");

    // Every request is accounted for exactly once — modulo the handful
    // whose events fired in the final seconds and are still queued.
    let accounted = stats.executed
        + stats.connect_failures
        + stats.busy_rejections
        + stats.no_candidate
        + stats.timed_out
        + stats.out_of_range
        + stats.action_errors;
    let pending_tail = (stats.requests + stats.retries).saturating_sub(accounted);
    assert!(pending_tail <= 10, "tail {pending_tail}: {stats:?}");

    // Every accepted photo command produced a photo record with an outcome.
    let photos = stats.photos_ok + stats.photos_blurred + stats.photos_wrong;
    assert_eq!(
        photos + stats.messages_delivered,
        stats.executed,
        "{stats:?}"
    );

    // With synchronization on, no interference outcomes even after hours.
    assert_eq!(stats.photos_blurred + stats.photos_wrong, 0, "{stats:?}");

    // All locks have drained by a minute after the last event.
    let now = aorta.now();
    for entry in aorta.registry().of_kind(DeviceKind::Camera) {
        assert!(
            !aorta.locks().is_locked(entry.sim.id(), now),
            "{} still locked at {now}",
            entry.sim.id()
        );
    }

    // The engine stayed responsive: mean latency bounded.
    let latency = stats.mean_action_latency.expect("work happened");
    assert!(latency < SimDuration::from_secs(20), "{latency}");

    // Rising-edge state is bounded by live (query, source) pairs — it must
    // not grow with time (2 queries over ≤ 25 devices here, even after two
    // hours of epochs).
    assert!(
        aorta.rising_edge_entries() <= 2 * 25,
        "edge map leaked: {} entries",
        aorta.rising_edge_entries()
    );
    // ... and deregistration reclaims it: after dropping both queries no
    // entry survives, so register/drop churn cannot leak either.
    aorta.execute_sql("DROP AQ watch").unwrap();
    aorta.execute_sql("DROP AQ alert").unwrap();
    assert_eq!(aorta.rising_edge_entries(), 0, "drop must GC edge state");
}

/// Template plans for the churn soak: a small palette of mostly-indexable,
/// never-firing predicates (plus a scalar-fallback shape) that 50k query
/// registrations share, so index growth is bounded by the palette, not by
/// the query count.
fn churn_palette() -> Vec<AqPlan> {
    let attrs = ["accel_x", "accel_y", "light", "battery", "temp"];
    let preds: Vec<String> = (0..32u64)
        .map(|k| {
            let attr = attrs[(k % 5) as usize];
            let hi = 1_000_000 + k;
            match k % 4 {
                0 => format!("s.{attr} > {hi}"),
                1 => format!("s.{attr} >= {hi}"),
                2 => format!("s.depth < 1 AND s.{attr} > {hi}"),
                _ => format!("distance(s.loc, s.loc) >= 1.5 AND s.{attr} > {hi}"),
            }
        })
        .collect();
    preds
        .iter()
        .map(|pred| {
            let sql = format!("SELECT beep(t.id) FROM sensor t, sensor s WHERE {pred}");
            let stmts = aorta::sql::parse(&sql).expect("palette parses");
            let Statement::Select(select) = stmts.into_iter().next().expect("one statement") else {
                panic!("expected SELECT");
            };
            AqPlan::plan("template", &select, &Catalog::with_builtins()).expect("palette plans")
        })
        .collect()
}

/// Churn soak: 50k AQs registered and dropped in waves while epochs keep
/// running. The predicate index must stay bounded by the palette (no growth
/// across waves), the obs counters must hold the identity
/// `indexed_evals + fallback_evals == conjunct_evals` at every checkpoint,
/// and a full drain must leave the index and edge state empty.
#[test]
fn churn_waves_keep_index_bounded_and_counters_consistent() {
    const WAVE: usize = 25_000;
    let lab = PervasiveLab::standard()
        .with_periodic_events(SimDuration::from_mins(1), SimDuration::from_secs(4));
    let mut aorta = Aorta::with_lab(EngineConfig::seeded(7_771).with_observability(), lab);
    aorta.disable_trace();
    let palette = churn_palette();

    let check_identity = |aorta: &Aorta| {
        let snap = aorta.metrics().expect("observability enabled");
        let indexed = snap.counter_total("aorta_indexed_evals");
        let fallback = snap.counter_total("aorta_fallback_evals");
        let total = snap.counter_total("aorta_conjunct_evals");
        assert_eq!(indexed + fallback, total, "eval accounting drifted");
        (indexed, fallback, total)
    };

    // Wave 1: register the first 25k, run, measure the index footprint.
    let mut next = 0usize;
    let register_wave = |aorta: &mut Aorta, n: usize, next: &mut usize| {
        for _ in 0..n {
            let mut plan = palette[*next % palette.len()].clone();
            plan.name = format!("soak{:06}", *next);
            *next += 1;
            aorta.register_query_plan(plan).expect("unique names");
        }
    };
    register_wave(&mut aorta, WAVE, &mut next);
    aorta.run_for(SimDuration::from_mins(4));
    let (cmps, groups) = (
        aorta.predicate_index().cmp_count(),
        aorta.predicate_index().group_count(),
    );
    assert!(cmps > 0 && groups > 0, "index must be populated");
    assert!(
        groups <= palette.len(),
        "groups must dedupe to the palette: {groups} > {}",
        palette.len()
    );
    assert!(
        cmps <= 4 * palette.len(),
        "comparisons must intern: {cmps} for a {}-template palette",
        palette.len()
    );
    let (i1, f1, _) = check_identity(&aorta);
    assert!(i1 > 0, "indexable palette entries must use the index");
    assert!(f1 > 0, "fallback palette entries must use scalar slots");

    // Wave 2: drop every other query, register 25k more, run again. The
    // interned footprint must not grow — churn reuses palette entries.
    for i in (0..next).step_by(2) {
        aorta.deregister_query(&format!("soak{i:06}")).unwrap();
    }
    register_wave(&mut aorta, WAVE, &mut next);
    assert_eq!(next, 2 * WAVE, "50k registrations total");
    aorta.run_for(SimDuration::from_mins(4));
    assert_eq!(
        (
            aorta.predicate_index().cmp_count(),
            aorta.predicate_index().group_count()
        ),
        (cmps, groups),
        "index footprint grew across churn waves"
    );
    check_identity(&aorta);

    // Drain: drop everything still live; index and edge state must be empty.
    for i in 0..next {
        if i % 2 == 0 && i < WAVE {
            continue; // dropped in wave 2
        }
        aorta.deregister_query(&format!("soak{i:06}")).unwrap();
    }
    assert!(aorta.predicate_index().is_empty(), "index must drain");
    assert_eq!(aorta.predicate_index().member_count(), 0);
    assert_eq!(aorta.rising_edge_entries(), 0, "edge state must drain");

    // Epochs after the drain still account correctly (pure fallback-free,
    // index-free evaluation: all three counters simply stop moving).
    let before = check_identity(&aorta);
    aorta.run_for(SimDuration::from_mins(2));
    let after = check_identity(&aorta);
    assert_eq!(before, after, "no queries => no conjunct evaluations");
}
