//! Failure-injection integration: the probing mechanism (§4) must exclude
//! unreliable devices, and the engine must degrade gracefully rather than
//! misbehave when hardware disappears.

use aorta::{Aorta, EngineConfig};
use aorta_device::{
    Camera, CameraFailureModel, CoverageModel, DeviceId, DeviceKind, Mote, PervasiveLab, Phone,
    SpikeModel,
};
use aorta_net::{DeviceRegistry, ProbeOutcome, Prober};
use aorta_sim::{LinkModel, SimDuration, SimRng, SimTime};

#[test]
fn all_cameras_offline_yields_no_candidate_failures() {
    let lab =
        PervasiveLab::standard().with_periodic_events(SimDuration::from_mins(1), SimDuration::ZERO);
    let mut aorta = Aorta::with_lab(EngineConfig::seeded(1), lab);
    aorta
        .execute_sql(
            r#"CREATE AQ q AS
               SELECT photo(c.ip, s.loc, "p")
               FROM sensor s, camera c
               WHERE s.accel_x > 500 AND coverage(c.id, s.loc)"#,
        )
        .unwrap();
    aorta.registry_mut().set_online(DeviceId::camera(0), false);
    aorta.registry_mut().set_online(DeviceId::camera(1), false);
    aorta.run_for(SimDuration::from_mins(3));
    let stats = aorta.stats();
    assert!(stats.requests > 0);
    assert_eq!(stats.executed, 0, "{stats:?}");
    assert_eq!(stats.no_candidate, stats.requests, "{stats:?}");
    assert_eq!(stats.photos_ok, 0);
}

#[test]
fn flaky_camera_is_probed_out_but_good_one_serves() {
    // Camera 0 never answers; camera 1 is perfect and covers everything.
    let mut registry = DeviceRegistry::new();
    registry.register(
        Camera::ceiling_mounted(0, aorta_data::Location::new(2.0, 3.0, 3.0))
            .with_failure(CameraFailureModel {
                connect_loss: 1.0,
                ..CameraFailureModel::reliable()
            })
            .into(),
        SimTime::ZERO,
    );
    registry.register(
        Camera::new(
            1,
            aorta_device::CameraSpec::axis_2130(),
            aorta_data::Location::new(4.0, 3.0, 3.0),
            90.0,
            CameraFailureModel::reliable(),
        )
        .into(),
        SimTime::ZERO,
    );
    registry.register(
        Mote::new(0, aorta_data::Location::new(5.0, 4.0, 1.0), 1)
            .with_per_hop_loss(0.0)
            .with_spikes(SpikeModel::Periodic {
                period: SimDuration::from_mins(1),
                offset: SimDuration::ZERO,
                width: SimDuration::from_secs(2),
            })
            .into(),
        SimTime::ZERO,
    );
    let mut aorta = Aorta::with_registry(EngineConfig::seeded(2), registry);
    aorta
        .execute_sql(
            r#"CREATE AQ q AS
               SELECT photo(c.ip, s.loc, "p")
               FROM sensor s, camera c
               WHERE s.accel_x > 500 AND coverage(c.id, s.loc)"#,
        )
        .unwrap();
    aorta.run_for(SimDuration::from_mins(4));
    aorta.run_for(SimDuration::from_secs(30));
    let stats = aorta.stats();
    assert!(stats.executed >= 3, "{stats:?}");
    assert!(stats.probe_timeouts > 0, "dead camera must time out probes");
    let cam0 = aorta.registry().get(DeviceId::camera(0)).unwrap();
    assert!(cam0.sim.as_camera().unwrap().photos().is_empty());
    let cam1 = aorta.registry().get(DeviceId::camera(1)).unwrap();
    assert!(!cam1.sim.as_camera().unwrap().photos().is_empty());
}

#[test]
fn deep_lossy_motes_degrade_scan_but_not_correctness() {
    let mut registry = DeviceRegistry::new();
    for i in 0..5 {
        registry.register(
            Mote::new(i, aorta_data::Location::new(i as f64, 1.0, 1.0), 5)
                .with_per_hop_loss(0.35)
                .into(),
            SimTime::ZERO,
        );
    }
    let scan = aorta_net::ScanOperator::new(DeviceKind::Sensor);
    let mut rng = SimRng::seed(3);
    let tuples = scan.run(&mut registry, SimTime::ZERO, &mut rng);
    assert_eq!(tuples.len(), 5, "tuples exist even when sensory reads fail");
    let schema = registry.schema(DeviceKind::Sensor).clone();
    let accel_idx = schema.index_of("accel_x").unwrap();
    let nulls = tuples
        .iter()
        .filter(|t| t.get(accel_idx) == Some(&aorta_data::Value::Null))
        .count();
    assert!(nulls > 0, "a 5-hop 35%-loss path must lose some reads");
    for t in &tuples {
        assert_eq!(schema.check(t), Ok(()), "NULLed tuples still type-check");
    }
}

#[test]
fn out_of_coverage_phone_fails_probe_and_delivery() {
    let mut registry = DeviceRegistry::new();
    registry.register(
        Phone::new(0, "852-5555-0000")
            .with_coverage(CoverageModel {
                p_drop: 1.0,
                p_regain: 0.0,
                epoch: SimDuration::from_secs(1),
            })
            .into(),
        SimTime::ZERO,
    );
    let mut prober = Prober::new();
    let mut rng = SimRng::seed(4);
    // After a few epochs the phone has dropped out for good.
    let t = SimTime::ZERO + SimDuration::from_secs(10);
    assert_eq!(
        prober.probe(&mut registry, DeviceId::phone(0), t, &mut rng),
        ProbeOutcome::TimedOut
    );
}

#[test]
fn probe_timeout_configuration_is_respected() {
    let mut registry = DeviceRegistry::from_lab(PervasiveLab::standard().with_reliable_cameras());
    // Make the camera link slower than the configured timeout.
    registry.set_link(
        DeviceKind::Camera,
        LinkModel::new(SimDuration::from_secs(2), SimDuration::ZERO, 0.0),
    );
    registry.set_probe_timeout(DeviceKind::Camera, SimDuration::from_secs(1));
    let mut prober = Prober::new();
    let mut rng = SimRng::seed(5);
    assert_eq!(
        prober.probe(&mut registry, DeviceId::camera(0), SimTime::ZERO, &mut rng),
        ProbeOutcome::TimedOut
    );
    // Relaxing the timeout lets the probe succeed.
    registry.set_probe_timeout(DeviceKind::Camera, SimDuration::from_secs(10));
    assert!(prober
        .probe(&mut registry, DeviceId::camera(0), SimTime::ZERO, &mut rng)
        .is_available());
}

#[test]
fn engine_survives_every_device_leaving_mid_run() {
    let lab =
        PervasiveLab::standard().with_periodic_events(SimDuration::from_mins(1), SimDuration::ZERO);
    let mut aorta = Aorta::with_lab(EngineConfig::seeded(6), lab);
    aorta
        .execute_sql(
            r#"CREATE AQ q AS
               SELECT photo(c.ip, s.loc, "p")
               FROM sensor s, camera c
               WHERE s.accel_x > 500 AND coverage(c.id, s.loc)"#,
        )
        .unwrap();
    aorta.run_for(SimDuration::from_secs(90));
    let ids: Vec<DeviceId> = aorta
        .registry()
        .of_kind(DeviceKind::Sensor)
        .map(|e| e.sim.id())
        .chain(
            aorta
                .registry()
                .of_kind(DeviceKind::Camera)
                .map(|e| e.sim.id()),
        )
        .collect();
    for id in ids {
        aorta.registry_mut().unregister(id);
    }
    // The engine keeps ticking with an empty network.
    aorta.run_for(SimDuration::from_mins(2));
    assert_eq!(aorta.registry().ids_of_kind(DeviceKind::Sensor).len(), 0);
}
