//! Differential testing: vectorized detection vs the scalar oracle.
//!
//! The vectorized predicate-index pipeline (`EngineConfig::default()`) must
//! be *observably indistinguishable* from the original tuple-at-a-time
//! scalar loop (`with_scalar_detect()`): same events, same rising-edge
//! transitions, same counters, byte-identical traces. These properties are
//! checked over randomized workloads — random AQ sets with mixed attributes,
//! operators and constants (drawn from small pools so duplicates and
//! overlaps are common), non-indexable predicates, error-prone predicates,
//! interleaved register/drop churn, and random tuple batches including
//! id-less and NULL-valued tuples. A third replay runs with pushdown
//! accounting enabled and must be observably identical to both (suppression
//! is bookkeeping, never behaviour), with a wire ledger that never exceeds
//! the ship-everything baseline.

use aorta::data::{Location, Tuple, Value};
use aorta::device::{DeviceKind, PervasiveLab};
use aorta::engine::{AqPlan, Catalog};
use aorta::sim::{SimDuration, SimRng};
use aorta::sql::ast::Statement;
use aorta::{Aorta, EngineConfig};

/// One scripted step, applied identically to both engines.
#[derive(Debug, Clone)]
enum Op {
    /// Register a new AQ with the given event predicate.
    Add(String),
    /// Drop the i-th (mod live count) currently registered AQ.
    Drop(usize),
    /// Feed one synthetic scan batch to detection.
    Batch(Vec<Tuple>),
    /// Advance virtual time (real scans, dispatch, device events).
    Run(u64),
}

/// Predicates prefixed `CAM ` plan as photo-on-camera AQs: the camera
/// device part leaves the sensor kind suppressible (no query targets
/// sensors as devices), so scripts that drop their last beep query flip
/// sensors between suppressible and not under pushdown, mid-run.
fn plan_for(pred: &str) -> AqPlan {
    let sql = if let Some(p) = pred.strip_prefix("CAM ") {
        format!(
            r#"SELECT photo(c.ip, s.loc, "p") FROM sensor s, camera c
               WHERE {p} AND coverage(c.id, s.loc)"#
        )
    } else {
        format!("SELECT beep(t.id) FROM sensor t, sensor s WHERE {pred}")
    };
    let stmts = aorta::sql::parse(&sql).expect("generated predicates parse");
    let Statement::Select(select) = stmts.into_iter().next().expect("one statement") else {
        panic!("expected SELECT");
    };
    AqPlan::plan("template", &select, &Catalog::with_builtins()).expect("generated plans are valid")
}

/// A random conjunct from a deliberately small vocabulary: small pools of
/// attributes, operators and constants make duplicate and overlapping
/// comparisons (the sharing the index exploits) the common case, while
/// variants 0–2 cover what the index *cannot* serve: call and OR conjuncts
/// (scalar fallback slots) and a type-mismatched comparison that errors on
/// every tuple. Variants 3–4 produce windowed aggregates, so random AQ sets
/// mix windowed plans (scalar detection, merged by name into the vectorized
/// order) with indexed ones, and windowed comparisons land at random depths
/// of the pushdown prefix.
fn random_conjunct(rng: &mut SimRng) -> String {
    let int_attrs = ["accel_x", "accel_y", "light", "depth"];
    let all_attrs = ["accel_x", "accel_y", "light", "depth", "temp", "battery"];
    let aggs = ["AVG", "MAX", "MIN", "COUNT"];
    let ops = [">", ">=", "<", "<=", "=", "<>"];
    let consts = [-500i64, -1, 0, 1, 40, 100, 500, 501];
    match rng.range(0..=11u64) {
        0 => "distance(s.loc, s.loc) < 1.0".to_string(),
        // Parenthesized: joined with AND by `random_pred`, a bare OR would
        // re-associate (`a AND b OR c` is `(a AND b) OR c`) and swallow
        // neighbouring conjuncts into the fallback slot.
        1 => format!(
            "(s.{} > {} OR s.{} <= {})",
            rng.pick(&int_attrs).unwrap(),
            rng.pick(&consts).unwrap(),
            rng.pick(&int_attrs).unwrap(),
            rng.pick(&consts).unwrap(),
        ),
        2 => "s.loc > 500".to_string(),
        // Windowed comparisons take a plain literal on the right (a negative
        // number parses as unary minus, which the planner rejects), so draw
        // from the non-negative half of the constant pool.
        3 | 4 => format!(
            "{}(s.{}) OVER LAST {} {} {}",
            rng.pick(&aggs).unwrap(),
            rng.pick(&all_attrs).unwrap(),
            rng.range(2..=4u64),
            rng.pick(&ops).unwrap(),
            rng.pick(&consts[3..]).unwrap(),
        ),
        _ => format!(
            "s.{} {} {}",
            rng.pick(&all_attrs).unwrap(),
            rng.pick(&ops).unwrap(),
            rng.pick(&consts).unwrap(),
        ),
    }
}

fn random_pred(rng: &mut SimRng) -> String {
    let n = rng.range(1..=3u64);
    let conjuncts: Vec<String> = (0..n).map(|_| random_conjunct(rng)).collect();
    let pred = conjuncts.join(" AND ");
    // A third of the AQs dispatch photos instead of beeps (see `plan_for`),
    // mixing device-part kinds so pushdown suppressibility varies with the
    // live query set.
    if rng.chance(0.33) {
        format!("CAM {pred}")
    } else {
        pred
    }
}

/// A random sensor tuple: a small source-id pool (so rising/falling edges
/// recur per source), occasional id-less tuples, occasional NULLs, and
/// values straddling the constant pool's thresholds.
fn random_tuple(rng: &mut SimRng, schema: &aorta::data::Schema) -> Tuple {
    let mut values = vec![Value::Null; schema.len()];
    let set = |name: &str, v: Value, values: &mut Vec<Value>| {
        values[schema.index_of(name).expect("sensor attribute")] = v;
    };
    if !rng.chance(0.15) {
        set("id", Value::Int(rng.range(0..=5i64)), &mut values);
    }
    if !rng.chance(0.2) {
        set("loc", Value::Location(Location::ORIGIN), &mut values);
    }
    set("accel_x", Value::Int(rng.range(-600..=600i64)), &mut values);
    if !rng.chance(0.1) {
        set("accel_y", Value::Int(rng.range(-600..=600i64)), &mut values);
    }
    set("light", Value::Int(rng.range(0..=1200i64)), &mut values);
    set("depth", Value::Int(rng.range(1..=4i64)), &mut values);
    if !rng.chance(0.1) {
        set("temp", Value::Float(15.0 + rng.unit() * 20.0), &mut values);
    }
    set("battery", Value::Float(2.0 + rng.unit()), &mut values);
    Tuple::new(values)
}

/// Generates the whole script up front so both engines replay exactly the
/// same operations in the same order.
fn random_script(seed: u64, steps: usize) -> Vec<Op> {
    let mut rng = SimRng::seed(seed);
    let lab = PervasiveLab::standard();
    let registry = aorta::net::DeviceRegistry::from_lab(lab);
    let schema = registry.schema(DeviceKind::Sensor).clone();
    let mut script = Vec::with_capacity(steps + 1);
    // Always start with at least one query so batches have something to hit.
    script.push(Op::Add(random_pred(&mut rng)));
    for _ in 0..steps {
        script.push(match rng.range(0..=9u64) {
            0 | 1 => Op::Add(random_pred(&mut rng)),
            2 => Op::Drop(rng.range(0..=31u64) as usize),
            3 => Op::Run(rng.range(1..=5u64)),
            _ => {
                let n = rng.range(1..=12u64);
                Op::Batch((0..n).map(|_| random_tuple(&mut rng, &schema)).collect())
            }
        });
    }
    script
}

/// Replays the script on one engine, asserting nothing — comparison happens
/// between the two replays' observable states.
struct Replay {
    aorta: Aorta,
    live: Vec<String>,
    next_id: usize,
}

impl Replay {
    fn new(seed: u64, vectorized: bool, pushdown: bool) -> Replay {
        let lab = PervasiveLab::standard()
            .with_periodic_events(SimDuration::from_secs(30), SimDuration::from_secs(3));
        let mut config = if vectorized {
            EngineConfig::seeded(seed)
        } else {
            EngineConfig::seeded(seed).with_scalar_detect()
        };
        if pushdown {
            config = config.with_pushdown();
        }
        Replay {
            aorta: Aorta::with_lab(config, lab),
            live: Vec::new(),
            next_id: 0,
        }
    }

    fn apply(&mut self, op: &Op) {
        match op {
            Op::Add(pred) => {
                let mut plan = plan_for(pred);
                plan.name = format!("q{:03}", self.next_id);
                self.next_id += 1;
                self.live.push(plan.name.clone());
                self.aorta
                    .register_query_plan(plan)
                    .expect("names are unique");
            }
            Op::Drop(i) => {
                if self.live.is_empty() {
                    return;
                }
                let name = self.live.remove(i % self.live.len());
                self.aorta.deregister_query(&name).expect("was live");
            }
            Op::Batch(tuples) => {
                self.aorta
                    .detect_on_batch(DeviceKind::Sensor, tuples.clone());
            }
            Op::Run(secs) => {
                self.aorta.run_for(SimDuration::from_secs(*secs));
            }
        }
    }
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(24))]

    /// The core differential property: for any seed, any random AQ set
    /// (now including windowed aggregates) and any interleaving of
    /// synthetic batches, real scan epochs and register/drop churn, the
    /// vectorized path and the scalar oracle agree on every counter after
    /// every step and render byte-identical traces — and a third replay
    /// with pushdown accounting enabled is indistinguishable from both
    /// while never claiming more wire bytes than the baseline.
    #[test]
    fn vectorized_detection_matches_the_scalar_oracle(seed in 0u64..1_000_000) {
        let script = random_script(seed, 40);
        let mut vec_replay = Replay::new(seed, true, false);
        let mut sca_replay = Replay::new(seed, false, false);
        let mut psh_replay = Replay::new(seed, true, true);
        for (step, op) in script.iter().enumerate() {
            vec_replay.apply(op);
            sca_replay.apply(op);
            psh_replay.apply(op);
            proptest::prop_assert_eq!(
                vec_replay.aorta.stats(),
                sca_replay.aorta.stats(),
                "stats diverged at step {} ({:?})",
                step,
                op
            );
            proptest::prop_assert_eq!(
                vec_replay.aorta.stats(),
                psh_replay.aorta.stats(),
                "pushdown perturbed stats at step {} ({:?})",
                step,
                op
            );
        }
        proptest::prop_assert_eq!(
            vec_replay.aorta.pending_requests(),
            sca_replay.aorta.pending_requests()
        );
        let vec_trace = vec_replay.aorta.trace().render();
        let sca_trace = sca_replay.aorta.trace().render();
        proptest::prop_assert!(
            vec_trace == sca_trace,
            "trace bytes diverged for seed {}:\nvectorized:\n{}\nscalar:\n{}",
            seed,
            vec_trace,
            sca_trace
        );
        let psh_trace = psh_replay.aorta.trace().render();
        proptest::prop_assert!(
            vec_trace == psh_trace,
            "pushdown perturbed trace bytes for seed {}",
            seed
        );
        // Accounting invariants: pushdown is off by default (no counters on
        // the plain replays), and with it on the wire never costs more than
        // shipping everything.
        proptest::prop_assert_eq!(
            vec_replay.aorta.pushdown_stats(),
            aorta::PushdownStats::default()
        );
        let push = psh_replay.aorta.pushdown_stats();
        proptest::prop_assert!(
            push.wire_bytes() <= push.baseline_bytes,
            "pushdown made the wire more expensive: {:?}",
            push
        );
        proptest::prop_assert_eq!(
            push.saved_bytes(),
            push.baseline_bytes - push.wire_bytes()
        );
    }
}

/// A deterministic end-to-end twin of the property: a fixed mixed workload
/// (firing, never-firing, erroring, fallback, duplicated predicates) over
/// several minutes of simulated periodic events, compared on stats and
/// trace bytes — the case a CI failure can bisect without a proptest seed.
#[test]
fn fixed_mixed_workload_is_byte_identical_across_modes() {
    let preds = [
        "s.accel_x > 450",
        "s.accel_x > 450", // duplicate: shares one group
        "s.accel_x >= 500",
        "s.loc > 500",                                        // errors every tuple
        "distance(s.loc, s.loc) < 1.0 AND s.accel_x > 480",   // fallback
        "s.temp > 1000",                                      // never fires
        "AVG(s.accel_x) OVER LAST 3 > 300",                   // windowed, smoothed
        "COUNT(s.temp) OVER LAST 2 >= 1 AND s.accel_x > 470", // windowed + indexed
    ];
    let run = |vectorized: bool, pushdown: bool| {
        let lab = PervasiveLab::standard()
            .with_periodic_events(SimDuration::from_mins(1), SimDuration::from_secs(2));
        let mut config = if vectorized {
            EngineConfig::seeded(0xD1FF)
        } else {
            EngineConfig::seeded(0xD1FF).with_scalar_detect()
        };
        if pushdown {
            config = config.with_pushdown();
        }
        let mut aorta = Aorta::with_lab(config, lab);
        for (i, p) in preds.iter().enumerate() {
            let mut plan = plan_for(p);
            plan.name = format!("fx{i}");
            aorta.register_query_plan(plan).expect("fixture plans");
        }
        aorta.run_for(SimDuration::from_mins(4));
        aorta
    };
    let vectorized = run(true, false);
    let scalar = run(false, false);
    assert_eq!(vectorized.stats(), scalar.stats());
    assert!(vectorized.stats().events_detected > 0, "workload must fire");
    assert!(vectorized.stats().eval_errors > 0, "workload must error");
    assert_eq!(vectorized.trace().render(), scalar.trace().render());
    // Pushdown accounting must be invisible in either detection mode: same
    // stats, same trace bytes, and the two pushdown arms agree with each
    // other on the byte ledger.
    let vec_push = run(true, true);
    let sca_push = run(false, true);
    assert_eq!(vec_push.stats(), vectorized.stats());
    assert_eq!(sca_push.stats(), vectorized.stats());
    assert_eq!(vec_push.trace().render(), vectorized.trace().render());
    assert_eq!(sca_push.trace().render(), vectorized.trace().render());
    assert_eq!(vec_push.pushdown_stats(), sca_push.pushdown_stats());
    let push = vec_push.pushdown_stats();
    assert!(push.shipped_tuples > 0, "real scans must ship something");
    assert!(
        push.wire_bytes() <= push.baseline_bytes,
        "pushdown made the wire more expensive: {push:?}"
    );
    assert_eq!(vectorized.pushdown_stats(), aorta::PushdownStats::default());
}
