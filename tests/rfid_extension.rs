//! The §8 future-work extension, end to end: a *fourth* device type (RFID
//! portal readers) registered through the same communication layer —
//! catalog, cost table, probe, scan, and SQL — with zero engine changes.

use aorta::{Aorta, EngineConfig};
use aorta_data::Location;
use aorta_device::{
    catalog_for, parse_catalog, Camera, CameraFailureModel, CameraSpec, DeviceId, DeviceKind,
    OpCostTable, RfidReader, TagSchedule,
};
use aorta_net::{DeviceRegistry, ProbeOutcome, Prober, ScanOperator};
use aorta_sim::{SimDuration, SimRng, SimTime};

fn portal_registry() -> DeviceRegistry {
    let mut registry = DeviceRegistry::new();
    registry.register(
        Camera::new(
            0,
            CameraSpec::axis_2130(),
            Location::new(4.0, 3.0, 3.0),
            90.0,
            CameraFailureModel::reliable(),
        )
        .into(),
        SimTime::ZERO,
    );
    registry.register(
        RfidReader::new(0, Location::new(5.0, 4.0, 1.2))
            .with_miss_prob(0.0)
            .with_schedule(TagSchedule::Periodic {
                period: SimDuration::from_mins(1),
                offset: SimDuration::from_secs(5),
                dwell: SimDuration::from_secs(3),
            })
            .into(),
        SimTime::ZERO,
    );
    registry
}

#[test]
fn rfid_profiles_flow_through_the_same_formats() {
    // Catalog XML round-trips like the original three kinds.
    let xml = catalog_for(DeviceKind::Rfid);
    let schema = parse_catalog(&xml).expect("rfid catalog parses");
    assert_eq!(schema.table(), "rfid");
    assert!(schema.index_of("tag_count").is_some());
    // Cost table too.
    let table = OpCostTable::defaults_for(DeviceKind::Rfid);
    let back = OpCostTable::from_xml(&table.to_xml()).expect("rfid cost table parses");
    assert_eq!(back, table);
    assert!(table.get("write_tag").is_some());
}

#[test]
fn rfid_scan_and_probe_work_like_any_device() {
    let mut registry = portal_registry();
    let mut rng = SimRng::seed(1);
    // Probe during a tag window.
    let t = SimTime::ZERO + SimDuration::from_secs(6);
    let mut prober = Prober::new();
    let outcome = prober.probe(
        &mut registry,
        DeviceId::new(DeviceKind::Rfid, 0),
        t,
        &mut rng,
    );
    match outcome {
        ProbeOutcome::Available { status, .. } => {
            assert_eq!(status.to_string(), "1 tags in field");
        }
        other => panic!("probe failed: {other:?}"),
    }
    // Scan the virtual rfid table.
    let scan = ScanOperator::new(DeviceKind::Rfid);
    let tuples = scan.run(&mut registry, t, &mut rng);
    assert_eq!(tuples.len(), 1);
    let schema = registry.schema(DeviceKind::Rfid).clone();
    assert_eq!(schema.check(&tuples[0]), Ok(()));
    let count_idx = schema.index_of("tag_count").unwrap();
    assert_eq!(tuples[0].get(count_idx).and_then(|v| v.as_i64()), Some(1));
    let tag_idx = schema.index_of("last_tag").unwrap();
    assert_eq!(
        tuples[0].get(tag_idx).and_then(|v| v.as_str()),
        Some("tag-0-0")
    );
}

#[test]
fn rfid_events_trigger_camera_actions_via_sql() {
    let mut aorta = Aorta::with_registry(EngineConfig::seeded(2), portal_registry());
    // Photograph whoever carries a tag through the portal: the rfid table
    // is an event source exactly like the sensor table.
    aorta
        .execute_sql(
            r#"CREATE AQ portal_watch AS
               SELECT photo(c.ip, r.loc, "photos/portal")
               FROM rfid r, camera c
               WHERE r.tag_count > 0 AND coverage(c.id, r.loc)"#,
        )
        .expect("rfid queries validate against the generated catalog");
    aorta.run_for(SimDuration::from_mins(3));
    aorta.run_for(SimDuration::from_secs(10));
    let stats = aorta.stats();
    assert!(stats.events_detected >= 3, "{stats:?}");
    assert!(stats.photos_ok >= 2, "{stats:?}");
    // The photos aim at the portal.
    let cam = aorta
        .registry()
        .get(DeviceId::camera(0))
        .unwrap()
        .sim
        .as_camera()
        .unwrap();
    let expected = cam.spec().clamp(cam.aim_at(&Location::new(5.0, 4.0, 1.2)));
    for p in cam.photos() {
        assert!((p.target.pan - expected.pan).abs() < 1e-6);
    }
}

#[test]
fn mixed_fleet_select_spans_old_and_new_kinds() {
    let mut aorta = Aorta::with_registry(EngineConfig::seeded(3), portal_registry());
    let out = aorta
        .execute_sql("SELECT r.id, r.loc, r.tag_count FROM rfid r")
        .unwrap();
    let aorta_core::ExecOutput::Rows(rows) = &out[0] else {
        panic!("expected rows");
    };
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].len(), 3);
}
