//! Whole-system determinism: every experiment in the reproduction is
//! seed-stable, so EXPERIMENTS.md numbers are exactly regenerable.

use aorta::{Aorta, EngineConfig};
use aorta_device::PervasiveLab;
use aorta_sim::SimDuration;

fn run_lab(seed: u64, sync: bool) -> aorta_core::EngineStats {
    let lab =
        PervasiveLab::standard().with_periodic_events(SimDuration::from_mins(1), SimDuration::ZERO);
    let config = if sync {
        EngineConfig::seeded(seed)
    } else {
        EngineConfig::seeded(seed).without_sync()
    };
    let mut aorta = Aorta::with_lab(config, lab);
    for i in 0..10 {
        aorta
            .execute_sql(&format!(
                r#"CREATE AQ q{i} AS
                   SELECT photo(c.ip, s.loc, "p")
                   FROM sensor s, camera c
                   WHERE s.accel_x > 500 AND s.id = {i} AND coverage(c.id, s.loc)"#
            ))
            .unwrap();
    }
    aorta.run_for(SimDuration::from_mins(5));
    aorta.run_for(SimDuration::from_secs(30));
    aorta.stats()
}

#[test]
fn engine_runs_are_bit_identical_per_seed() {
    for sync in [true, false] {
        let a = run_lab(77, sync);
        let b = run_lab(77, sync);
        assert_eq!(a, b, "sync={sync}: same seed must replay identically");
    }
}

#[test]
fn different_seeds_produce_different_stochastic_outcomes() {
    // Without sync the interference pattern is seed-dependent.
    let a = run_lab(1, false);
    let b = run_lab(2, false);
    assert_ne!(
        (a.photos_blurred, a.photos_wrong, a.busy_rejections),
        (b.photos_blurred, b.photos_wrong, b.busy_rejections),
        "distinct seeds should explore distinct interleavings"
    );
}

/// A sharded cluster run with a crash storm over every device: the whole
/// multi-engine trace (per-shard engine lines plus the gateway ledger) is
/// the determinism witness.
fn run_cluster(seed: u64, shards: usize, storm: bool) -> String {
    use aorta::cluster::{ClusterConfig, ShardManager};
    use aorta_device::DeviceId;
    use aorta_sim::{FaultConfig, FaultPlan};

    let lab = PervasiveLab::with_sizes(12, 16, 0)
        .with_periodic_events(SimDuration::from_mins(1), SimDuration::ZERO);
    let mut cluster = ShardManager::new(ClusterConfig::seeded(seed, shards), lab);
    for i in 0..10 {
        cluster
            .execute_sql(&format!(
                r#"CREATE AQ q{i} AS
                   SELECT photo(c.ip, s.loc, "p")
                   FROM sensor s, camera c
                   WHERE s.accel_x > 500 AND s.id = {i} AND coverage(c.id, s.loc)"#
            ))
            .unwrap();
    }
    if storm {
        let devices: Vec<DeviceId> = (0..12)
            .map(DeviceId::camera)
            .chain((0..16).map(DeviceId::sensor))
            .collect();
        let config = FaultConfig {
            crash_rate: 0.25,
            loss_burst_rate: 0.3,
            extra_loss: 0.5,
            ..FaultConfig::default()
        };
        let plan = FaultPlan::generate(seed ^ 0xFA17, SimDuration::from_mins(3), &devices, &config);
        assert!(!plan.is_empty(), "fault generation produced nothing");
        cluster.inject_faults(plan);
    }
    cluster.run_for(SimDuration::from_mins(3));
    cluster.run_for(SimDuration::from_secs(30));
    cluster.render_trace()
}

#[test]
fn cluster_traces_are_byte_identical_per_seed() {
    for shards in [2usize, 8] {
        for storm in [false, true] {
            let a = run_cluster(99, shards, storm);
            let b = run_cluster(99, shards, storm);
            assert!(!a.is_empty(), "shards={shards} storm={storm}: empty trace");
            assert_eq!(
                a, b,
                "shards={shards} storm={storm}: same seed must replay byte-identically"
            );
        }
    }
}

/// A 4-shard cluster driven into overload — fast event cadence, tight
/// deadlines, an aggressive admission gate, breakers, and a crash storm —
/// so sheds, expiries, brownouts and breaker trips all occur. The trace
/// plus the full stats snapshot is the determinism witness.
fn run_overloaded_cluster(seed: u64) -> (String, String) {
    use aorta::cluster::{ClusterConfig, ShardManager};
    use aorta::engine::AdmissionConfig;
    use aorta::net::BreakerConfig;
    use aorta_device::DeviceId;
    use aorta_sim::{FaultConfig, FaultPlan};

    let lab = PervasiveLab::with_sizes(12, 16, 0)
        .with_periodic_events(SimDuration::from_secs(15), SimDuration::from_secs(1));
    let mut config = ClusterConfig::seeded(seed, 4);
    config.engine = config
        .engine
        .with_deadline(SimDuration::from_secs(3))
        .with_admission(AdmissionConfig {
            rate_per_sec: 0.5,
            burst: 3.0,
            slo: SimDuration::from_secs(2),
            brownout_multiple: 0.5,
            shed_multiple: 2.0,
            protected_queries: 2,
        })
        .with_breakers(BreakerConfig::default());
    let mut cluster = ShardManager::new(config, lab);
    for i in 0..10 {
        cluster
            .execute_sql(&format!(
                r#"CREATE AQ q{i} AS
                   SELECT photo(c.ip, s.loc, "p")
                   FROM sensor s, camera c
                   WHERE s.accel_x > 500 AND s.id = {i} AND coverage(c.id, s.loc)"#
            ))
            .unwrap();
    }
    let devices: Vec<DeviceId> = (0..12)
        .map(DeviceId::camera)
        .chain((0..16).map(DeviceId::sensor))
        .collect();
    let storm = FaultConfig {
        crash_rate: 0.3,
        loss_burst_rate: 0.2,
        extra_loss: 0.4,
        ..FaultConfig::default()
    };
    let plan = FaultPlan::generate(seed ^ 0x0E9, SimDuration::from_mins(3), &devices, &storm);
    assert!(!plan.is_empty(), "fault generation produced nothing");
    cluster.inject_faults(plan);
    cluster.run_for(SimDuration::from_mins(3));
    cluster.run_for(SimDuration::from_secs(30));

    let stats = cluster.stats();
    stats.check_conservation().expect("overload conservation");
    // The overload machinery genuinely engaged — this is not a quiet run.
    assert!(stats.shed() > 0, "no sheds under saturation: {stats:?}");
    let trips: u64 = stats.per_shard.iter().map(|s| s.breaker_trips).sum();
    assert!(
        trips > 0,
        "no breaker tripped under the crash storm: {stats:?}"
    );
    (cluster.render_trace(), format!("{stats:?}"))
}

#[test]
fn overloaded_cluster_runs_are_byte_identical_per_seed() {
    let a = run_overloaded_cluster(41);
    let b = run_overloaded_cluster(41);
    assert!(!a.0.is_empty());
    assert_eq!(
        a, b,
        "same seed must replay the overload run byte-identically"
    );
    let c = run_overloaded_cluster(42);
    assert_ne!(a.0, c.0, "distinct seeds should diverge");
}

/// The observability exports themselves are deterministic artifacts: same
/// seed, byte-identical JSON *and* Prometheus text. Everything in them is
/// virtual-clock timestamps and integer microseconds, so this holds across
/// platforms too.
#[test]
fn metrics_exports_are_byte_identical_per_seed() {
    let (json_a, prom_a) = aorta::cluster::metrics_demo(2718);
    let (json_b, prom_b) = aorta::cluster::metrics_demo(2718);
    assert!(!json_a.is_empty() && !prom_a.is_empty());
    assert_eq!(json_a, json_b, "JSON export must replay byte-identically");
    assert_eq!(
        prom_a, prom_b,
        "Prometheus export must replay byte-identically"
    );
    let (json_c, _) = aorta::cluster::metrics_demo(2719);
    assert_ne!(json_a, json_c, "distinct seeds should diverge");
}

/// Observability is write-only: the same seeded run with recording on and
/// off must produce identical engine statistics (the recorded registry is
/// extra output, never an input to any decision).
#[test]
fn observability_does_not_perturb_the_engine() {
    let run = |observability: bool| {
        let lab = PervasiveLab::standard()
            .with_periodic_events(SimDuration::from_mins(1), SimDuration::ZERO);
        let mut config = aorta::engine::EngineConfig::seeded(77);
        if observability {
            config = config.with_observability();
        }
        let mut aorta = aorta::engine::Aorta::with_lab(config, lab);
        aorta
            .execute_sql(
                r#"CREATE AQ obs AS
                   SELECT photo(c.ip, s.loc, "p")
                   FROM sensor s, camera c
                   WHERE s.accel_x > 500 AND coverage(c.id, s.loc)"#,
            )
            .unwrap();
        aorta.run_for(SimDuration::from_mins(5));
        (aorta.stats(), aorta.trace().render())
    };
    let on = run(true);
    let off = run(false);
    assert!(on.0.requests > 0, "the run must actually do work");
    assert_eq!(on, off, "recording must never influence behavior");
}

/// A 4-shard WAL-logged cluster where TWO shards process-crash at seeded
/// points and are rebuilt from their logs mid-run. The witness is the full
/// gateway + per-shard trace: recovery must be invisible to it, so two
/// repetitions are byte-identical, and the run matches a crash-immune
/// reference run record for record.
fn run_kill_and_recover_cluster(seed: u64, immune: bool) -> (String, String, u64) {
    use aorta::cluster::{ClusterConfig, ShardManager};
    use aorta_device::DeviceId;
    use aorta_sim::{FaultEvent, FaultPlan, SimTime};

    let lab = PervasiveLab::with_sizes(12, 16, 0)
        .with_periodic_events(SimDuration::from_mins(1), SimDuration::ZERO);
    let mut config = ClusterConfig::seeded(seed, 4).with_imbalance_threshold(u64::MAX);
    if !immune {
        config = config.with_wal(256);
    }
    let mut cluster = ShardManager::new(config, lab);
    for i in 0..10 {
        cluster
            .execute_sql(&format!(
                r#"CREATE AQ q{i} AS
                   SELECT photo(c.ip, s.loc, "p")
                   FROM sensor s, camera c
                   WHERE s.accel_x > 500 AND s.id = {i} AND coverage(c.id, s.loc)"#
            ))
            .unwrap();
    }
    // Pick victim cameras on two distinct shards, deterministically.
    let mut victims: Vec<(usize, DeviceId)> = Vec::new();
    for c in 0..12u32 {
        let id = DeviceId::camera(c);
        let owner = cluster.shard_owning(id).expect("camera owned");
        if !victims.iter().any(|(s, _)| *s == owner) {
            victims.push((owner, id));
        }
        if victims.len() == 2 {
            break;
        }
    }
    assert_eq!(victims.len(), 2, "need victims on two distinct shards");
    let mut plan = FaultPlan::new();
    for (i, (owner, id)) in victims.iter().enumerate() {
        if immune {
            cluster.shard_mut(*owner).grant_crash_immunity(1);
        }
        plan.schedule(
            SimTime::ZERO + SimDuration::from_secs(100 + 37 * i as u64),
            FaultEvent::ProcessCrash(*id),
        );
    }
    cluster.inject_faults(plan);
    cluster.run_for(SimDuration::from_mins(5));
    cluster.run_for(SimDuration::from_secs(30));
    let stats = cluster.stats();
    stats.check_conservation().expect("kill-and-recover ledger");
    (
        cluster.render_trace(),
        format!("{stats:?}"),
        cluster.recoveries(),
    )
}

#[test]
fn kill_and_recover_runs_are_byte_identical_per_seed() {
    let a = run_kill_and_recover_cluster(4242, false);
    let b = run_kill_and_recover_cluster(4242, false);
    assert_eq!(a.2, 2, "both crashed shards must recover from their logs");
    assert!(!a.0.is_empty());
    assert_eq!(
        (&a.0, &a.1),
        (&b.0, &b.1),
        "same seed must replay the kill-and-recover run byte-identically"
    );
    // Recovery is invisible: the logged run matches a run where the same
    // crashes were absorbed by immunity instead of ever halting a shard.
    let reference = run_kill_and_recover_cluster(4242, true);
    assert_eq!(reference.2, 0);
    assert_eq!(
        (&a.0, &a.1),
        (&reference.0, &reference.1),
        "recovered run must be indistinguishable from the uninterrupted one"
    );
}

/// A 4-shard WAL-logged cluster where one shard process-crashes *inside*
/// an asymmetric partition window and fails over to a brand-new host from
/// a shipped snapshot image. The witness is the full trace plus the stats
/// snapshot; `obs` toggles span/metric recording, which must be write-only,
/// and `threads` sets the worker-pool size, which must also be write-only:
/// WAL + failover configs are sequential-gated (their replay cadence and
/// gateway timers are part of the byte-contract), so any thread count must
/// reproduce the 1-thread bytes exactly.
fn run_partitioned_failover_cluster(seed: u64, obs: bool, threads: usize) -> (String, String) {
    use aorta::cluster::{ClusterConfig, FailoverConfig, ShardManager};
    use aorta_device::DeviceId;
    use aorta_sim::{FaultEvent, FaultPlan, SimTime};

    let lab = PervasiveLab::with_sizes(12, 16, 0)
        .with_periodic_events(SimDuration::from_mins(1), SimDuration::ZERO);
    let mut config = ClusterConfig::seeded(seed, 4)
        .with_imbalance_threshold(u64::MAX)
        .with_wal(256)
        .with_threads(threads)
        .with_failover(FailoverConfig::default());
    if obs {
        config.engine = config.engine.with_observability();
    }
    let mut cluster = ShardManager::new(config, lab);
    for i in 0..10 {
        cluster
            .execute_sql(&format!(
                r#"CREATE AQ q{i} AS
                   SELECT photo(c.ip, s.loc, "p")
                   FROM sensor s, camera c
                   WHERE s.accel_x > 500 AND s.id = {i} AND coverage(c.id, s.loc)"#
            ))
            .unwrap();
    }
    let victim = DeviceId::camera(0);
    let owner = cluster.shard_owning(victim).expect("victim owned");
    let sibling = ((owner + 1) % 4) as u32;
    let crash_at = SimTime::ZERO + SimDuration::from_secs(150);
    let window = SimDuration::from_secs(40);
    let mut plan = FaultPlan::new();
    plan.schedule(
        crash_at - SimDuration::from_secs(5),
        FaultEvent::Partition {
            a: owner as u32,
            b: sibling,
            window,
        },
    );
    plan.schedule(
        crash_at - SimDuration::from_secs(5),
        FaultEvent::Partition {
            a: sibling,
            b: owner as u32,
            window,
        },
    );
    plan.schedule(crash_at, FaultEvent::ProcessCrash(victim));
    cluster.inject_faults(plan);
    cluster.run_for(SimDuration::from_mins(5));
    cluster.run_for(SimDuration::from_secs(30));

    let stats = cluster.stats();
    stats.check_conservation().expect("failover ledger");
    let events = cluster.failover_report();
    assert_eq!(events.len(), 1, "exactly one failover expected");
    assert_eq!(events[0].new_host, 4, "rebuild must land on a fresh host");
    assert_eq!(cluster.shard_epoch(owner), 2, "epoch must have bumped");
    assert_eq!(stats.late_successes(), 0, "no zombie completion may apply");
    (cluster.render_trace(), format!("{stats:?}"))
}

#[test]
fn partitioned_failover_runs_are_byte_identical_per_seed() {
    let a = run_partitioned_failover_cluster(515, false, 1);
    let b = run_partitioned_failover_cluster(515, false, 1);
    assert!(!a.0.is_empty());
    assert_eq!(
        a, b,
        "same seed must replay the mid-partition failover byte-identically"
    );
    // Observability is write-only even across a cross-host failover: spans
    // and metrics are extra output, never an input to any decision.
    let observed = run_partitioned_failover_cluster(515, true, 1);
    assert_eq!(
        a, observed,
        "recording must never influence the failover run"
    );
}

/// Mid-wave cross-host failover under every pool size: a durable config
/// never takes the parallel path, so `with_threads(n)` must be a pure
/// no-op on its bytes — trace and stats match the 1-thread oracle exactly.
#[test]
fn failover_runs_are_invariant_across_thread_counts() {
    let oracle = run_partitioned_failover_cluster(515, false, 1);
    assert!(!oracle.0.is_empty());
    for threads in [2usize, 4, 8] {
        let arm = run_partitioned_failover_cluster(515, false, threads);
        assert_eq!(
            oracle, arm,
            "threads={threads}: a sequential-gated failover run drifted \
             from the 1-thread oracle"
        );
    }
}

/// A parallel-eligible cluster (no WAL, no failover, rebalancer off) under
/// a combined device-crash + loss storm with an asymmetric mid-wave
/// partition window — the arm that actually exercises the multicore window
/// scheduler. Returns the full trace plus the stats snapshot so a single
/// flipped byte anywhere in the run fails the comparison.
fn run_threaded_storm_cluster(
    seed: u64,
    shards: usize,
    threads: usize,
    crash_rate: f64,
    loss_burst_rate: f64,
    extra_loss: f64,
) -> (String, String) {
    use aorta::cluster::{ClusterConfig, ShardManager};
    use aorta_device::DeviceId;
    use aorta_sim::{FaultConfig, FaultEvent, FaultPlan, SimTime};

    let lab = PervasiveLab::with_sizes(12, 16, 0)
        .with_periodic_events(SimDuration::from_mins(1), SimDuration::ZERO);
    let config = ClusterConfig::seeded(seed, shards)
        .with_imbalance_threshold(u64::MAX)
        .with_threads(threads);
    let mut cluster = ShardManager::new(config, lab);
    for i in 0..10 {
        cluster
            .execute_sql(&format!(
                r#"CREATE AQ q{i} AS
                   SELECT photo(c.ip, s.loc, "p")
                   FROM sensor s, camera c
                   WHERE s.accel_x > 500 AND s.id = {i} AND coverage(c.id, s.loc)"#
            ))
            .unwrap();
    }
    let devices: Vec<DeviceId> = (0..12)
        .map(DeviceId::camera)
        .chain((0..16).map(DeviceId::sensor))
        .collect();
    let storm = FaultConfig {
        crash_rate,
        loss_burst_rate,
        extra_loss,
        ..FaultConfig::default()
    };
    let mut plan =
        FaultPlan::generate(seed ^ 0x9A11E7, SimDuration::from_mins(3), &devices, &storm);
    // One asymmetric inter-shard blackout mid-wave: the gateway refuses
    // crossings a→b while the window is open, so parked routing decisions
    // land inside the parallel windows too.
    let a = (seed % shards as u64) as u32;
    let b = ((seed + 1) % shards as u64) as u32;
    plan.schedule(
        SimTime::ZERO + SimDuration::from_secs(80),
        FaultEvent::Partition {
            a,
            b,
            window: SimDuration::from_secs(45),
        },
    );
    cluster.inject_faults(plan);
    cluster.run_for(SimDuration::from_mins(3));
    cluster.run_for(SimDuration::from_secs(30));

    let stats = cluster.stats();
    stats.check_conservation().expect("threaded storm ledger");
    (cluster.render_trace(), format!("{stats:?}"))
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(8))]

    /// The tentpole contract as a property: under any seed, shard count
    /// and random crash + partition + loss mix, stepping shards on 2, 4,
    /// or 8 worker threads reproduces the 1-thread oracle's trace and
    /// stats byte for byte.
    #[test]
    fn threaded_stepping_matches_the_sequential_oracle_under_random_storms(
        seed in 0u64..1_000_000,
        shards in 2usize..=8,
        crash_rate in 0.0f64..0.4,
        loss_burst_rate in 0.0f64..0.4,
        extra_loss in 0.0f64..0.6,
    ) {
        let oracle = run_threaded_storm_cluster(
            seed, shards, 1, crash_rate, loss_burst_rate, extra_loss,
        );
        proptest::prop_assert!(!oracle.0.is_empty(), "oracle produced no trace");
        for threads in [2usize, 4, 8] {
            let arm = run_threaded_storm_cluster(
                seed, shards, threads, crash_rate, loss_burst_rate, extra_loss,
            );
            if arm != oracle {
                return Err(proptest::test_runner::TestCaseError::fail(format!(
                    "seed={seed} shards={shards} threads={threads}: \
                     parallel stepping diverged from the 1-thread oracle"
                )));
            }
        }
    }
}

#[test]
fn cluster_traces_diverge_across_seeds() {
    let a = run_cluster(99, 2, true);
    let b = run_cluster(100, 2, true);
    assert_ne!(a, b, "distinct seeds should explore distinct interleavings");
}

#[test]
fn experiment_tables_are_regenerable() {
    use aorta_bench_shim::*;
    // The fig5 rows (the most calibration-sensitive table) replay exactly.
    let a = fig5_row_fingerprint();
    let b = fig5_row_fingerprint();
    assert_eq!(a, b);
}

/// Minimal inline shim so the root tests crate does not depend on
/// aorta-bench: reproduce the fig5 measurement inline.
mod aorta_bench_shim {
    use aorta::sched::{run_algorithm, workload, Algorithm};
    use aorta_sim::{CpuModel, SimRng};

    pub fn fig5_row_fingerprint() -> Vec<(String, u64, u64)> {
        let cpu = CpuModel::paper_notebook();
        Algorithm::paper_lineup()
            .iter()
            .map(|alg| {
                let (inst, model) = workload::uniform_targets(20, 10, &mut SimRng::seed(2000));
                let mut rng = SimRng::seed(2000 ^ 0xA0A0_A0A0);
                let r = run_algorithm(alg, &inst, &model, &cpu, &mut rng);
                (
                    alg.name().to_string(),
                    r.sched_time.as_micros(),
                    r.service_makespan.as_micros(),
                )
            })
            .collect()
    }
}
