//! Cross-crate scheduling integration: the §5 algorithms against the
//! kinematic camera cost model, checked against the exact solver and
//! first-principles bounds.

use aorta::sched::{
    algorithms::exhaustive_optimal, run_algorithm, workload, Algorithm, CostModel, SaConfig,
};
use aorta_data::Location;
use aorta_device::{Camera, CameraFailureModel, PhotoSize};
use aorta_sched::{CameraPhotoModel, Instance};
use aorta_sim::{CpuModel, SimDuration, SimRng};

fn small_instance(n: usize, m: usize, seed: u64) -> (Instance, CameraPhotoModel) {
    let mut rng = SimRng::seed(seed);
    let cameras: Vec<Camera> = (0..m)
        .map(|i| {
            Camera::ceiling_mounted(i as u32, Location::new(2.0 * i as f64, 3.0, 3.0))
                .with_failure(CameraFailureModel::reliable())
        })
        .collect();
    let targets: Vec<Location> = (0..n)
        .map(|_| Location::new(rng.unit() * 8.0, rng.unit() * 6.0, 1.0))
        .collect();
    (
        Instance::fully_eligible(n, m),
        CameraPhotoModel::new(cameras, &targets, PhotoSize::Medium),
    )
}

/// Every heuristic stays within a constant factor of the exact optimum on
/// small instances.
#[test]
fn heuristics_near_optimal_on_small_instances() {
    for seed in 0..5 {
        let (inst, model) = small_instance(6, 2, 100 + seed);
        let (_, optimal) = exhaustive_optimal(&inst, &model);
        let cpu = CpuModel::instant();
        for alg in [
            Algorithm::LerfaSrfe,
            Algorithm::Srfae,
            Algorithm::Ls,
            Algorithm::Sa(SaConfig::quick()),
        ] {
            let mut rng = SimRng::seed(seed);
            let r = run_algorithm(&alg, &inst, &model, &cpu, &mut rng);
            let ratio = r.service_makespan.as_secs_f64() / optimal.as_secs_f64();
            assert!(
                ratio < 2.0,
                "{} is {ratio:.2}x optimal on seed {seed}",
                alg.name()
            );
            assert!(
                r.service_makespan + SimDuration::from_micros(2) >= optimal,
                "{} beat the optimum?! {} < {optimal}",
                alg.name(),
                r.service_makespan
            );
        }
    }
}

/// The makespan can never be smaller than total work divided by machine
/// count, nor smaller than the cheapest single request.
#[test]
fn makespan_lower_bounds_hold() {
    let cpu = CpuModel::instant();
    for seed in 0..5 {
        let (inst, model) = workload::uniform_targets(20, 10, &mut SimRng::seed(seed));
        let min_cost = SimDuration::from_millis(360); // capture-only floor
        for alg in Algorithm::paper_lineup() {
            let alg = match alg {
                Algorithm::Sa(_) => Algorithm::Sa(SaConfig::quick()),
                a => a,
            };
            let mut rng = SimRng::seed(seed ^ 0xBEEF);
            let r = run_algorithm(&alg, &inst, &model, &cpu, &mut rng);
            assert!(r.service_makespan >= min_cost, "{}", alg.name());
            let total_busy: SimDuration = r.per_device_busy.iter().copied().sum();
            assert!(
                r.service_makespan >= total_busy / 10,
                "{}: makespan below mean device busy time",
                alg.name()
            );
        }
    }
}

/// Deterministic replay: the same seed gives bit-identical results across
/// the whole pipeline.
#[test]
fn scheduling_is_deterministic() {
    let cpu = CpuModel::paper_notebook();
    for alg in Algorithm::paper_lineup() {
        let run = |alg: &Algorithm| {
            let (inst, model) = workload::uniform_targets(15, 5, &mut SimRng::seed(77));
            let mut rng = SimRng::seed(78);
            run_algorithm(alg, &inst, &model, &cpu, &mut rng)
        };
        let a = run(&alg);
        let b = run(&alg);
        assert_eq!(a, b, "{} must be deterministic", alg.name());
    }
}

/// The §5.1 sequence-dependence premise: servicing spatially clustered
/// targets consecutively is cheaper than alternating across the room.
#[test]
fn sequence_dependence_rewards_clustering() {
    let cameras = vec![Camera::ceiling_mounted(0, Location::new(4.0, 3.0, 3.0))
        .with_failure(CameraFailureModel::reliable())];
    // Two clusters at opposite ends of the room.
    let targets = vec![
        Location::new(0.5, 0.5, 1.0),
        Location::new(0.6, 0.7, 1.0),
        Location::new(7.5, 5.5, 1.0),
        Location::new(7.4, 5.3, 1.0),
    ];
    let model = CameraPhotoModel::new(cameras, &targets, PhotoSize::Medium);
    let clustered = model.sequence_cost(0, &[0, 1, 2, 3]);
    let alternating = model.sequence_cost(0, &[0, 2, 1, 3]);
    assert!(
        clustered < alternating,
        "clustered {clustered} should beat alternating {alternating}"
    );
}

/// Larger-scale smoke: 100 requests over 25 cameras, every algorithm
/// completes everything and the proposed ones stay ahead.
#[test]
fn scales_to_larger_instances() {
    let cpu = CpuModel::instant();
    let (inst, model) = workload::uniform_targets(100, 25, &mut SimRng::seed(500));
    let mut results = std::collections::BTreeMap::new();
    for alg in [
        Algorithm::LerfaSrfe,
        Algorithm::Srfae,
        Algorithm::Ls,
        Algorithm::Random,
    ] {
        let mut rng = SimRng::seed(501);
        let r = run_algorithm(&alg, &inst, &model, &cpu, &mut rng);
        assert_eq!(r.completed, 100, "{}", alg.name());
        results.insert(alg.name(), r.service_makespan);
    }
    assert!(results["LERFA + SRFE"] < results["RANDOM"]);
    assert!(results["SRFAE"] < results["RANDOM"]);
    assert!(results["LERFA + SRFE"] < results["LS"]);
}
