//! End-to-end fault injection: devices crash and recover, the network loses
//! message bursts, and the engine must neither wedge nor silently lose work.
//!
//! Three system-level guarantees are checked here:
//!
//! 1. **Conservation** — every admitted request ends in exactly one terminal
//!    counter (executed or a named failure reason, crash-orphaning included)
//!    or is still visibly pending. Nothing vanishes.
//! 2. **Failover** — when an assigned device crashes before its action runs,
//!    the engine re-runs device selection over the survivors, observable in
//!    the trace.
//! 3. **Determinism** — the same seed replays the same faults and yields a
//!    byte-identical trace; a different seed does not.

use aorta::{Aorta, EngineConfig};
use aorta_device::{DeviceId, DeviceKind, PervasiveLab};
use aorta_sim::{FaultConfig, FaultPlan, SimDuration};

const RUN: SimDuration = SimDuration::from_mins(10);

/// A fault schedule with ≥ 20% crash rate per device per period, plus
/// message-loss bursts, over every camera and mote in the lab.
fn heavy_faults(aorta: &Aorta, seed: u64) -> FaultPlan<DeviceId> {
    let devices: Vec<DeviceId> = aorta
        .registry()
        .ids_of_kind(DeviceKind::Camera)
        .into_iter()
        .chain(aorta.registry().ids_of_kind(DeviceKind::Sensor))
        .collect();
    let config = FaultConfig {
        crash_rate: 0.25,
        loss_burst_rate: 0.3,
        extra_loss: 0.5,
        ..FaultConfig::default()
    };
    FaultPlan::generate(seed, RUN, &devices, &config)
}

fn faulted_run(seed: u64) -> Aorta {
    let lab =
        PervasiveLab::standard().with_periodic_events(SimDuration::from_mins(1), SimDuration::ZERO);
    let mut aorta = Aorta::with_lab(EngineConfig::seeded(seed), lab);
    for i in 0..10 {
        aorta
            .execute_sql(&format!(
                r#"CREATE AQ q{i} AS
                   SELECT photo(c.ip, s.loc, "p")
                   FROM sensor s, camera c
                   WHERE s.accel_x > 500 AND s.id = {i} AND coverage(c.id, s.loc)"#
            ))
            .unwrap();
    }
    let plan = heavy_faults(&aorta, seed.wrapping_mul(0x9E37));
    assert!(!plan.is_empty(), "fault generation produced nothing");
    aorta.inject_faults(plan);
    aorta.run_for(RUN);
    aorta
}

#[test]
fn no_request_is_silently_lost_under_heavy_faults() {
    let aorta = faulted_run(101);
    let stats = aorta.stats();
    assert!(
        stats.requests >= 10,
        "the fault storm starved the workload: {stats:?}"
    );
    // Conservation: admitted == terminally resolved + visibly pending. The
    // overload outcomes (degraded/shed/expired) are part of the identity
    // even though they stay zero with the overload knobs off.
    let accounted = stats.executed
        + stats.degraded
        + stats.connect_failures
        + stats.busy_rejections
        + stats.no_candidate
        + stats.timed_out
        + stats.out_of_range
        + stats.action_errors
        + stats.orphaned
        + stats.shed
        + stats.expired
        + aorta.pending_requests();
    assert_eq!(
        stats.requests,
        accounted,
        "requests leaked: {stats:?}, pending={}",
        aorta.pending_requests()
    );
    // The faults actually fired and were recorded.
    assert!(aorta.trace().any("fault", "crashed"), "no crash was traced");
    assert!(
        aorta.trace().any("fault", "recovered"),
        "no recovery was traced"
    );
}

#[test]
fn failover_reselection_engages_on_crash() {
    let aorta = faulted_run(303);
    assert!(aorta.trace().any("fault", "crashed"));
    // A crash landed between assignment and execution: the orphaned action
    // was detected and device selection re-ran over the survivors.
    assert!(
        aorta
            .trace()
            .any("failover", "offline at execution, re-selecting"),
        "no orphaned action was detected"
    );
    assert!(
        aorta
            .trace()
            .any("failover", "re-running device selection over"),
        "re-selection never ran"
    );
    let stats = aorta.stats();
    assert!(stats.retries > 0, "failover retries not counted: {stats:?}");
}

#[test]
fn identical_seeds_yield_byte_identical_traces() {
    let a = faulted_run(777);
    let b = faulted_run(777);
    assert!(!a.trace().render().is_empty());
    assert_eq!(
        a.trace().render(),
        b.trace().render(),
        "same seed must replay the exact same fault/execution history"
    );
    assert_eq!(a.stats(), b.stats());

    let c = faulted_run(778);
    assert_ne!(
        a.trace().render(),
        c.trace().render(),
        "different seeds should diverge"
    );
}

/// Builds a 4-shard failover cluster over the standard small lab with the
/// given snapshot-shipping network knobs, admits the stock 10-query
/// workload, and returns it ready for fault injection.
fn failover_cluster(
    seed: u64,
    loss: f64,
    dup_rate: f64,
    reorder_rate: f64,
) -> aorta::cluster::ShardManager {
    use aorta::cluster::{ClusterConfig, FailoverConfig, ShardManager};
    use aorta::net::ShipConfig;

    let lab = PervasiveLab::with_sizes(12, 16, 0)
        .with_periodic_events(SimDuration::from_mins(1), SimDuration::ZERO);
    let config = ClusterConfig::seeded(seed, 4)
        .with_imbalance_threshold(u64::MAX)
        .with_wal(128)
        .with_failover(FailoverConfig {
            ship: ShipConfig {
                loss,
                dup_rate,
                reorder_rate,
                ..ShipConfig::default()
            },
            ..FailoverConfig::default()
        });
    let mut cluster = ShardManager::new(config, lab);
    for i in 0..10 {
        cluster
            .execute_sql(&format!(
                r#"CREATE AQ q{i} AS
                   SELECT photo(c.ip, s.loc, "p")
                   FROM sensor s, camera c
                   WHERE s.accel_x > 500 AND s.id = {i} AND coverage(c.id, s.loc)"#
            ))
            .unwrap();
    }
    cluster
}

/// A minimal escalation payload for fencing tests — the epoch fence
/// inspects the stamp, not the request body.
fn stale_probe() -> aorta::engine::ActionRequest {
    use aorta_sim::SimTime;

    aorta::engine::ActionRequest {
        query_id: u32::MAX,
        action: "photo".into(),
        event_tuple: aorta::data::Tuple::empty(),
        event_binding: "s".into(),
        event_kind: DeviceKind::Sensor,
        device_binding: None,
        args: Vec::new(),
        candidates: Vec::new(),
        created_at: SimTime::ZERO,
        deadline: SimTime::MAX,
        degraded: false,
        attempts: 0,
        hops: 0,
    }
}

/// Zombie-fencing regression: after a shard fails over to a fresh host, a
/// late completion arriving under the *previous* incarnation's epoch must
/// be rejected and counted — never re-applied. Two otherwise identical
/// runs, one with the stale injection, must agree on every per-shard
/// counter; only the rejection counter may differ.
#[test]
fn stale_epoch_completions_are_rejected_and_counted() {
    use aorta_sim::{FaultEvent, FaultPlan, SimTime};

    let run = |inject: bool| {
        let mut cluster = failover_cluster(4242, 0.05, 0.05, 0.05);
        let victim = DeviceId::camera(0);
        let owner = cluster.shard_owning(victim).expect("victim is owned");
        let mut plan = FaultPlan::new();
        plan.schedule(
            SimTime::ZERO + SimDuration::from_secs(150),
            FaultEvent::ProcessCrash(victim),
        );
        cluster.inject_faults(plan);
        cluster.run_for(SimDuration::from_mins(5));

        let events = cluster.failover_report();
        assert_eq!(events.len(), 1, "exactly one failover expected");
        assert_eq!(events[0].shard, owner);
        assert_eq!(cluster.shard_epoch(owner), 2, "epoch must have bumped");
        if inject {
            let admitted = cluster.inject_escalation(owner, 1, stale_probe());
            assert!(!admitted, "stale-epoch escalation was admitted");
        }
        cluster.run_for(SimDuration::from_secs(30));
        cluster
    };

    let clean = run(false);
    let probed = run(true);
    assert_eq!(clean.zombie_rejects(), 0);
    assert_eq!(
        probed.zombie_rejects(),
        1,
        "the stale probe must be counted as a rejection"
    );
    // Zero engine footprint: the zombie changed nothing a shard can see.
    assert_eq!(
        clean.stats().per_shard,
        probed.stats().per_shard,
        "a fenced zombie must not perturb any shard"
    );
    probed.stats().check_conservation().unwrap();
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(12))]

    /// Cluster-wide conservation is a property, not a fixture: under any
    /// seed, shard count and random fault mix, every admitted request is
    /// accounted for exactly once (terminal, pending, or dropped at the
    /// gateway) and the gateway's escalation ledger balances.
    #[test]
    fn cluster_conservation_survives_random_fault_plans(
        seed in 0u64..1_000_000,
        shards in 1usize..=4,
        crash_rate in 0.0f64..0.5,
        loss_burst_rate in 0.0f64..0.5,
        extra_loss in 0.0f64..0.8,
    ) {
        use aorta::cluster::{ClusterConfig, ShardManager};
        use aorta_sim::FaultConfig;

        let lab = PervasiveLab::with_sizes(12, 16, 0)
            .with_periodic_events(SimDuration::from_mins(1), SimDuration::ZERO);
        let mut cluster = ShardManager::new(ClusterConfig::seeded(seed, shards), lab);
        for i in 0..10 {
            cluster
                .execute_sql(&format!(
                    r#"CREATE AQ q{i} AS
                       SELECT photo(c.ip, s.loc, "p")
                       FROM sensor s, camera c
                       WHERE s.accel_x > 500 AND s.id = {i} AND coverage(c.id, s.loc)"#
                ))
                .unwrap();
        }
        let devices: Vec<DeviceId> = (0..12)
            .map(DeviceId::camera)
            .chain((0..16).map(DeviceId::sensor))
            .collect();
        let config = FaultConfig {
            crash_rate,
            loss_burst_rate,
            extra_loss,
            ..FaultConfig::default()
        };
        let plan = FaultPlan::generate(
            seed ^ 0xC0_FFEE,
            SimDuration::from_mins(3),
            &devices,
            &config,
        );
        cluster.inject_faults(plan);
        cluster.run_for(SimDuration::from_mins(3));
        cluster.run_for(SimDuration::from_secs(30));

        let stats = cluster.stats();
        proptest::prop_assert!(
            stats.requests() > 0,
            "workload starved entirely: {stats:?}"
        );
        if let Err(e) = stats.check_conservation() {
            return Err(proptest::test_runner::TestCaseError::fail(format!(
                "seed={seed} shards={shards}: {e}"
            )));
        }
    }

    /// Partition windows, duplicated/reordered snapshot chunks, and a
    /// mid-window process crash are noise the ledger must absorb: under any
    /// seed, window placement and network misbehaviour mix, the cluster
    /// fails over without losing or double-executing a single request, and
    /// the rebuilt incarnation's fence holds.
    #[test]
    fn partitions_and_lossy_shipping_never_violate_conservation(
        seed in 0u64..1_000_000,
        crash_secs in 80u64..200,
        lead_secs in 1u64..30,
        window_secs in 10u64..90,
        loss in 0.0f64..0.3,
        dup_rate in 0.0f64..0.5,
        reorder_rate in 0.0f64..0.5,
    ) {
        use aorta_sim::{FaultEvent, FaultPlan, SimTime};

        let mut cluster = failover_cluster(seed, loss, dup_rate, reorder_rate);
        let victim = DeviceId::camera(0);
        let owner = cluster.shard_owning(victim).expect("victim is owned");
        let sibling = ((owner + 1) % 4) as u32;
        let crash_at = SimTime::ZERO + SimDuration::from_secs(crash_secs);
        let window_at = crash_at - SimDuration::from_secs(lead_secs);
        let window = SimDuration::from_secs(window_secs);
        let mut plan = FaultPlan::new();
        // An asymmetric partition bracketing the crash: the dead shard's
        // stripe cannot reach its preferred sibling in either direction.
        plan.schedule(
            window_at,
            FaultEvent::Partition { a: owner as u32, b: sibling, window },
        );
        plan.schedule(
            window_at,
            FaultEvent::Partition { a: sibling, b: owner as u32, window },
        );
        plan.schedule(crash_at, FaultEvent::ProcessCrash(victim));
        cluster.inject_faults(plan);
        cluster.run_for(SimDuration::from_mins(5));
        cluster.run_for(SimDuration::from_secs(30));

        let stats = cluster.stats();
        proptest::prop_assert!(stats.requests() > 0, "workload starved: {stats:?}");
        proptest::prop_assert_eq!(
            cluster.failover_report().len(),
            1,
            "exactly one failover expected (seed={})", seed
        );
        proptest::prop_assert_eq!(cluster.shard_epoch(owner), 2);
        proptest::prop_assert_eq!(stats.late_successes(), 0u64);
        if let Err(e) = stats.check_conservation() {
            return Err(proptest::test_runner::TestCaseError::fail(format!(
                "seed={seed} crash@{crash_secs}s window={window_secs}s: {e}"
            )));
        }
        // The previous incarnation stays fenced off after the storm.
        let mut probed = cluster;
        proptest::prop_assert!(!probed.inject_escalation(owner, 1, stale_probe()));
        proptest::prop_assert_eq!(probed.zombie_rejects(), 1u64);
    }

    /// A healthy device is never permanently quarantined: a breaker opened
    /// by a finite crash burst must return to Closed within bounded
    /// probation probes once the faults stop — regardless of seed, which
    /// camera crashed, or how long the burst lasted.
    #[test]
    fn breaker_reopens_healthy_devices_after_finite_fault_bursts(
        seed in 0u64..1_000_000,
        cam_idx in 0u32..2,
        burst_secs in 5u64..120,
    ) {
        use aorta::net::{BreakerConfig, BreakerState};
        use aorta_sim::{FaultEvent, SimTime};

        // Reliable cameras so crashes are the *only* failure source: once
        // the burst ends, nothing else can legitimately re-trip the breaker.
        let lab = PervasiveLab::standard()
            .with_reliable_cameras()
            .with_periodic_events(SimDuration::from_mins(1), SimDuration::ZERO);
        let config = EngineConfig::seeded(seed).with_breakers(BreakerConfig::default());
        let mut aorta = Aorta::with_lab(config, lab);
        for i in 0..10 {
            aorta
                .execute_sql(&format!(
                    r#"CREATE AQ q{i} AS
                       SELECT photo(c.ip, s.loc, "p")
                       FROM sensor s, camera c
                       WHERE s.accel_x > 500 AND s.id = {i} AND coverage(c.id, s.loc)"#
                ))
                .unwrap();
        }
        let cam = DeviceId::camera(cam_idx);
        let crash_at = SimTime::ZERO + SimDuration::from_secs(60);
        let recover_at = crash_at + SimDuration::from_secs(burst_secs);
        let mut plan = FaultPlan::new();
        plan.schedule(crash_at, FaultEvent::Crash(cam));
        plan.schedule(recover_at, FaultEvent::Recover(cam));
        aorta.inject_faults(plan);
        // Run well past recovery + cooldown so at least two dispatch epochs
        // (one probation probe each, at most) see the healthy device.
        aorta.run_until(recover_at + SimDuration::from_mins(3));

        proptest::prop_assert!(
            aorta.trace().any("breaker", "opened on crash"),
            "the crash never tripped the breaker:\n{}",
            aorta.trace().render()
        );
        proptest::prop_assert_eq!(
            aorta.breaker_state(cam),
            Some(BreakerState::Closed),
            "device still quarantined {}s after the burst ended", 180
        );
        proptest::prop_assert!(
            aorta.trace().any("breaker", "closed after probation success"),
            "re-admission never traced:\n{}",
            aorta.trace().render()
        );
        let stats = aorta.stats();
        proptest::prop_assert!(stats.breaker_trips >= 1, "{:?}", stats);
        proptest::prop_assert!(stats.breaker_closes >= 1, "{:?}", stats);
    }
}
