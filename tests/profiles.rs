//! Profile round trips across crates: device catalogs, atomic-operation
//! cost tables and action profiles all survive their XML representation and
//! drive consistent behaviour on both ends.

use aorta::engine::{estimate_action_cost, ActionProfile, CostContext};
use aorta::xml::Document;
use aorta_device::{
    catalog_for, parse_catalog, CameraSpec, DeviceKind, OpCostTable, PhotoSize, PtzPosition,
};
use aorta_net::DeviceRegistry;
use aorta_sim::SimDuration;

#[test]
fn registry_schemas_come_from_parsed_catalogs() {
    let registry = DeviceRegistry::new();
    for kind in DeviceKind::ALL {
        let direct = parse_catalog(&catalog_for(kind)).expect("catalog parses");
        assert_eq!(registry.schema(kind), &direct, "{kind}");
    }
}

#[test]
fn cost_tables_round_trip_and_match_simulator() {
    for kind in DeviceKind::ALL {
        let table = OpCostTable::defaults_for(kind);
        let reparsed = OpCostTable::from_xml(&table.to_xml()).expect("valid XML");
        assert_eq!(reparsed, table, "{kind}");
    }
    // The camera table's rated entries reproduce the kinematic photo cost.
    let table = OpCostTable::defaults_for(DeviceKind::Camera);
    let spec = CameraSpec::axis_2130();
    let from = PtzPosition::new(-100.0, -50.0, 0.1);
    let to = PtzPosition::new(60.0, 0.0, 0.9);
    let est = estimate_action_cost(
        &ActionProfile::photo(),
        &table,
        &CostContext::camera(from, to),
    )
    .expect("profile estimates");
    let truth = spec.photo_time(&from, &to, PhotoSize::Medium);
    let diff = est.max(truth) - est.min(truth);
    assert!(diff <= SimDuration::from_micros(3), "{est} vs {truth}");
}

#[test]
fn action_profiles_round_trip_through_xml() {
    for profile in [
        ActionProfile::photo(),
        ActionProfile::sendphoto(),
        ActionProfile::beep(),
    ] {
        let xml = profile.to_xml();
        // The XML parses as a plain document too (well-formedness).
        Document::parse(&xml).expect("well-formed profile XML");
        let back = ActionProfile::from_xml(&xml).expect("profile parses");
        assert_eq!(back, profile);
    }
}

#[test]
fn parsed_profile_estimates_like_the_original() {
    let profile = ActionProfile::photo();
    let reparsed = ActionProfile::from_xml(&profile.to_xml()).unwrap();
    let table = OpCostTable::defaults_for(DeviceKind::Camera);
    let ctx = CostContext::camera(
        PtzPosition::new(-30.0, 5.0, 0.0),
        PtzPosition::new(140.0, -60.0, 1.0),
    );
    assert_eq!(
        estimate_action_cost(&profile, &table, &ctx).unwrap(),
        estimate_action_cost(&reparsed, &table, &ctx).unwrap()
    );
}

#[test]
fn catalog_xml_is_administrator_editable() {
    // An administrator adds an attribute to the sensor catalog; the parsed
    // schema picks it up.
    let xml = catalog_for(DeviceKind::Sensor).replace(
        "</device_catalog>",
        r#"<attribute name="humidity" type="FLOAT" category="sensory" acquire="builtin::sensor::read_humidity"/></device_catalog>"#,
    );
    let schema = parse_catalog(&xml).expect("extended catalog parses");
    assert!(schema.index_of("humidity").is_some());
    assert_eq!(schema.len(), 9);
}
