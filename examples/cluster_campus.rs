//! A campus-scale deployment on the sharded cluster: four `aorta-core`
//! engines behind the routing gateway, each owning a region stripe of the
//! fleet. A crash storm takes out one stripe's cameras mid-run and the
//! gateway re-routes its stranded requests to the cheapest sibling shard.
//!
//! ```text
//! cargo run --example cluster_campus
//! ```

use aorta::cluster::{BatchConfig, ClusterConfig, PartitionPolicy, ShardManager};
use aorta_device::{DeviceId, PervasiveLab};
use aorta_sim::{FaultEvent, FaultPlan, SimDuration, SimTime};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Four shards over a 16-camera / 24-mote campus floor, striped by
    // mount position so each engine owns a contiguous region.
    let lab = PervasiveLab::with_sizes(16, 24, 0)
        .with_periodic_events(SimDuration::from_mins(1), SimDuration::ZERO);
    let mut config = ClusterConfig::seeded(2026, 4);
    config.partition = PartitionPolicy::RegionStripes;
    let mut cluster = ShardManager::new(config, lab);
    println!("== cluster_campus: 4 shards, 16 cameras, 24 motes ==");
    for s in 0..cluster.shard_count() {
        println!(
            "  shard {s}: {} devices registered",
            cluster.shard(s).registry().len()
        );
    }

    // DDL broadcasts to every shard: each engine owns the full query set
    // but only detects events on (and aims cameras of) its own stripe.
    for i in 0..10 {
        cluster.execute_sql(&format!(
            r#"CREATE AQ q{i} AS
               SELECT photo(c.ip, s.loc, "campus/evidence")
               FROM sensor s, camera c
               WHERE s.accel_x > 500 AND s.id = {i}"#
        ))?;
    }

    // A maintenance accident: stripe 0 loses every camera two minutes in.
    let mut plan = FaultPlan::new();
    for idx in 0..16u32 {
        let id = DeviceId::camera(idx);
        if cluster.shard_owning(id) == Some(0) {
            plan.schedule(
                SimTime::ZERO + SimDuration::from_mins(2),
                FaultEvent::Crash(id),
            );
        }
    }
    cluster.inject_faults(plan);

    cluster.run_for(SimDuration::from_mins(10));
    cluster.run_for(SimDuration::from_secs(30));

    let stats = cluster.stats();
    println!("\n== after 10 minutes ==");
    println!(
        "  requests={} executed={} rerouted={} migrations={}",
        stats.requests(),
        stats.executed(),
        cluster.rerouted(),
        cluster.migrations()
    );
    if let Some(lat) = stats.mean_latency_secs() {
        println!("  mean event->completion latency: {lat:.2}s");
    }
    stats.check_conservation().expect("conservation invariant");
    println!("  conservation: every admitted request accounted for exactly once");

    println!("\n== gateway ledger ==");
    for line in cluster.gateway_trace().render().lines().take(8) {
        println!("  {line}");
    }

    // The batch arm used by experiment E8: one photo wave over a large
    // fleet, showing the serial control plane shrinking with shard count.
    println!("\n== E8 batch arm (400 requests / 100 cameras) ==");
    for shards in [1usize, 2, 4] {
        let out = aorta::cluster::run_photo_batch(&BatchConfig {
            requests: 400,
            cameras: 100,
            shards,
            seed: 2026,
            crashed_cameras: 0,
        });
        println!(
            "  k={shards}: makespan={} balanced={} rerouted={}",
            out.makespan, out.balanced, out.rerouted
        );
    }
    Ok(())
}
