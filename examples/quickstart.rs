//! Quickstart: register the paper's snapshot query and watch it take
//! photos in response to sensor events.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use aorta::{Aorta, EngineConfig};
use aorta_device::{DeviceId, DeviceKind, PervasiveLab};
use aorta_sim::SimDuration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's pervasive lab: two ceiling-mounted PTZ cameras, ten
    // MICA2-class motes at places of interest, one manager phone. Mote
    // events (acceleration spikes) fire once a minute, staggered.
    let lab = PervasiveLab::standard()
        .with_periodic_events(SimDuration::from_mins(1), SimDuration::from_secs(5));
    let mut aorta = Aorta::with_lab(EngineConfig::seeded(42), lab);

    // The example action-embedded query of §2.2, verbatim.
    let outputs = aorta.execute_sql(
        r#"CREATE AQ snapshot AS
           SELECT photo(c.ip, s.loc, "photos/admin")
           FROM sensor s, camera c
           WHERE s.accel_x > 500 AND coverage(c.id, s.loc)"#,
    )?;
    println!("registered: {outputs:?}");

    // Show the plan the optimizer built (actions are first-class operators).
    let plan = aorta.execute_sql(
        r#"EXPLAIN SELECT photo(c.ip, s.loc, "photos/admin")
           FROM sensor s, camera c
           WHERE s.accel_x > 500 AND coverage(c.id, s.loc)"#,
    )?;
    if let aorta::engine::ExecOutput::Plan(text) = &plan[0] {
        println!("\nquery plan:\n{text}");
    }

    // Run five simulated minutes.
    aorta.run_for(SimDuration::from_mins(5));

    let stats = aorta.stats();
    println!("after 5 simulated minutes:");
    println!("  events detected:   {}", stats.events_detected);
    println!("  action requests:   {}", stats.requests);
    println!("  photos ok:         {}", stats.photos_ok);
    println!("  failures:          {}", stats.failures());
    println!(
        "  probes (timeouts): {} ({})",
        stats.probes, stats.probe_timeouts
    );
    println!("  lock acquisitions: {}", stats.lock_acquisitions);

    // Peek at what each camera shot.
    for i in 0..2 {
        let cam = aorta
            .registry()
            .get(DeviceId::new(DeviceKind::Camera, i))
            .expect("standard lab has two cameras");
        if let Some(cam) = cam.sim.as_camera() {
            println!(
                "  camera-{i}: {} photos, head now at {}",
                cam.photos().len(),
                cam.rest_position()
            );
        }
    }
    Ok(())
}
