//! The action-workload-scheduling study (§5/§6.3) in miniature: build a
//! photo workload over a ring of cameras and compare all five algorithms,
//! printing the Figure 4-style makespan breakdown.
//!
//! ```text
//! cargo run --release --example scheduling_demo [n_requests] [n_cameras]
//! ```

use aorta::sched::{run_algorithm, workload, Algorithm};
use aorta_sim::{CpuModel, SimRng};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(20);
    let m: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(10);

    println!("Scheduling {n} photo() requests over {m} cameras (uniform workload)\n");
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>10}",
        "algorithm", "makespan(s)", "sched(s)", "service(s)", "ops"
    );

    let cpu = CpuModel::paper_notebook();
    for alg in Algorithm::paper_lineup() {
        // Average over ten seeded runs, like the paper.
        let mut total = 0.0;
        let mut sched = 0.0;
        let mut service = 0.0;
        let mut ops = 0u64;
        const RUNS: u64 = 10;
        for seed in 0..RUNS {
            let (inst, model) = workload::uniform_targets(n, m, &mut SimRng::seed(90 + seed));
            let mut rng = SimRng::seed(seed);
            let r = run_algorithm(&alg, &inst, &model, &cpu, &mut rng);
            total += r.total().as_secs_f64();
            sched += r.sched_time.as_secs_f64();
            service += r.service_makespan.as_secs_f64();
            ops += r.ops;
        }
        println!(
            "{:<14} {:>12.2} {:>12.3} {:>12.2} {:>10}",
            alg.name(),
            total / RUNS as f64,
            sched / RUNS as f64,
            service / RUNS as f64,
            ops / RUNS
        );
    }

    println!("\nExpected shape (paper Figure 4/5): RANDOM worst; LERFA+SRFE and");
    println!("SRFAE beat LS and SA by ~20-40%; SA's scheduling time dominates its");
    println!("makespan while the greedy algorithms' scheduling cost is negligible.");
}
