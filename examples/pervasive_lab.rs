//! The §6.2 monitoring application: ten snapshot queries (one per mote)
//! over two cameras, run with and without device synchronization, showing
//! the interference failures locking eliminates.
//!
//! ```text
//! cargo run --example pervasive_lab
//! ```

use aorta::{Aorta, EngineConfig};
use aorta_device::PervasiveLab;
use aorta_sim::SimDuration;

fn run(label: &str, sync: bool) -> Result<(), Box<dyn std::error::Error>> {
    let lab =
        PervasiveLab::standard().with_periodic_events(SimDuration::from_mins(1), SimDuration::ZERO);
    let config = if sync {
        EngineConfig::seeded(500)
    } else {
        EngineConfig::seeded(500).without_sync()
    };
    let mut aorta = Aorta::with_lab(config, lab);

    // "a photo of Mote i's location was required to be taken by the i-th
    // query every minute (1 ≤ i ≤ 10)" — §6.2.
    for i in 0..10 {
        aorta.execute_sql(&format!(
            r#"CREATE AQ snapshot_{i} AS
               SELECT photo(c.ip, s.loc, "photos/admin")
               FROM sensor s, camera c
               WHERE s.accel_x > 500 AND s.id = {i} AND coverage(c.id, s.loc)"#
        ))?;
    }

    aorta.run_for(SimDuration::from_mins(10));
    aorta.run_for(SimDuration::from_secs(30)); // let in-flight photos settle

    let stats = aorta.stats();
    println!("--- {label} ---");
    println!("  requests:          {}", stats.requests);
    println!("  photos ok:         {}", stats.photos_ok);
    println!("  blurred photos:    {}", stats.photos_blurred);
    println!("  wrong positions:   {}", stats.photos_wrong);
    println!("  connect timeouts:  {}", stats.connect_failures);
    println!("  busy rejections:   {}", stats.busy_rejections);
    println!(
        "  failure rate:      {:.1}%",
        stats.failure_rate().unwrap_or(0.0) * 100.0
    );
    println!("  lock acquisitions: {}", stats.lock_acquisitions);
    println!();
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Reproducing §6.2: effects of device synchronization\n");
    run("without locking (interference)", false)?;
    run("with locking", true)?;
    println!("The paper reports >50% failures without synchronization and");
    println!("~10% with it (residual failures from the heavy two-camera load).");
    Ok(())
}
