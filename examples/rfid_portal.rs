//! The §8 future-work extension in action: an RFID portal (a *fourth*
//! device type added to the uniform data communication layer) triggers
//! camera snapshots of whoever carries a tag through the door.
//!
//! ```text
//! cargo run --example rfid_portal
//! ```

use aorta::{Aorta, EngineConfig};
use aorta_data::Location;
use aorta_device::{
    Camera, CameraFailureModel, CameraSpec, DeviceId, DeviceKind, RfidReader, TagSchedule,
};
use aorta_net::DeviceRegistry;
use aorta_sim::{SimDuration, SimTime};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut registry = DeviceRegistry::new();
    registry.register(
        Camera::new(
            0,
            CameraSpec::axis_2130(),
            Location::new(4.0, 3.0, 3.0),
            90.0,
            CameraFailureModel::reliable(),
        )
        .into(),
        SimTime::ZERO,
    );
    // A tagged pallet passes the portal every 45 seconds.
    registry.register(
        RfidReader::new(0, Location::new(5.0, 4.0, 1.2))
            .with_schedule(TagSchedule::Periodic {
                period: SimDuration::from_secs(45),
                offset: SimDuration::from_secs(5),
                dwell: SimDuration::from_secs(3),
            })
            .into(),
        SimTime::ZERO,
    );

    // The generated catalog for the new kind is ordinary profile XML:
    println!(
        "rfid device catalog:\n{}",
        aorta_device::catalog_for(DeviceKind::Rfid)
    );

    let mut aorta = Aorta::with_registry(EngineConfig::seeded(11), registry);
    aorta.execute_sql(
        r#"CREATE AQ portal_watch AS
           SELECT photo(c.ip, r.loc, "photos/portal")
           FROM rfid r, camera c
           WHERE r.tag_count > 0 AND coverage(c.id, r.loc)"#,
    )?;

    aorta.run_for(SimDuration::from_mins(5));
    aorta.run_for(SimDuration::from_secs(10));

    let stats = aorta.stats();
    println!("after 5 simulated minutes:");
    println!("  tag passages detected: {}", stats.events_detected);
    println!("  portal photos taken:   {}", stats.photos_ok);
    if let Some(latency) = stats.mean_action_latency {
        println!("  mean event→photo:      {latency}");
    }
    let cam = aorta
        .registry()
        .get(DeviceId::camera(0))
        .and_then(|e| e.sim.as_camera().cloned())
        .expect("camera registered");
    println!(
        "  camera head parked at: {} (aimed at the portal)",
        cam.rest_position()
    );
    Ok(())
}
