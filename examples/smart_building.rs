//! A heterogeneous smart-building scenario exercising every device kind:
//! door sensors trigger camera snapshots, the manager's phone gets an MMS
//! via the user-defined `sendphoto` action (§2.2), and a custom
//! `log_incident` action shows user-defined action registration.
//!
//! ```text
//! cargo run --example smart_building
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use aorta::{Aorta, EngineConfig};
use aorta_device::{DeviceId, PervasiveLab};
use aorta_sim::SimDuration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A larger deployment: 4 cameras, 16 motes, 2 phones.
    let lab = PervasiveLab::with_sizes(4, 16, 2)
        .with_periodic_events(SimDuration::from_mins(2), SimDuration::from_secs(7));
    let mut aorta = Aorta::with_lab(EngineConfig::seeded(7), lab);

    // A user-defined action, registered exactly as §2.2 prescribes: stage
    // the code block (a Rust closure standing in for the pre-compiled
    // .dll), then CREATE ACTION with a profile.
    let incidents = Arc::new(AtomicU64::new(0));
    let incidents_in_handler = incidents.clone();
    aorta.register_handler(
        "log_incident",
        Arc::new(move |_registry, _device, args, now, _rng| {
            incidents_in_handler.fetch_add(1, Ordering::Relaxed);
            let which = args.first().and_then(|v| v.as_i64()).unwrap_or(-1);
            println!("  [{now}] incident logged from sensor {which}");
            Ok(now + SimDuration::from_millis(5))
        }),
    );
    aorta.execute_sql(
        r#"CREATE ACTION log_incident(Int sensor_id)
           AS "lib/users/log_incident.dll"
           PROFILE "profiles/sensor/log_incident.xml""#,
    )?;

    // Three concurrent continuous queries sharing the event stream.
    aorta.execute_sql(
        r#"CREATE AQ snapshots AS
           SELECT photo(c.ip, s.loc, "photos/security")
           FROM sensor s, camera c
           WHERE s.accel_x > 500 AND coverage(c.id, s.loc)"#,
    )?;
    aorta.execute_sql(
        r#"CREATE AQ alert_manager AS
           SELECT sendphoto(p.number, "photos/security/latest.jpg")
           FROM sensor s, phone p
           WHERE s.accel_x > 500 AND p.in_coverage = TRUE"#,
    )?;
    aorta.execute_sql(
        r#"CREATE AQ incident_log AS
           SELECT log_incident(s.id)
           FROM sensor t, sensor s
           WHERE s.accel_x > 500"#,
    )?;

    println!("running 10 simulated minutes of building monitoring…");
    aorta.run_for(SimDuration::from_mins(10));

    let stats = aorta.stats();
    println!("\nresults:");
    println!("  events detected:    {}", stats.events_detected);
    println!("  action requests:    {}", stats.requests);
    println!("  photos ok:          {}", stats.photos_ok);
    println!("  MMS delivered:      {}", stats.messages_delivered);
    println!(
        "  incidents logged:   {}",
        incidents.load(Ordering::Relaxed)
    );
    println!(
        "  failure rate:       {:.1}%",
        stats.failure_rate().unwrap_or(0.0) * 100.0
    );

    // The manager's phones received real MMS payloads.
    for i in 0..2 {
        if let Some(phone) = aorta
            .registry()
            .get(DeviceId::phone(i))
            .and_then(|e| e.sim.as_phone().cloned())
        {
            println!(
                "  phone {} inbox: {} messages",
                phone.number(),
                phone.inbox().len()
            );
        }
    }

    // The photo() operator is shared by every query that embeds it (§2.3).
    if let Some(op) = aorta.shared_operator("photo") {
        println!(
            "  shared photo() operator served {} queries, {} requests",
            op.subscriber_count(),
            op.total_enqueued()
        );
    }
    Ok(())
}
