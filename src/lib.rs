//! # Aorta — pervasive query processing
//!
//! Facade crate for the Aorta reproduction (Xue, Luo, Ni — *Systems Support
//! for Pervasive Query Processing*, ICDCS 2005). Re-exports the public
//! surface of each subsystem crate:
//!
//! * [`sim`] — deterministic discrete-event simulation kernel,
//! * [`xml`] — XML subset parser/writer for profiles,
//! * [`data`] — relational data model (values, schemas, tuples),
//! * [`device`] — simulated heterogeneous devices,
//! * [`net`] — uniform data communication layer,
//! * [`sql`] — declarative interface (`CREATE ACTION` / `CREATE AQ`),
//! * [`sched`] — action workload scheduling algorithms,
//! * [`obs`] — deterministic metrics and span events on the virtual clock,
//! * [`engine`] — the action-oriented query processing engine,
//! * [`cluster`] — sharded multi-engine execution with a routing gateway.
//!
//! See the `examples/` directory for runnable end-to-end scenarios and
//! `DESIGN.md` / `EXPERIMENTS.md` for the reproduction methodology.

pub use aorta_cluster as cluster;
pub use aorta_core as engine;
pub use aorta_data as data;
pub use aorta_device as device;
pub use aorta_net as net;
pub use aorta_obs as obs;
pub use aorta_sched as sched;
pub use aorta_sim as sim;
pub use aorta_sql as sql;
pub use aorta_xml as xml;

pub use aorta_core::{Aorta, EngineConfig, PushdownStats};
