//! Robustness: the XML parser must never panic, whatever bytes arrive —
//! profiles are administrator-edited text files, so garbage input is a
//! normal condition that must yield an error, not a crash.

use proptest::prelude::*;

use aorta_xml::Document;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary unicode input: parse returns Ok or Err, never panics.
    #[test]
    fn prop_parse_never_panics(s in ".{0,300}") {
        let _ = Document::parse(&s);
    }

    /// Near-XML input (angle brackets, quotes, ampersands in the mix).
    #[test]
    fn prop_parse_never_panics_on_near_xml(s in r#"[<>/="'&; a-z0-9!?-]{0,200}"#) {
        let _ = Document::parse(&s);
    }

    /// Mutated valid documents: flip a slice out of a real catalog.
    #[test]
    fn prop_parse_survives_truncation(cut in 0usize..400) {
        let valid = r#"<?xml version="1.0"?>
<device_catalog device="sensor">
  <attribute name="accel_x" type="INT" category="sensory"/>
  <attribute name="loc" type="LOCATION" category="non_sensory"/>
</device_catalog>"#;
        let cut = cut.min(valid.len());
        // Truncate at a char boundary.
        let mut end = cut;
        while !valid.is_char_boundary(end) {
            end -= 1;
        }
        let _ = Document::parse(&valid[..end]);
    }
}
