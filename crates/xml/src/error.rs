//! Error type for XML parsing.

use std::error::Error;
use std::fmt;

/// An error produced while parsing an XML document.
///
/// Carries the 1-based line and column of the offending input position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    line: u32,
    column: u32,
    message: String,
}

impl XmlError {
    pub(crate) fn new(line: u32, column: u32, message: impl Into<String>) -> Self {
        XmlError {
            line,
            column,
            message: message.into(),
        }
    }

    /// 1-based line of the error.
    pub fn line(&self) -> u32 {
        self.line
    }

    /// 1-based column of the error.
    pub fn column(&self) -> u32 {
        self.column
    }

    /// The error description, without position information.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at line {}, column {}",
            self.message, self.line, self.column
        )
    }
}

impl Error for XmlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = XmlError::new(3, 14, "unexpected end of input");
        assert_eq!(
            e.to_string(),
            "unexpected end of input at line 3, column 14"
        );
        assert_eq!(e.line(), 3);
        assert_eq!(e.column(), 14);
        assert_eq!(e.message(), "unexpected end of input");
    }
}
