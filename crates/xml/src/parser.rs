//! Recursive-descent parser for the supported XML subset.

use crate::dom::{Document, Element, Node};
use crate::XmlError;

pub(crate) struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
    line: u32,
    column: u32,
}

impl<'a> Parser<'a> {
    pub(crate) fn new(input: &'a str) -> Self {
        Parser {
            input: input.as_bytes(),
            pos: 0,
            line: 1,
            column: 1,
        }
    }

    pub(crate) fn parse_document(mut self) -> Result<Document, XmlError> {
        self.skip_prolog()?;
        let root = self.parse_element()?;
        self.skip_misc()?;
        if self.pos < self.input.len() {
            return Err(self.err("trailing content after root element"));
        }
        Ok(Document::new(root))
    }

    fn err(&self, message: impl Into<String>) -> XmlError {
        XmlError::new(self.line, self.column, message)
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn peek_at(&self, offset: usize) -> Option<u8> {
        self.input.get(self.pos + offset).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(b)
    }

    fn eat(&mut self, expected: u8) -> Result<(), XmlError> {
        match self.peek() {
            Some(b) if b == expected => {
                self.bump();
                Ok(())
            }
            Some(b) => Err(self.err(format!(
                "expected '{}', found '{}'",
                expected as char, b as char
            ))),
            None => Err(self.err(format!(
                "expected '{}', found end of input",
                expected as char
            ))),
        }
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
    }

    /// Skips the optional XML declaration, comments and whitespace before the
    /// root element.
    fn skip_prolog(&mut self) -> Result<(), XmlError> {
        self.skip_ws();
        if self.starts_with("<?xml") {
            while !self.starts_with("?>") {
                if self.bump().is_none() {
                    return Err(self.err("unterminated XML declaration"));
                }
            }
            self.bump();
            self.bump();
        }
        self.skip_misc()
    }

    /// Skips whitespace and comments.
    fn skip_misc(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                self.skip_comment()?;
            } else {
                return Ok(());
            }
        }
    }

    fn skip_comment(&mut self) -> Result<(), XmlError> {
        debug_assert!(self.starts_with("<!--"));
        for _ in 0..4 {
            self.bump();
        }
        while !self.starts_with("-->") {
            if self.bump().is_none() {
                return Err(self.err("unterminated comment"));
            }
        }
        for _ in 0..3 {
            self.bump();
        }
        Ok(())
    }

    fn parse_name(&mut self) -> Result<String, XmlError> {
        let mut name = String::new();
        match self.peek() {
            Some(b) if is_name_start(b) => {
                name.push(b as char);
                self.bump();
            }
            _ => return Err(self.err("expected a name")),
        }
        while let Some(b) = self.peek() {
            if is_name_char(b) {
                name.push(b as char);
                self.bump();
            } else {
                break;
            }
        }
        Ok(name)
    }

    fn parse_element(&mut self) -> Result<Element, XmlError> {
        self.eat(b'<')?;
        let name = self.parse_name()?;
        let mut element = Element::new(name.clone());

        // Attributes.
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') => {
                    self.bump();
                    break;
                }
                Some(b'/') => {
                    self.bump();
                    self.eat(b'>')?;
                    return Ok(element);
                }
                Some(b) if is_name_start(b) => {
                    let key = self.parse_name()?;
                    self.skip_ws();
                    self.eat(b'=')?;
                    self.skip_ws();
                    let value = self.parse_quoted()?;
                    if element.attr(&key).is_some() {
                        return Err(self.err(format!("duplicate attribute '{key}'")));
                    }
                    element.set_attr(key, value);
                }
                Some(b) => {
                    return Err(self.err(format!("unexpected '{}' in tag", b as char)));
                }
                None => return Err(self.err("unterminated start tag")),
            }
        }

        // Content.
        loop {
            if self.starts_with("<!--") {
                self.skip_comment()?;
            } else if self.starts_with("</") {
                self.bump();
                self.bump();
                let close = self.parse_name()?;
                if close != name {
                    return Err(self.err(format!(
                        "mismatched closing tag: expected </{name}>, found </{close}>"
                    )));
                }
                self.skip_ws();
                self.eat(b'>')?;
                return Ok(element);
            } else if self.peek() == Some(b'<') {
                let child = self.parse_element()?;
                element.push_child(Node::Element(child));
            } else if self.peek().is_some() {
                let text = self.parse_text()?;
                if !text.trim().is_empty() {
                    element.push_child(Node::Text(text));
                }
            } else {
                return Err(self.err(format!("unexpected end of input inside <{name}>")));
            }
        }
    }

    fn parse_quoted(&mut self) -> Result<String, XmlError> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err("expected quoted attribute value")),
        };
        self.bump();
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b) if b == quote => {
                    self.bump();
                    return Ok(out);
                }
                Some(b'&') => out.push(self.parse_entity()?),
                Some(b'<') => return Err(self.err("'<' is not allowed in attribute values")),
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through byte by byte.
                    out.push_str(&self.take_utf8_char()?);
                }
                None => return Err(self.err("unterminated attribute value")),
            }
        }
    }

    fn parse_text(&mut self) -> Result<String, XmlError> {
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'<') | None => return Ok(out),
                Some(b'&') => out.push(self.parse_entity()?),
                Some(_) => out.push_str(&self.take_utf8_char()?),
            }
        }
    }

    /// Consumes one complete UTF-8 scalar starting at the current position.
    fn take_utf8_char(&mut self) -> Result<String, XmlError> {
        let first = self.peek().expect("caller checked non-empty");
        let len = match first {
            0x00..=0x7F => 1,
            0xC0..=0xDF => 2,
            0xE0..=0xEF => 3,
            0xF0..=0xF7 => 4,
            _ => return Err(self.err("invalid UTF-8 byte")),
        };
        let mut bytes = Vec::with_capacity(len);
        for i in 0..len {
            match self.peek_at(i) {
                Some(b) => bytes.push(b),
                None => return Err(self.err("truncated UTF-8 sequence")),
            }
        }
        let s = std::str::from_utf8(&bytes)
            .map_err(|_| self.err("invalid UTF-8 sequence"))?
            .to_string();
        for _ in 0..len {
            self.bump();
        }
        Ok(s)
    }

    fn parse_entity(&mut self) -> Result<char, XmlError> {
        debug_assert_eq!(self.peek(), Some(b'&'));
        self.bump();
        let mut body = String::new();
        loop {
            match self.bump() {
                Some(b';') => break,
                Some(b) if body.len() < 10 => body.push(b as char),
                Some(_) => return Err(self.err("entity reference too long")),
                None => return Err(self.err("unterminated entity reference")),
            }
        }
        match body.as_str() {
            "lt" => Ok('<'),
            "gt" => Ok('>'),
            "amp" => Ok('&'),
            "quot" => Ok('"'),
            "apos" => Ok('\''),
            _ if body.starts_with("#x") || body.starts_with("#X") => {
                u32::from_str_radix(&body[2..], 16)
                    .ok()
                    .and_then(char::from_u32)
                    .ok_or_else(|| self.err(format!("invalid character reference '&{body};'")))
            }
            _ if body.starts_with('#') => body[1..]
                .parse::<u32>()
                .ok()
                .and_then(char::from_u32)
                .ok_or_else(|| self.err(format!("invalid character reference '&{body};'"))),
            _ => Err(self.err(format!("unknown entity '&{body};'"))),
        }
    }
}

fn is_name_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b == b':'
}

fn is_name_char(b: u8) -> bool {
    is_name_start(b) || b.is_ascii_digit() || b == b'-' || b == b'.'
}

#[cfg(test)]
mod tests {
    use crate::{Document, XmlError};

    fn parse(s: &str) -> Result<Document, XmlError> {
        Document::parse(s)
    }

    #[test]
    fn minimal_element() {
        let d = parse("<a/>").unwrap();
        assert_eq!(d.root().name(), "a");
        assert!(d.root().is_empty());
    }

    #[test]
    fn declaration_comments_and_whitespace() {
        let d = parse(
            "<?xml version=\"1.0\"?>\n<!-- device catalog -->\n<catalog>\n  <!-- inner -->\n</catalog>\n<!-- tail -->\n",
        )
        .unwrap();
        assert_eq!(d.root().name(), "catalog");
    }

    #[test]
    fn attributes_both_quote_styles() {
        let d = parse(r#"<op name="pan" speed='100'/>"#).unwrap();
        assert_eq!(d.root().attr("name"), Some("pan"));
        assert_eq!(d.root().attr("speed"), Some("100"));
    }

    #[test]
    fn nested_elements_and_text() {
        let d = parse("<a><b>hello</b><b>world</b><c/></a>").unwrap();
        let bs: Vec<String> = d.root().children_named("b").map(|e| e.text()).collect();
        assert_eq!(bs, ["hello", "world"]);
        assert!(d.root().child("c").is_some());
    }

    #[test]
    fn entities_in_text_and_attrs() {
        let d = parse(r#"<m v="a&amp;b&lt;c">x &gt; y &#65; &#x42;</m>"#).unwrap();
        assert_eq!(d.root().attr("v"), Some("a&b<c"));
        assert_eq!(d.root().text(), "x > y A B");
    }

    #[test]
    fn unicode_text() {
        let d = parse("<m>温度 café</m>").unwrap();
        assert_eq!(d.root().text(), "温度 café");
    }

    #[test]
    fn mismatched_tags_rejected() {
        let err = parse("<a><b></a></b>").unwrap_err();
        assert!(err.message().contains("mismatched"), "{err}");
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let err = parse(r#"<a k="1" k="2"/>"#).unwrap_err();
        assert!(err.message().contains("duplicate"), "{err}");
    }

    #[test]
    fn trailing_garbage_rejected() {
        let err = parse("<a/>junk").unwrap_err();
        assert!(err.message().contains("trailing"), "{err}");
    }

    #[test]
    fn unterminated_inputs_rejected() {
        assert!(parse("<a>").is_err());
        assert!(parse("<a foo=\"bar").is_err());
        assert!(parse("<!-- no end").is_err());
        assert!(parse("<a>&nosuch;</a>").is_err());
        assert!(parse("<a>&#xZZ;</a>").is_err());
    }

    #[test]
    fn error_position_is_tracked() {
        let err = parse("<a>\n  <b>\n</a>").unwrap_err();
        assert_eq!(err.line(), 3, "{err}");
    }

    #[test]
    fn whitespace_only_text_dropped() {
        let d = parse("<a>\n   \n  <b/>\n</a>").unwrap();
        assert_eq!(d.root().nodes().count(), 1);
    }

    #[test]
    fn lt_in_attribute_rejected() {
        assert!(parse(r#"<a v="<"/>"#).is_err());
    }
}
