//! Document object model: [`Document`], [`Element`] and [`Node`].

use std::fmt;

use crate::parser::Parser;
use crate::writer;
use crate::XmlError;

/// A parsed XML document: an optional declaration plus a single root element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    root: Element,
}

impl Document {
    /// Wraps `root` into a document.
    pub fn new(root: Element) -> Self {
        Document { root }
    }

    /// Parses a document from text.
    ///
    /// # Errors
    ///
    /// Returns [`XmlError`] (with line/column) on malformed input, including
    /// mismatched tags, unterminated literals, bad entities, or trailing
    /// non-whitespace content after the root element.
    pub fn parse(input: &str) -> Result<Document, XmlError> {
        Parser::new(input).parse_document()
    }

    /// The root element.
    pub fn root(&self) -> &Element {
        &self.root
    }

    /// Mutable access to the root element.
    pub fn root_mut(&mut self) -> &mut Element {
        &mut self.root
    }

    /// Consumes the document, returning the root element.
    pub fn into_root(self) -> Element {
        self.root
    }

    /// Serializes with an XML declaration and 2-space indentation.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::from("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
        writer::write_element(&mut out, &self.root, 0, true);
        out
    }
}

impl fmt::Display for Document {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_pretty_string())
    }
}

/// A child of an element: either a nested element or a text run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// A nested element.
    Element(Element),
    /// A text run (entity references already resolved).
    Text(String),
}

impl Node {
    /// The nested element, if this node is one.
    pub fn as_element(&self) -> Option<&Element> {
        match self {
            Node::Element(e) => Some(e),
            Node::Text(_) => None,
        }
    }

    /// The text content, if this node is a text run.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Node::Text(t) => Some(t),
            Node::Element(_) => None,
        }
    }
}

/// An XML element: name, attributes (in document order) and child nodes.
///
/// # Example
///
/// ```
/// use aorta_xml::Element;
///
/// let e = Element::new("op")
///     .with_attr("name", "pan")
///     .with_attr("cost_us", "250000")
///     .with_text("pan the camera head");
/// assert_eq!(e.attr("cost_us"), Some("250000"));
/// assert_eq!(e.text(), "pan the camera head");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Element {
    name: String,
    attrs: Vec<(String, String)>,
    children: Vec<Node>,
}

impl Element {
    /// Creates an element with no attributes or children.
    pub fn new(name: impl Into<String>) -> Self {
        Element {
            name: name.into(),
            attrs: Vec::new(),
            children: Vec::new(),
        }
    }

    /// The element name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds or replaces an attribute, returning `self` (builder style).
    pub fn with_attr(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.set_attr(key, value);
        self
    }

    /// Appends a child element, returning `self` (builder style).
    pub fn with_child(mut self, child: Element) -> Self {
        self.children.push(Node::Element(child));
        self
    }

    /// Appends a text node, returning `self` (builder style).
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.children.push(Node::Text(text.into()));
        self
    }

    /// Adds or replaces an attribute.
    pub fn set_attr(&mut self, key: impl Into<String>, value: impl Into<String>) {
        let key = key.into();
        let value = value.into();
        if let Some(slot) = self.attrs.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.attrs.push((key, value));
        }
    }

    /// Appends a child node.
    pub fn push_child(&mut self, node: Node) {
        self.children.push(node);
    }

    /// Looks up an attribute value by name.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Looks up an attribute and parses it.
    ///
    /// # Errors
    ///
    /// Returns a descriptive message when the attribute is missing or fails
    /// to parse as `T`.
    pub fn attr_parse<T: std::str::FromStr>(&self, key: &str) -> Result<T, String> {
        let raw = self
            .attr(key)
            .ok_or_else(|| format!("<{}> is missing attribute '{}'", self.name, key))?;
        raw.parse().map_err(|_| {
            format!(
                "<{}> attribute '{}' has unparseable value '{}'",
                self.name, key, raw
            )
        })
    }

    /// All attributes in document order.
    pub fn attrs(&self) -> impl Iterator<Item = (&str, &str)> {
        self.attrs.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// All child nodes in document order.
    pub fn nodes(&self) -> impl Iterator<Item = &Node> {
        self.children.iter()
    }

    /// All child *elements* in document order.
    pub fn children(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(Node::as_element)
    }

    /// The first child element with the given name.
    pub fn child(&self, name: &str) -> Option<&Element> {
        self.children().find(|e| e.name() == name)
    }

    /// All child elements with the given name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.children().filter(move |e| e.name() == name)
    }

    /// Concatenated direct text content, trimmed.
    pub fn text(&self) -> String {
        let mut out = String::new();
        for node in &self.children {
            if let Node::Text(t) = node {
                out.push_str(t);
            }
        }
        out.trim().to_string()
    }

    /// True when the element has no children at all.
    pub fn is_empty(&self) -> bool {
        self.children.is_empty()
    }

    /// Serializes just this element (2-space indentation, no declaration).
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        writer::write_element(&mut out, self, 0, true);
        out
    }
}

impl fmt::Display for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_pretty_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_accessors() {
        let e = Element::new("catalog")
            .with_attr("device", "sensor")
            .with_child(Element::new("attr").with_attr("name", "accel_x"))
            .with_child(Element::new("attr").with_attr("name", "temp"));
        assert_eq!(e.name(), "catalog");
        assert_eq!(e.attr("device"), Some("sensor"));
        assert_eq!(e.attr("missing"), None);
        assert_eq!(e.children().count(), 2);
        assert_eq!(e.children_named("attr").count(), 2);
        assert_eq!(e.child("attr").unwrap().attr("name"), Some("accel_x"));
        assert!(e.child("nope").is_none());
    }

    #[test]
    fn set_attr_replaces() {
        let mut e = Element::new("x");
        e.set_attr("k", "1");
        e.set_attr("k", "2");
        assert_eq!(e.attr("k"), Some("2"));
        assert_eq!(e.attrs().count(), 1);
    }

    #[test]
    fn attr_parse_success_and_failures() {
        let e = Element::new("op").with_attr("cost_us", "250");
        assert_eq!(e.attr_parse::<u64>("cost_us"), Ok(250));
        assert!(e.attr_parse::<u64>("nope").unwrap_err().contains("missing"));
        let bad = Element::new("op").with_attr("cost_us", "abc");
        assert!(bad
            .attr_parse::<u64>("cost_us")
            .unwrap_err()
            .contains("unparseable"));
    }

    #[test]
    fn text_concatenates_and_trims() {
        let e = Element::new("d")
            .with_text("  hello ")
            .with_child(Element::new("b"))
            .with_text("world  ");
        assert_eq!(e.text(), "hello world");
    }

    #[test]
    fn node_accessors() {
        let el = Node::Element(Element::new("a"));
        let tx = Node::Text("t".into());
        assert!(el.as_element().is_some());
        assert!(el.as_text().is_none());
        assert_eq!(tx.as_text(), Some("t"));
        assert!(tx.as_element().is_none());
    }
}
