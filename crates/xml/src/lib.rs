//! # aorta-xml — minimal XML subset for Aorta profiles
//!
//! The paper stores all device metadata as XML text files: per-device-type
//! catalogs, `atomic_operation_cost.xml` cost tables, and per-action
//! *action profiles* used by the cost-based optimizer. This crate implements
//! the substrate from scratch (no external dependencies): a lexer/parser,
//! a small DOM ([`Document`] / [`Element`]), and a pretty-printing writer.
//!
//! ## Supported subset
//!
//! * elements with attributes (single- or double-quoted),
//! * text content with the five predefined entities
//!   (`&lt; &gt; &amp; &quot; &apos;`) and decimal/hex character references,
//! * comments (`<!-- … -->`) and an optional XML declaration (`<?xml … ?>`),
//! * self-closing tags.
//!
//! Not supported (not needed by any profile): DTDs, namespaces, CDATA,
//! processing instructions other than the declaration.
//!
//! # Example
//!
//! ```
//! use aorta_xml::{Document, Element};
//!
//! let doc = Document::parse(r#"<costs device="camera">
//!     <op name="move_head" cost_us="1000"/>
//! </costs>"#)?;
//! assert_eq!(doc.root().attr("device"), Some("camera"));
//! let op = doc.root().child("op").unwrap();
//! assert_eq!(op.attr("name"), Some("move_head"));
//! # Ok::<(), aorta_xml::XmlError>(())
//! ```

#![warn(missing_docs)]

mod dom;
mod error;
mod parser;
mod writer;

pub use dom::{Document, Element, Node};
pub use error::XmlError;
pub use writer::{escape_attr, escape_text};
