//! Pretty-printing serializer.

use crate::dom::{Element, Node};

/// Escapes text content: `& < >`.
///
/// # Example
///
/// ```
/// assert_eq!(aorta_xml::escape_text("a < b & c"), "a &lt; b &amp; c");
/// ```
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escapes attribute values: `& < > " '`.
///
/// # Example
///
/// ```
/// assert_eq!(aorta_xml::escape_attr(r#"say "hi""#), "say &quot;hi&quot;");
/// ```
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
    out
}

pub(crate) fn write_element(out: &mut String, e: &Element, depth: usize, pretty: bool) {
    let indent = if pretty {
        "  ".repeat(depth)
    } else {
        String::new()
    };
    out.push_str(&indent);
    out.push('<');
    out.push_str(e.name());
    for (k, v) in e.attrs() {
        out.push(' ');
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_attr(v));
        out.push('"');
    }

    let nodes: Vec<&Node> = e.nodes().collect();
    if nodes.is_empty() {
        out.push_str("/>");
        if pretty {
            out.push('\n');
        }
        return;
    }

    // Text-only elements render inline: <name>text</name>.
    let text_only = nodes.iter().all(|n| matches!(n, Node::Text(_)));
    out.push('>');
    if text_only {
        for n in nodes {
            if let Node::Text(t) = n {
                out.push_str(&escape_text(t));
            }
        }
    } else {
        if pretty {
            out.push('\n');
        }
        for n in nodes {
            match n {
                Node::Element(child) => write_element(out, child, depth + 1, pretty),
                Node::Text(t) => {
                    if pretty {
                        out.push_str(&"  ".repeat(depth + 1));
                    }
                    out.push_str(&escape_text(t));
                    if pretty {
                        out.push('\n');
                    }
                }
            }
        }
        out.push_str(&indent);
    }
    out.push_str("</");
    out.push_str(e.name());
    out.push('>');
    if pretty {
        out.push('\n');
    }
}

#[cfg(test)]
mod tests {
    use crate::{Document, Element};
    use proptest::prelude::*;

    #[test]
    fn self_closing_and_inline_text() {
        let e = Element::new("costs")
            .with_child(Element::new("op").with_attr("name", "pan"))
            .with_child(Element::new("note").with_text("hi"));
        let s = e.to_pretty_string();
        assert!(s.contains("<op name=\"pan\"/>"), "{s}");
        assert!(s.contains("<note>hi</note>"), "{s}");
    }

    #[test]
    fn escaping_round_trip() {
        let e = Element::new("m")
            .with_attr("v", "a&b\"c'd<e>f")
            .with_text("x < y & z");
        let doc = Document::new(e.clone());
        let reparsed = Document::parse(&doc.to_pretty_string()).unwrap();
        assert_eq!(reparsed.root().attr("v"), Some("a&b\"c'd<e>f"));
        assert_eq!(reparsed.root().text(), "x < y & z");
    }

    #[test]
    fn document_has_declaration() {
        let doc = Document::new(Element::new("root"));
        assert!(doc.to_pretty_string().starts_with("<?xml version=\"1.0\""));
    }

    #[test]
    fn nested_structure_round_trip() {
        let e = Element::new("catalog")
            .with_attr("device", "sensor")
            .with_child(
                Element::new("attrs")
                    .with_child(Element::new("attr").with_attr("name", "accel_x"))
                    .with_child(Element::new("attr").with_attr("name", "temp")),
            );
        let doc = Document::new(e.clone());
        let reparsed = Document::parse(&doc.to_pretty_string()).unwrap();
        assert_eq!(reparsed.root(), &e);
    }

    fn arb_name() -> impl Strategy<Value = String> {
        "[a-z][a-z0-9_]{0,8}".prop_map(|s| s)
    }

    fn arb_element(depth: u32) -> BoxedStrategy<Element> {
        let leaf = (
            arb_name(),
            proptest::collection::vec((arb_name(), ".*{0,20}"), 0..4),
        )
            .prop_map(|(name, attrs)| {
                let mut e = Element::new(name);
                for (k, v) in attrs {
                    e.set_attr(k, v);
                }
                e
            });
        if depth == 0 {
            leaf.boxed()
        } else {
            (
                leaf,
                proptest::collection::vec(arb_element(depth - 1), 0..3),
            )
                .prop_map(|(mut e, kids)| {
                    for k in kids {
                        e = e.with_child(k);
                    }
                    e
                })
                .boxed()
        }
    }

    proptest! {
        /// Serialize → parse is the identity on arbitrary element trees.
        #[test]
        fn prop_round_trip(e in arb_element(3)) {
            let doc = Document::new(e.clone());
            let text = doc.to_pretty_string();
            let reparsed = Document::parse(&text).unwrap();
            prop_assert_eq!(reparsed.root(), &e);
        }

        #[test]
        fn prop_escape_text_never_contains_specials(s in ".*{0,64}") {
            let esc = crate::escape_text(&s);
            prop_assert!(!esc.contains('<'));
            // '&' may only appear as part of an entity.
            for (i, c) in esc.char_indices() {
                if c == '&' {
                    prop_assert!(esc[i..].starts_with("&amp;")
                        || esc[i..].starts_with("&lt;")
                        || esc[i..].starts_with("&gt;"));
                }
            }
        }
    }
}
