//! A minimal, offline drop-in for the subset of the `bytes` crate that the
//! Aorta workspace uses (the wire format in `aorta-net` and its tests).
//!
//! The container image has no access to crates.io, so external dependencies
//! are vendored as purpose-built subsets under `crates/compat/`. This crate
//! keeps the same API shape as `bytes` 1.x for the calls we make: big-endian
//! `get_*`/`put_*` accessors, `BytesMut::freeze`, `Bytes::slice`, and the
//! `Buf`/`BufMut` traits.

use std::ops::{Deref, DerefMut, Range};
use std::sync::Arc;

/// Read-side cursor over a byte buffer (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// Consumes `n` bytes.
    fn advance(&mut self, n: usize);
    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// True while any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies out `n` bytes into an owned buffer.
    fn copy_to_bytes(&mut self, n: usize) -> Bytes
    where
        Self: Sized,
    {
        assert!(n <= self.remaining(), "copy_to_bytes out of bounds");
        let out = Bytes::copy_from_slice(&self.chunk()[..n]);
        self.advance(n);
        out
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        raw.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_be_bytes(raw)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(raw)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(raw)
    }

    /// Reads a big-endian `i64`.
    fn get_i64(&mut self) -> i64 {
        self.get_u64() as i64
    }

    /// Reads a big-endian `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

/// Write-side byte sink (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `i64`.
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

/// A cheaply cloneable, immutable byte buffer with a read cursor.
///
/// Shared storage plus a `(start, end)` window, like the real crate; `Buf`
/// consumption moves `start` forward without copying.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static slice (copies; we don't need the zero-copy variant).
    pub fn from_static(src: &'static [u8]) -> Self {
        Bytes::copy_from_slice(src)
    }

    /// Copies a slice into a fresh buffer.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes::from(src.to_vec())
    }

    /// Length of the unconsumed window.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-window of this buffer (shares storage).
    pub fn slice(&self, range: Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice {range:?} out of bounds for {} bytes",
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// The unconsumed bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copies the unconsumed bytes into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of Bytes");
        self.start += n;
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl From<&[u8]> for BytesMut {
    fn from(v: &[u8]) -> Self {
        BytesMut { data: v.to_vec() }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(42);
        buf.put_i64(-9);
        buf.put_f64(1.5);
        let mut b = buf.freeze();
        assert_eq!(b.remaining(), 1 + 4 + 8 + 8 + 8);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u32(), 0xDEAD_BEEF);
        assert_eq!(b.get_u64(), 42);
        assert_eq!(b.get_i64(), -9);
        assert_eq!(b.get_f64(), 1.5);
        assert!(!b.has_remaining());
    }

    #[test]
    fn slice_and_copy_share_window() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let mut s2 = s.clone();
        let head = s2.copy_to_bytes(2);
        assert_eq!(head.to_vec(), vec![2, 3]);
        assert_eq!(s2.remaining(), 1);
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn advance_past_end_panics() {
        let mut b = Bytes::from(vec![1]);
        b.advance(2);
    }
}
