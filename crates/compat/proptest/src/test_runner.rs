//! Case runner: configuration, deterministic RNG, and failure reporting.

use std::any::Any;

/// Per-test configuration (subset of proptest's `Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum rejected cases (`prop_assume!`) before giving up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// The default configuration with a specific case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case failed an assertion (or panicked).
    Fail(String),
    /// The case was discarded by `prop_assume!`.
    Reject,
}

impl TestCaseError {
    /// A failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Converts a caught panic payload into a failure.
    pub fn from_panic(payload: Box<dyn Any + Send>) -> Self {
        let msg = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "test case panicked".to_string()
        };
        TestCaseError::Fail(msg)
    }
}

/// The deterministic generator handed to strategies.
///
/// xoshiro256++ seeded from the test name via splitmix64 — every run of the
/// same test binary replays the same cases, which substitutes for proptest's
/// persistence files in this offline subset.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// A generator seeded from an arbitrary 64-bit value.
    pub fn seed(seed: u64) -> Self {
        let mut sm = seed;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Rejection sampling to kill modulo bias.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Uniform `usize` in `[0, bound)`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit() < p
        }
    }
}

/// Stable FNV-1a so per-test seeds survive toolchain upgrades.
fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs `config.cases` generated cases of `case`, panicking with the
/// offending inputs on the first failure.
///
/// `case` returns the outcome plus a rendering of the generated inputs (the
/// macro formats them before moving them into the body).
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> (Result<(), TestCaseError>, String),
{
    let seed = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| fnv1a(name));
    let mut rng = TestRng::seed(seed);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    while passed < config.cases {
        let case_no = passed + rejected;
        let (outcome, inputs) = case(&mut rng);
        match outcome {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "proptest {name}: too many rejected cases \
                         ({rejected} rejects, {passed} passes, seed {seed})"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest {name} failed at case {case_no} (seed {seed}):\n  \
                     inputs: {inputs}\n  {msg}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_seed() {
        let mut a = TestRng::seed(9);
        let mut b = TestRng::seed(9);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_is_in_range() {
        let mut r = TestRng::seed(1);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn run_cases_counts_passes() {
        let mut n = 0;
        run_cases(&ProptestConfig::with_cases(10), "counter", |_| {
            n += 1;
            (Ok(()), String::new())
        });
        assert_eq!(n, 10);
    }

    #[test]
    #[should_panic(expected = "inputs: x = 3")]
    fn failure_reports_inputs() {
        run_cases(&ProptestConfig::with_cases(5), "boom", |_| {
            (Err(TestCaseError::fail("nope")), "x = 3; ".to_string())
        });
    }
}
