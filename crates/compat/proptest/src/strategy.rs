//! The [`Strategy`] trait and combinators.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type (subset of proptest's trait;
/// no shrinking — see the crate docs).
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Arc::new(self),
        }
    }
}

/// A cloneable, type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Arc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// The result of [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice among strategies with a common value type (`prop_oneof!`).
pub struct Union<T> {
    variants: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Union<T> {
    /// A union over the given variants (must be non-empty).
    pub fn new(variants: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !variants.is_empty(),
            "prop_oneof! needs at least one variant"
        );
        Union { variants }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.index(self.variants.len());
        self.variants[i].generate(rng)
    }
}

// --- numeric ranges ---------------------------------------------------------

/// Types uniformly sampleable from `Range` / `RangeInclusive` bounds.
pub trait SampleUniform: Sized + Copy + Debug {
    /// Uniform sample from `[lo, hi)`; panics when the range is empty.
    fn sample_half_open(lo: Self, hi: Self, rng: &mut TestRng) -> Self;
    /// Uniform sample from `[lo, hi]`; panics when `lo > hi`.
    fn sample_inclusive(lo: Self, hi: Self, rng: &mut TestRng) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                assert!(lo < hi, "empty range {lo:?}..{hi:?}");
                let span = (hi as i128 - lo as i128) as u128;
                // span <= u64::MAX for all supported widths.
                let off = rng.below(span as u64) as i128;
                (lo as i128 + off) as $t
            }
            fn sample_inclusive(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                assert!(lo <= hi, "empty range {lo:?}..={hi:?}");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Only reachable for the full u64/i64/usize domain.
                    return rng.next_u64() as $t;
                }
                let off = rng.below(span as u64) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                assert!(lo < hi, "empty range {lo:?}..{hi:?}");
                lo + (rng.unit() as $t) * (hi - lo)
            }
            fn sample_inclusive(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                assert!(lo <= hi, "empty range {lo:?}..={hi:?}");
                // Closed/open distinction is immaterial at f64 resolution.
                lo + (rng.unit() as $t) * (hi - lo)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

// --- tuples -----------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($S:ident/$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);

// --- string patterns --------------------------------------------------------

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::seed(1234)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (10u64..20).generate(&mut r);
            assert!((10..20).contains(&v));
            let w = (-5i64..=5).generate(&mut r);
            assert!((-5..=5).contains(&w));
            let f = (-1.0..1.0f64).generate(&mut r);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn map_flat_map_union_compose() {
        let mut r = rng();
        let s = crate::prop_oneof![(0u32..10).prop_map(|x| x * 2), Just(99u32),];
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!(v == 99 || (v % 2 == 0 && v < 20));
        }
        let nested = (1usize..4).prop_flat_map(|n| crate::collection::vec(0u8..10, n));
        for _ in 0..100 {
            let v = nested.generate(&mut r);
            assert!((1..4).contains(&v.len()));
        }
    }

    #[test]
    fn boxed_strategies_clone() {
        let b = (0i64..5).boxed();
        let c = b.clone();
        let mut r = rng();
        let _ = b.generate(&mut r);
        let _ = c.generate(&mut r);
    }
}
