//! Collection strategies (`collection::vec`).

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A size specification: an exact length or a length range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range {r:?}");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range {r:?}");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        if self.lo == self.hi_inclusive {
            self.lo
        } else {
            self.lo + rng.index(self.hi_inclusive - self.lo + 1)
        }
    }
}

/// Strategy producing `Vec`s of an element strategy's values.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// A `Vec` strategy with the given element strategy and size spec.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_respect_spec() {
        let mut rng = TestRng::seed(7);
        let exact = vec(0u8..10, 9usize);
        let ranged = vec(0u8..10, 2..5usize);
        let inclusive = vec(0u8..10, 1..=3usize);
        for _ in 0..200 {
            assert_eq!(exact.generate(&mut rng).len(), 9);
            assert!((2..5).contains(&ranged.generate(&mut rng).len()));
            assert!((1..=3).contains(&inclusive.generate(&mut rng).len()));
        }
    }
}
