//! `Arbitrary` and [`any`] for the primitive types the workspace tests use.

use std::fmt::Debug;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized + Debug {
    /// The canonical strategy type.
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy covering the whole domain.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (mirrors `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-domain strategy for one primitive type.
#[derive(Debug, Clone, Copy)]
pub struct AnyPrimitive<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T> Default for AnyPrimitive<T> {
    fn default() -> Self {
        AnyPrimitive {
            _marker: std::marker::PhantomData,
        }
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive::default()
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive::default()
    }
}

macro_rules! impl_arbitrary_float {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                // Finite values spanning a wide magnitude range; NaN/inf would
                // make most equality-based properties vacuous.
                let mag = (rng.unit() * 2.0 - 1.0) * 1e9;
                mag as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive::default()
            }
        }
    )*};
}

impl_arbitrary_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_covers_both_booleans() {
        let mut rng = TestRng::seed(5);
        let s = any::<bool>();
        let mut seen = [false, false];
        for _ in 0..64 {
            seen[usize::from(s.generate(&mut rng))] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn any_i64_produces_negatives_and_positives() {
        let mut rng = TestRng::seed(6);
        let s = any::<i64>();
        let vals: Vec<i64> = (0..64).map(|_| s.generate(&mut rng)).collect();
        assert!(vals.iter().any(|&v| v < 0));
        assert!(vals.iter().any(|&v| v > 0));
    }
}
