//! String generation from a small regex subset.
//!
//! Supports exactly the pattern features the workspace tests use: literal
//! characters, `.`, character classes (`[a-z0-9_]`, ranges, literal `-` at
//! either end), and the quantifiers `*`, `+`, `?`, `{m}`, `{m,n}`. A
//! quantifier directly following a quantified atom (as in `.*{0,20}`) nests
//! the repetition, matching how such patterns behave as generators.

use crate::test_runner::TestRng;

/// Characters generated for `.`: printable ASCII plus a few multi-byte code
/// points to exercise UTF-8 paths. Deliberately excludes control characters
/// (`\n`, `\t`, ...) so round-trip tests over line- or field-oriented formats
/// stay meaningful.
fn dot_chars() -> Vec<char> {
    let mut out: Vec<char> = (0x20u8..=0x7E).map(char::from).collect();
    out.extend(['\u{00E9}', '\u{03BB}', '\u{4E16}', '\u{1F980}']);
    out
}

#[derive(Debug, Clone)]
enum Node {
    /// One character drawn uniformly from the set.
    OneOf(Vec<char>),
    /// The inner node repeated between `lo` and `hi` times (inclusive).
    Repeat(Box<Node>, usize, usize),
}

/// Unbounded quantifiers (`*`, `+`) cap their repetition here; real proptest
/// uses a similar soft bound rather than truly unbounded strings.
const UNBOUNDED_CAP: usize = 8;

fn parse(pattern: &str) -> Vec<Node> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut nodes: Vec<Node> = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        match chars[i] {
            '[' => {
                let close = chars[i + 1..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| p + i + 1)
                    .unwrap_or_else(|| panic!("unclosed class in pattern {pattern:?}"));
                nodes.push(Node::OneOf(parse_class(&chars[i + 1..close], pattern)));
                i = close + 1;
            }
            '.' => {
                nodes.push(Node::OneOf(dot_chars()));
                i += 1;
            }
            '*' => {
                wrap_last(&mut nodes, 0, UNBOUNDED_CAP, pattern);
                i += 1;
            }
            '+' => {
                wrap_last(&mut nodes, 1, UNBOUNDED_CAP, pattern);
                i += 1;
            }
            '?' => {
                wrap_last(&mut nodes, 0, 1, pattern);
                i += 1;
            }
            '{' => {
                let close = chars[i + 1..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| p + i + 1)
                    .unwrap_or_else(|| panic!("unclosed quantifier in pattern {pattern:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                let (lo, hi) = match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.parse().expect("bad quantifier lower bound"),
                        hi.parse().expect("bad quantifier upper bound"),
                    ),
                    None => {
                        let n = body.parse().expect("bad quantifier count");
                        (n, n)
                    }
                };
                assert!(lo <= hi, "inverted quantifier in pattern {pattern:?}");
                wrap_last(&mut nodes, lo, hi, pattern);
                i = close + 1;
            }
            '\\' => {
                let escaped = *chars
                    .get(i + 1)
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                nodes.push(Node::OneOf(vec![escaped]));
                i += 2;
            }
            c => {
                nodes.push(Node::OneOf(vec![c]));
                i += 1;
            }
        }
    }
    nodes
}

fn wrap_last(nodes: &mut Vec<Node>, lo: usize, hi: usize, pattern: &str) {
    let last = nodes
        .pop()
        .unwrap_or_else(|| panic!("quantifier with nothing to repeat in pattern {pattern:?}"));
    nodes.push(Node::Repeat(Box::new(last), lo, hi));
}

fn parse_class(body: &[char], pattern: &str) -> Vec<char> {
    assert!(!body.is_empty(), "empty class in pattern {pattern:?}");
    let mut set = Vec::new();
    let mut i = 0;
    while i < body.len() {
        // `a-z` is a range unless `-` is the first or last character.
        if i + 2 < body.len() && body[i + 1] == '-' {
            let (lo, hi) = (body[i], body[i + 2]);
            assert!(lo <= hi, "inverted class range in pattern {pattern:?}");
            set.extend((lo..=hi).filter(|c| c.is_ascii() || *c as u32 <= 0x10FFFF));
            i += 3;
        } else {
            set.push(body[i]);
            i += 1;
        }
    }
    set
}

fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::OneOf(set) => out.push(set[rng.index(set.len())]),
        Node::Repeat(inner, lo, hi) => {
            let n = lo + rng.index(hi - lo + 1);
            for _ in 0..n {
                emit(inner, rng, out);
            }
        }
    }
}

/// Generates one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let nodes = parse(pattern);
    let mut out = String::new();
    for node in &nodes {
        emit(node, rng, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::seed(0xDEC0DE)
    }

    #[test]
    fn identifier_pattern_shapes() {
        let mut r = rng();
        for _ in 0..300 {
            let s = generate("[a-z][a-z0-9_]{0,8}", &mut r);
            let chars: Vec<char> = s.chars().collect();
            assert!((1..=9).contains(&chars.len()));
            assert!(chars[0].is_ascii_lowercase());
            assert!(chars[1..]
                .iter()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || *c == '_'));
        }
    }

    #[test]
    fn class_with_literal_dash_and_specials() {
        let mut r = rng();
        for _ in 0..300 {
            let s = generate("[a-z/._-]{1,16}", &mut r);
            assert!((1..=16).contains(&s.chars().count()));
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || "/._-".contains(c)));
        }
    }

    #[test]
    fn dot_bounds_and_no_control_chars() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate(".{0,300}", &mut r);
            assert!(s.chars().count() <= 300);
            assert!(!s.chars().any(char::is_control));
        }
    }

    #[test]
    fn nested_quantifier_parses() {
        let mut r = rng();
        for _ in 0..100 {
            // `.*` capped at 8 chars, repeated up to 20 times.
            let s = generate(".*{0,20}", &mut r);
            assert!(s.chars().count() <= 8 * 20);
        }
    }

    #[test]
    fn space_to_tilde_range() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate("[ -~]{0,12}", &mut r);
            assert!(s.chars().count() <= 12);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }
}
