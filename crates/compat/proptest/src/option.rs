//! `Option` strategies (`option::of`, `option::weighted`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy producing `Option`s of an inner strategy's values.
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
    some_probability: f64,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.chance(self.some_probability) {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}

/// `Some` three quarters of the time (matches proptest's default weighting).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    weighted(0.75, inner)
}

/// `Some` with the given probability.
pub fn weighted<S: Strategy>(some_probability: f64, inner: S) -> OptionStrategy<S> {
    assert!(
        (0.0..=1.0).contains(&some_probability),
        "probability {some_probability} out of [0, 1]"
    );
    OptionStrategy {
        inner,
        some_probability,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_respects_probability_extremes() {
        let mut rng = TestRng::seed(8);
        let always = weighted(1.0, 0u8..10);
        let never = weighted(0.0, 0u8..10);
        for _ in 0..100 {
            assert!(always.generate(&mut rng).is_some());
            assert!(never.generate(&mut rng).is_none());
        }
    }

    #[test]
    fn of_produces_both_variants() {
        let mut rng = TestRng::seed(9);
        let s = of(0u8..10);
        let vals: Vec<_> = (0..200).map(|_| s.generate(&mut rng)).collect();
        assert!(vals.iter().any(Option::is_some));
        assert!(vals.iter().any(Option::is_none));
    }
}
