//! A minimal, offline drop-in for the subset of `proptest` that the Aorta
//! workspace uses.
//!
//! The container image has no crates.io access, so external dev-dependencies
//! are vendored as purpose-built subsets under `crates/compat/`. This crate
//! keeps the *API shape* of proptest 1.x for the features our tests exercise:
//!
//! * the [`proptest!`] macro with `#![proptest_config(...)]`, doc comments
//!   and `pattern in strategy` bindings,
//! * [`strategy::Strategy`] with `prop_map` / `prop_flat_map` / `boxed`,
//!   tuple strategies, ranges, [`strategy::Just`], [`prop_oneof!`] unions,
//! * [`collection::vec`], [`option::of`] / [`option::weighted`],
//!   [`arbitrary::any`], and regex-subset string strategies (`"[a-z]{1,8}"`),
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` / `prop_assume!`.
//!
//! Semantics differ from real proptest in one deliberate way: there is no
//! shrinking. A failing case reports the generated inputs and the fixed
//! per-test seed, which is enough to reproduce (generation is deterministic
//! per test name, so reruns hit the same cases).

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines deterministic property tests (subset of proptest's macro).
///
/// Accepts an optional `#![proptest_config(expr)]` header and any number of
/// `fn name(pattern in strategy, ...) { body }` items, each carrying its own
/// attributes (`#[test]`, doc comments).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $pat:pat in $strat:expr ),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                // Strategies are built once; generation is per case.
                $crate::test_runner::run_cases(&__config, stringify!($name), |__rng| {
                    let mut __inputs = ::std::string::String::new();
                    $(
                        let __value = $crate::strategy::Strategy::generate(&($strat), __rng);
                        __inputs.push_str(&::std::format!(
                            "{} = {:?}; ",
                            stringify!($pat),
                            &__value
                        ));
                        let $pat = __value;
                    )+
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        match ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                            move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                                $body
                                ::std::result::Result::Ok(())
                            },
                        )) {
                            ::std::result::Result::Ok(r) => r,
                            ::std::result::Result::Err(payload) => ::std::result::Result::Err(
                                $crate::test_runner::TestCaseError::from_panic(payload),
                            ),
                        };
                    (__outcome, __inputs)
                });
            }
        )*
    };
}

/// Picks uniformly among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $strat:expr ),+ $(,)? ) => {
        $crate::strategy::Union::new(::std::vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}

/// Asserts a condition inside a property test, reporting generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} != {:?}: {}",
            l,
            r,
            ::std::format!($($fmt)*)
        );
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {:?} == {:?}: {}",
            l,
            r,
            ::std::format!($($fmt)*)
        );
    }};
}

/// Discards the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
