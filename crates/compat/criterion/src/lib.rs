//! A minimal, offline drop-in for the subset of `criterion` that the Aorta
//! bench targets use.
//!
//! The container image has no crates.io access, so external dependencies are
//! vendored as purpose-built subsets under `crates/compat/`. This crate keeps
//! criterion's API shape (`benchmark_group`, `bench_function`,
//! `bench_with_input`, `criterion_group!`/`criterion_main!`) but swaps the
//! statistical machinery for a single timed run per benchmark: each bench
//! body executes `sample_size` iterations and reports the mean wall-clock
//! time. That keeps `cargo bench` (and `cargo test`, which also runs
//! `harness = false` bench targets) fast and dependency-free while preserving
//! a usable relative-cost signal.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value (best-effort stable-Rust
/// version, same trick criterion uses as its fallback).
pub fn black_box<T>(value: T) -> T {
    unsafe {
        let ret = std::ptr::read_volatile(&value);
        std::mem::forget(value);
        ret
    }
}

/// Entry point handed to `criterion_group!` functions.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("bench", &id.to_string(), 10, f);
        self
    }
}

/// A named benchmark group with shared measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; this subset has no warm-up phase.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; measurement is `sample_size` runs.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Times `f` under the given id.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.to_string(), self.sample_size, f);
        self
    }

    /// Times `f` with a borrowed input under the given id.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.to_string(), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark id of the form `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter rendering.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Runs and times the benchmark body.
pub struct Bencher {
    iters: usize,
    elapsed: Duration,
}

impl Bencher {
    /// Times `sample_size` calls of `routine`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        iters: sample_size,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let mean = bencher.elapsed.as_secs_f64() / sample_size.max(1) as f64;
    println!(
        "{group}/{id}: {:.3} ms/iter ({sample_size} iters)",
        mean * 1e3
    );
}

/// Declares a function that runs each listed benchmark with a fresh
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_bodies() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(1));
        let mut calls = 0usize;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
            });
        });
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7usize, |b, &n| {
            b.iter(|| n * 2);
        });
        group.finish();
        assert_eq!(calls, 3);
    }

    #[test]
    fn black_box_is_identity() {
        assert_eq!(black_box(41) + 1, 42);
    }
}
