//! # aorta-obs — deterministic observability on the virtual clock
//!
//! Metrics and tracing for the Aorta reproduction. Unlike conventional
//! observability stacks, every timestamp here is a [`SimTime`] read from the
//! deterministic simulation clock and every latency is a [`SimDuration`]
//! measured in virtual microseconds, so two runs with the same seed produce
//! **byte-identical** snapshots — the exporters below are part of the
//! determinism test surface, not best-effort telemetry.
//!
//! The crate provides:
//!
//! * [`MetricsRegistry`] — counters, gauges and fixed-bucket latency
//!   histograms keyed by `(name, sorted labels)`, stored in `BTreeMap`s so
//!   iteration (and therefore export) order is stable,
//! * [`SpanEvent`] / [`SpanKind`] — structured span events for the engine's
//!   load-bearing stages (`probe`, `lock_wait`, `schedule`, `execute`,
//!   `gateway_route`), kept in a bounded ring with an explicit drop counter,
//! * [`SharedMetrics`] — a cheaply clonable handle shared across the engine
//!   layers (core, net, sched, cluster) that all record into one registry,
//! * [`MetricsRegistry::to_json`] and [`MetricsRegistry::to_prometheus`] —
//!   hand-rolled, dependency-free exporters with deterministic formatting.
//!
//! Recording is strictly *write-only*: nothing in the engine ever reads a
//! metric back to make a decision, so enabling observability cannot perturb
//! control flow, RNG draws, or virtual-time event ordering.
//!
//! # Example
//!
//! ```
//! use aorta_obs::{SharedMetrics, SpanKind};
//! use aorta_sim::{SimDuration, SimTime};
//!
//! let metrics = SharedMetrics::new();
//! metrics.incr("aorta_probe_attempts", &[("device", "camera-3")], 1);
//! metrics.observe(
//!     "aorta_probe_rtt",
//!     &[("device", "camera-3")],
//!     SimDuration::from_millis(12),
//! );
//! metrics.span(
//!     SpanKind::Probe,
//!     SimTime::ZERO,
//!     SimDuration::from_millis(12),
//!     "device=camera-3",
//! );
//! let snap = metrics.snapshot();
//! assert!(snap.to_prometheus().contains("aorta_probe_attempts"));
//! assert!(snap.to_json().contains("\"aorta_probe_rtt\""));
//! ```

#![warn(missing_docs)]

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use aorta_sim::{SimDuration, SimTime};

/// Fixed histogram bucket upper bounds, in virtual microseconds.
///
/// The bounds span 100 µs (intra-epoch bookkeeping) to 30 s (the longest
/// deadline any experiment configures), with a final implicit `+Inf` bucket.
/// They are fixed — never derived from observed data — so the exported
/// bucket layout is identical across runs regardless of workload.
pub const LATENCY_BUCKETS_US: &[u64] = &[
    100, 500, 1_000, 5_000, 10_000, 50_000, 100_000, 250_000, 500_000, 1_000_000, 2_500_000,
    5_000_000, 10_000_000, 30_000_000,
];

/// Maximum number of span events retained in the ring buffer.
///
/// Older events are dropped (and counted in `spans_dropped`) once the ring
/// is full, bounding memory during long soak runs.
pub const SPAN_RING_CAP: usize = 10_000;

/// Metric names emitted by the vectorized event-detection pipeline in
/// `aorta-core` (the shared predicate index).
///
/// Centralised here so the engine, the soak tests and the differential
/// harness agree on spelling, and so the invariant the soak test checks —
/// `INDEXED_EVALS + FALLBACK_EVALS == CONJUNCT_EVALS`, i.e. every logical
/// conjunct evaluation is attributed to exactly one serving strategy — is
/// written against named constants rather than string literals.
pub mod detect_metrics {
    /// Counter: logical conjunct evaluations served by interned (shared)
    /// comparisons. "Logical" means per member query, the unit the scalar
    /// loop counts in, even though the index evaluates each distinct
    /// comparison only once per batch.
    pub const INDEXED_EVALS: &str = "aorta_indexed_evals";
    /// Counter: logical conjunct evaluations served by scalar-fallback
    /// slots (non-indexable conjuncts such as function calls or ORs).
    pub const FALLBACK_EVALS: &str = "aorta_fallback_evals";
    /// Counter: total logical conjunct evaluations, short-circuit aware.
    /// Always equals `INDEXED_EVALS + FALLBACK_EVALS`.
    pub const CONJUNCT_EVALS: &str = "aorta_conjunct_evals";
    /// Counter, labelled `kind`: tuples per scan batch fed to detection.
    pub const BATCH_TUPLES: &str = "aorta_detect_batch_tuples";
    /// Gauge: live distinct comparisons interned in the predicate index.
    pub const INDEX_CMPS: &str = "aorta_predicate_index_cmps";
    /// Gauge: live query groups in the predicate index.
    pub const INDEX_GROUPS: &str = "aorta_predicate_index_groups";
}

/// Metric names for the in-network pushdown accounting pass.
///
/// Same rationale as [`detect_metrics`]: the engine records these and the
/// pushdown experiment asserts over them, so the spelling lives in one
/// place. All byte series are hop-weighted (a reply from a mote `d` hops
/// out is forwarded `d` times).
pub mod push_metrics {
    /// Counter, labelled `kind`: scanned tuples shipped in full.
    pub const SHIPPED: &str = "aorta_push_shipped_tuples";
    /// Counter, labelled `kind`: scanned tuples suppressed device-side
    /// (every watching query's pushed prefix evaluated cleanly false).
    pub const SUPPRESSED: &str = "aorta_push_suppressed_tuples";
    /// Counter, labelled `kind`: hop-weighted bytes actually on the wire
    /// (full replies plus one-byte suppression markers).
    pub const WIRE_BYTES: &str = "aorta_push_wire_bytes";
    /// Counter, labelled `kind`: hop-weighted bytes the scans would have
    /// cost with pushdown off.
    pub const BASELINE_BYTES: &str = "aorta_push_baseline_bytes";
}

/// The instrumented engine stage a [`SpanEvent`] belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpanKind {
    /// A device probe round-trip (attempt, including retries).
    Probe,
    /// Virtual time a request spent waiting on a device lock.
    LockWait,
    /// One scheduling pass (LERFA phase-1 + SRFE phase-2) over a batch.
    Schedule,
    /// One action request executing on a device.
    Execute,
    /// A gateway routing decision for an escalated request.
    GatewayRoute,
    /// One crash-recovery replay (snapshot load + WAL suffix).
    Recovery,
    /// One cross-host failover: image cut, shipment, and rebuild on the
    /// adopting host (the degraded window, gateway-side).
    Failover,
}

impl SpanKind {
    /// Stable lower-snake-case name used in both export formats.
    pub fn as_str(&self) -> &'static str {
        match self {
            SpanKind::Probe => "probe",
            SpanKind::LockWait => "lock_wait",
            SpanKind::Schedule => "schedule",
            SpanKind::Execute => "execute",
            SpanKind::GatewayRoute => "gateway_route",
            SpanKind::Recovery => "recovery",
            SpanKind::Failover => "failover",
        }
    }
}

/// One structured span event: a stage, when it happened on the virtual
/// clock, how long it took in virtual time, and a free-form label
/// (`query=3 device=camera-1`-style).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Virtual time at which the span completed.
    pub at: SimTime,
    /// Which engine stage produced the span.
    pub kind: SpanKind,
    /// Virtual duration of the stage.
    pub duration: SimDuration,
    /// Space-separated `key=value` context (query, device, shard, …).
    pub label: String,
}

/// A fixed-bucket latency histogram over virtual microseconds.
///
/// Bucket bounds come from [`LATENCY_BUCKETS_US`] plus an implicit `+Inf`
/// bucket; counts are cumulative only at export time (stored per-bucket).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    sum_us: u128,
    count: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: vec![0; LATENCY_BUCKETS_US.len() + 1],
            sum_us: 0,
            count: 0,
        }
    }
}

impl Histogram {
    /// Record one duration.
    pub fn observe(&mut self, d: SimDuration) {
        let us = d.as_micros();
        let idx = LATENCY_BUCKETS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(LATENCY_BUCKETS_US.len());
        self.counts[idx] += 1;
        self.sum_us += us as u128;
        self.count += 1;
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed durations, in virtual microseconds.
    pub fn sum_us(&self) -> u128 {
        self.sum_us
    }

    /// Fold another histogram into this one bucket-by-bucket.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum_us += other.sum_us;
        self.count += other.count;
    }

    fn cumulative(&self) -> Vec<u64> {
        let mut acc = 0u64;
        self.counts
            .iter()
            .map(|c| {
                acc += c;
                acc
            })
            .collect()
    }
}

/// Series key: metric name plus its sorted label set.
type SeriesKey = (String, Vec<(String, String)>);

fn series_key(name: &str, labels: &[(&str, &str)]) -> SeriesKey {
    let mut l: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    l.sort();
    (name.to_string(), l)
}

/// The deterministic metrics store: counters, gauges, histograms, and a
/// bounded ring of span events.
///
/// All maps are `BTreeMap`s keyed by `(name, sorted labels)`, so iteration
/// order — and therefore the byte layout of both exporters — is a pure
/// function of the recorded data.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    counters: BTreeMap<SeriesKey, u64>,
    gauges: BTreeMap<SeriesKey, i64>,
    histograms: BTreeMap<SeriesKey, Histogram>,
    spans: VecDeque<SpanEvent>,
    span_counts: BTreeMap<String, u64>,
    spans_dropped: u64,
}

impl MetricsRegistry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increment a counter series by `by`.
    pub fn incr(&mut self, name: &str, labels: &[(&str, &str)], by: u64) {
        *self.counters.entry(series_key(name, labels)).or_insert(0) += by;
    }

    /// Overwrite a counter series with an externally maintained total
    /// (used to sync engine-side counters into the registry at snapshot
    /// time without double-counting).
    pub fn counter_set(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.counters.insert(series_key(name, labels), value);
    }

    /// Set a gauge series to `value`.
    pub fn gauge_set(&mut self, name: &str, labels: &[(&str, &str)], value: i64) {
        self.gauges.insert(series_key(name, labels), value);
    }

    /// Record one duration into a histogram series.
    pub fn observe(&mut self, name: &str, labels: &[(&str, &str)], d: SimDuration) {
        self.histograms
            .entry(series_key(name, labels))
            .or_default()
            .observe(d);
    }

    /// Read a counter series back (test/assertion helper — the engine
    /// itself never reads metrics).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.counters
            .get(&series_key(name, labels))
            .copied()
            .unwrap_or(0)
    }

    /// Sum a counter across all label sets sharing `name`.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|((n, _), _)| n == name)
            .map(|(_, v)| v)
            .sum()
    }

    /// Record a structured span event. The ring holds at most
    /// [`SPAN_RING_CAP`] events; overflow evicts the oldest and bumps the
    /// dropped counter.
    pub fn span(&mut self, kind: SpanKind, at: SimTime, duration: SimDuration, label: &str) {
        *self
            .span_counts
            .entry(kind.as_str().to_string())
            .or_insert(0) += 1;
        if self.spans.len() == SPAN_RING_CAP {
            self.spans.pop_front();
            self.spans_dropped += 1;
        }
        self.spans.push_back(SpanEvent {
            at,
            kind,
            duration,
            label: label.to_string(),
        });
    }

    /// Number of span events currently retained.
    pub fn span_len(&self) -> usize {
        self.spans.len()
    }

    /// Number of span events evicted from the full ring.
    pub fn spans_dropped(&self) -> u64 {
        self.spans_dropped
    }

    /// Iterate retained span events, oldest first.
    pub fn spans(&self) -> impl Iterator<Item = &SpanEvent> {
        self.spans.iter()
    }

    /// Fold `other` into `self`, appending one extra `(key, value)` label
    /// to every series from `other` (used to merge per-shard registries
    /// into a cluster-wide snapshot under a `shard` label).
    pub fn merge_labeled(&mut self, other: &MetricsRegistry, key: &str, value: &str) {
        let relabel = |(name, labels): &SeriesKey| -> SeriesKey {
            let mut l = labels.clone();
            l.push((key.to_string(), value.to_string()));
            l.sort();
            (name.clone(), l)
        };
        for (k, v) in &other.counters {
            *self.counters.entry(relabel(k)).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(relabel(k), *v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(relabel(k)).or_default().merge(h);
        }
        for (kind, n) in &other.span_counts {
            *self.span_counts.entry(kind.clone()).or_insert(0) += n;
        }
        self.spans_dropped += other.spans_dropped;
        for ev in &other.spans {
            if self.spans.len() == SPAN_RING_CAP {
                self.spans.pop_front();
                self.spans_dropped += 1;
            }
            self.spans.push_back(SpanEvent {
                at: ev.at,
                kind: ev.kind,
                duration: ev.duration,
                label: format!("{key}={value} {}", ev.label),
            });
        }
    }

    /// Export the full snapshot as deterministic, pretty-stable JSON.
    ///
    /// Series appear in `BTreeMap` order; span events appear oldest-first.
    /// No floating point is emitted — all values are integers in virtual
    /// microseconds — so formatting is platform-independent.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"counters\": [");
        let mut first = true;
        for ((name, labels), v) in &self.counters {
            json_series_open(&mut out, &mut first, name, labels);
            let _ = write!(out, "\"value\": {v}}}");
        }
        out.push_str("\n  ],\n  \"gauges\": [");
        let mut first = true;
        for ((name, labels), v) in &self.gauges {
            json_series_open(&mut out, &mut first, name, labels);
            let _ = write!(out, "\"value\": {v}}}");
        }
        out.push_str("\n  ],\n  \"histograms\": [");
        let mut first = true;
        for ((name, labels), h) in &self.histograms {
            json_series_open(&mut out, &mut first, name, labels);
            out.push_str("\"buckets\": [");
            let cum = h.cumulative();
            for (i, c) in cum.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let le = LATENCY_BUCKETS_US
                    .get(i)
                    .map(|b| b.to_string())
                    .unwrap_or_else(|| "+Inf".to_string());
                let _ = write!(out, "{{\"le\": \"{le}\", \"count\": {c}}}");
            }
            let _ = write!(out, "], \"sum_us\": {}, \"count\": {}}}", h.sum_us, h.count);
        }
        out.push_str("\n  ],\n  \"spans\": {\n");
        let _ = writeln!(out, "    \"dropped\": {},", self.spans_dropped);
        out.push_str("    \"counts\": {");
        let mut first = true;
        for (kind, n) in &self.span_counts {
            if !first {
                out.push_str(", ");
            }
            first = false;
            let _ = write!(out, "\"{kind}\": {n}");
        }
        out.push_str("},\n    \"events\": [");
        let mut first = true;
        for ev in &self.spans {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n      ");
            let _ = write!(
                out,
                "{{\"at_us\": {}, \"kind\": \"{}\", \"duration_us\": {}, \"label\": \"{}\"}}",
                ev.at.as_micros(),
                ev.kind.as_str(),
                ev.duration.as_micros(),
                json_escape(&ev.label)
            );
        }
        out.push_str("\n    ]\n  }\n}\n");
        out
    }

    /// Export counters, gauges and histograms in the Prometheus text
    /// exposition format (spans are summarized as
    /// `aorta_span_events_total{kind=…}` counters; full events are only in
    /// the JSON export).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_name = "";
        for ((name, labels), v) in &self.counters {
            if name != last_name {
                let _ = writeln!(out, "# TYPE {name} counter");
                last_name = name;
            }
            let _ = writeln!(out, "{name}{} {v}", prom_labels(labels, None));
        }
        let mut last_name = "";
        for ((name, labels), v) in &self.gauges {
            if name != last_name {
                let _ = writeln!(out, "# TYPE {name} gauge");
                last_name = name;
            }
            let _ = writeln!(out, "{name}{} {v}", prom_labels(labels, None));
        }
        let mut last_name = "";
        for ((name, labels), h) in &self.histograms {
            if name != last_name {
                let _ = writeln!(out, "# TYPE {name} histogram");
                last_name = name;
            }
            let cum = h.cumulative();
            for (i, c) in cum.iter().enumerate() {
                let le = LATENCY_BUCKETS_US
                    .get(i)
                    .map(|b| b.to_string())
                    .unwrap_or_else(|| "+Inf".to_string());
                let _ = writeln!(out, "{name}_bucket{} {c}", prom_labels(labels, Some(&le)));
            }
            let _ = writeln!(out, "{name}_sum{} {}", prom_labels(labels, None), h.sum_us);
            let _ = writeln!(out, "{name}_count{} {}", prom_labels(labels, None), h.count);
        }
        if !self.span_counts.is_empty() {
            let _ = writeln!(out, "# TYPE aorta_span_events_total counter");
            for (kind, n) in &self.span_counts {
                let _ = writeln!(out, "aorta_span_events_total{{kind=\"{kind}\"}} {n}");
            }
        }
        if self.spans_dropped > 0 {
            let _ = writeln!(out, "# TYPE aorta_span_events_dropped_total counter");
            let _ = writeln!(
                out,
                "aorta_span_events_dropped_total {}",
                self.spans_dropped
            );
        }
        out
    }
}

fn json_series_open(out: &mut String, first: &mut bool, name: &str, labels: &[(String, String)]) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push_str("\n    ");
    let _ = write!(out, "{{\"name\": \"{}\", \"labels\": {{", json_escape(name));
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{}\": \"{}\"", json_escape(k), json_escape(v));
    }
    out.push_str("}, ");
}

fn prom_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", prom_escape(v));
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn prom_escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// A cheaply clonable, thread-safe handle to one shared [`MetricsRegistry`].
///
/// The engine layers (core, net, sched, cluster) each hold a clone; all
/// recording funnels into the same registry. Recording is lock-per-call;
/// because the simulation is single-threaded the mutex is uncontended and
/// exists only to keep the handle `Send + Sync` for test harnesses.
#[derive(Clone, Debug, Default)]
pub struct SharedMetrics(Arc<Mutex<MetricsRegistry>>);

impl SharedMetrics {
    /// Create a handle over a fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increment a counter series by `by`.
    pub fn incr(&self, name: &str, labels: &[(&str, &str)], by: u64) {
        self.0.lock().expect("metrics lock").incr(name, labels, by);
    }

    /// Overwrite a counter series with an externally maintained total.
    pub fn counter_set(&self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.0
            .lock()
            .expect("metrics lock")
            .counter_set(name, labels, value);
    }

    /// Set a gauge series.
    pub fn gauge_set(&self, name: &str, labels: &[(&str, &str)], value: i64) {
        self.0
            .lock()
            .expect("metrics lock")
            .gauge_set(name, labels, value);
    }

    /// Record one duration into a histogram series.
    pub fn observe(&self, name: &str, labels: &[(&str, &str)], d: SimDuration) {
        self.0
            .lock()
            .expect("metrics lock")
            .observe(name, labels, d);
    }

    /// Record a structured span event.
    pub fn span(&self, kind: SpanKind, at: SimTime, duration: SimDuration, label: &str) {
        self.0
            .lock()
            .expect("metrics lock")
            .span(kind, at, duration, label);
    }

    /// Run `f` with exclusive access to the underlying registry.
    pub fn with<R>(&self, f: impl FnOnce(&mut MetricsRegistry) -> R) -> R {
        f(&mut self.0.lock().expect("metrics lock"))
    }

    /// Clone the current registry contents out as an owned snapshot.
    pub fn snapshot(&self) -> MetricsRegistry {
        self.0.lock().expect("metrics lock").clone()
    }

    /// Clone the *registry*, not the handle: the result is an independent
    /// `SharedMetrics` whose future recordings do not affect this one.
    /// Used when forking an engine snapshot for crash recovery.
    pub fn deep_clone(&self) -> SharedMetrics {
        SharedMetrics(Arc::new(Mutex::new(self.snapshot())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> MetricsRegistry {
        let mut r = MetricsRegistry::new();
        r.incr("aorta_probe_attempts", &[("device", "camera-1")], 3);
        r.incr("aorta_probe_attempts", &[("device", "sensor-2")], 1);
        r.incr("aorta_probe_timeouts", &[], 1);
        r.gauge_set("aorta_admission_tokens_e6", &[], 1_500_000);
        r.observe(
            "aorta_action_latency",
            &[("action", "photo")],
            SimDuration::from_millis(42),
        );
        r.observe(
            "aorta_action_latency",
            &[("action", "photo")],
            SimDuration::from_secs(2),
        );
        r.span(
            SpanKind::Execute,
            SimTime::ZERO + SimDuration::from_secs(1),
            SimDuration::from_millis(42),
            "query=1 device=camera-1",
        );
        r
    }

    #[test]
    fn exports_are_deterministic() {
        let a = sample_registry();
        let b = sample_registry();
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.to_prometheus(), b.to_prometheus());
    }

    #[test]
    fn label_order_does_not_matter() {
        let mut a = MetricsRegistry::new();
        a.incr("x", &[("a", "1"), ("b", "2")], 1);
        let mut b = MetricsRegistry::new();
        b.incr("x", &[("b", "2"), ("a", "1")], 1);
        assert_eq!(a.to_prometheus(), b.to_prometheus());
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_bounded() {
        let mut h = Histogram::default();
        h.observe(SimDuration::from_micros(50)); // bucket le=100
        h.observe(SimDuration::from_micros(100)); // still le=100 (inclusive)
        h.observe(SimDuration::from_secs(60)); // +Inf only
        let cum = h.cumulative();
        assert_eq!(cum[0], 2);
        assert_eq!(*cum.last().unwrap(), 3);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum_us(), 50 + 100 + 60_000_000);
    }

    #[test]
    fn span_ring_stays_bounded() {
        let mut r = MetricsRegistry::new();
        for i in 0..(SPAN_RING_CAP + 7) {
            r.span(
                SpanKind::Probe,
                SimTime::ZERO + SimDuration::from_micros(i as u64),
                SimDuration::ZERO,
                "x",
            );
        }
        assert_eq!(r.span_len(), SPAN_RING_CAP);
        assert_eq!(r.spans_dropped(), 7);
        assert_eq!(
            r.spans().next().unwrap().at,
            SimTime::ZERO + SimDuration::from_micros(7)
        );
    }

    #[test]
    fn merge_labeled_adds_shard_label() {
        let shard = sample_registry();
        let mut total = MetricsRegistry::new();
        total.merge_labeled(&shard, "shard", "0");
        total.merge_labeled(&shard, "shard", "1");
        assert_eq!(
            total.counter(
                "aorta_probe_attempts",
                &[("device", "camera-1"), ("shard", "0")]
            ),
            3
        );
        assert_eq!(total.counter_total("aorta_probe_attempts"), 8);
        let prom = total.to_prometheus();
        assert!(prom.contains("shard=\"1\""));
        let json = total.to_json();
        assert!(json.contains("shard=0 query=1 device=camera-1"));
    }

    #[test]
    fn prometheus_format_shape() {
        let prom = sample_registry().to_prometheus();
        assert!(prom.contains("# TYPE aorta_probe_attempts counter"));
        assert!(prom.contains("aorta_probe_attempts{device=\"camera-1\"} 3"));
        assert!(prom.contains("aorta_probe_timeouts 1"));
        assert!(prom.contains("# TYPE aorta_action_latency histogram"));
        assert!(prom.contains("aorta_action_latency_bucket{action=\"photo\",le=\"+Inf\"} 2"));
        assert!(prom.contains("aorta_action_latency_count{action=\"photo\"} 2"));
        assert!(prom.contains("aorta_span_events_total{kind=\"execute\"} 1"));
    }

    #[test]
    fn json_escaping_handles_quotes() {
        let mut r = MetricsRegistry::new();
        r.span(
            SpanKind::Schedule,
            SimTime::ZERO,
            SimDuration::ZERO,
            "say \"hi\"",
        );
        assert!(r.to_json().contains("say \\\"hi\\\""));
    }

    #[test]
    fn shared_handle_clones_record_into_one_registry() {
        let m = SharedMetrics::new();
        let m2 = m.clone();
        m.incr("c", &[], 1);
        m2.incr("c", &[], 2);
        assert_eq!(m.snapshot().counter("c", &[]), 3);
    }
}
