//! Workload generators for the §6.3 experiments.
//!
//! * [`uniform_targets`] — Figure 4's uniform workload: *n* `photo()`
//!   requests with targets uniform over the lab floor, every camera a
//!   candidate for every request; by the PTZ kinematics each request's cost
//!   lands in the paper's `[0.36 s, 5.36 s]` interval.
//! * [`skewed_targets`] — Figure 6's skewed workload: "half of the 20
//!   requests each had 10 cameras as its candidate devices; for the other
//!   half, each could only be serviced on a subset … skewness = the size of
//!   the subset divided by the total number of cameras."
//! * [`uniform_table`] — a sequence-*independent* variant drawing request
//!   costs directly from `[0.36, 5.36]` s (for the ablation isolating the
//!   effect of sequence-dependence).

use aorta_device::PhotoSize;
use aorta_sim::{SimDuration, SimRng};

use crate::{CameraPhotoModel, Instance, TableModel};

/// Builds the ring of `m` reliable cameras used by the scheduling studies.
fn camera_ring(m: usize) -> Vec<aorta_device::Camera> {
    aorta_device::PervasiveLab::with_sizes(m, 0, 0)
        .with_reliable_cameras()
        .cameras
}

/// Figure 4's uniform workload: `n` requests over `m` cameras, all eligible.
pub fn uniform_targets(n: usize, m: usize, rng: &mut SimRng) -> (Instance, CameraPhotoModel) {
    let cameras = camera_ring(m);
    let lab = aorta_device::PervasiveLab::with_sizes(m, 0, 0);
    let targets = lab.random_floor_targets(n, rng);
    let model = CameraPhotoModel::new(cameras, &targets, PhotoSize::Medium);
    (Instance::fully_eligible(n, m), model)
}

/// Figure 6's skewed workload.
///
/// Half the requests are eligible on all `m` cameras; the other half only on
/// a random subset of `⌈skewness·m⌉` cameras.
///
/// # Panics
///
/// Panics if `skewness` is not in `(0, 1]`.
pub fn skewed_targets(
    n: usize,
    m: usize,
    skewness: f64,
    rng: &mut SimRng,
) -> (Instance, CameraPhotoModel) {
    assert!(
        skewness > 0.0 && skewness <= 1.0,
        "skewness must be in (0,1], got {skewness}"
    );
    let cameras = camera_ring(m);
    let lab = aorta_device::PervasiveLab::with_sizes(m, 0, 0);
    let targets = lab.random_floor_targets(n, rng);
    let subset_size = ((skewness * m as f64).round() as usize).clamp(1, m);
    let eligible = (0..n)
        .map(|r| {
            if r < n / 2 {
                (0..m).collect()
            } else {
                let mut devices: Vec<usize> = (0..m).collect();
                rng.shuffle(&mut devices);
                devices.truncate(subset_size);
                devices.sort_unstable();
                devices
            }
        })
        .collect();
    let model = CameraPhotoModel::new(cameras, &targets, PhotoSize::Medium);
    (Instance::new(m, eligible), model)
}

/// A sequence-independent workload: request costs drawn uniformly from the
/// paper's `[0.36 s, 5.36 s]` interval, identical on every device.
pub fn uniform_table(n: usize, m: usize, rng: &mut SimRng) -> (Instance, TableModel) {
    let costs: Vec<SimDuration> = (0..n)
        .map(|_| SimDuration::from_secs_f64(0.36 + rng.unit() * 5.0))
        .collect();
    let model = TableModel::identical_machines(costs, m);
    (model.instance(), model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CostModel;

    #[test]
    fn uniform_workload_all_eligible_and_in_range() {
        let mut rng = SimRng::seed(51);
        let (inst, model) = uniform_targets(20, 10, &mut rng);
        assert_eq!(inst.n_requests(), 20);
        assert_eq!(inst.n_devices(), 10);
        for r in 0..20 {
            assert_eq!(inst.eligible(r).len(), 10);
            for d in 0..10 {
                let c = model.cost(r, d, &model.initial_status(d));
                assert!(c >= SimDuration::from_millis(360), "{c}");
                assert!(c <= SimDuration::from_millis(5360), "{c}");
            }
        }
    }

    #[test]
    fn skewed_workload_halves() {
        let mut rng = SimRng::seed(52);
        let (inst, _) = skewed_targets(20, 10, 0.3, &mut rng);
        for r in 0..10 {
            assert_eq!(inst.eligible(r).len(), 10, "first half fully eligible");
        }
        for r in 10..20 {
            assert_eq!(inst.eligible(r).len(), 3, "skewness 0.3 of 10 cameras");
        }
    }

    #[test]
    fn skew_one_is_fully_eligible() {
        let mut rng = SimRng::seed(53);
        let (inst, _) = skewed_targets(8, 5, 1.0, &mut rng);
        for r in 0..8 {
            assert_eq!(inst.eligible(r).len(), 5);
        }
    }

    #[test]
    #[should_panic(expected = "skewness")]
    fn zero_skew_rejected() {
        let mut rng = SimRng::seed(54);
        let _ = skewed_targets(4, 4, 0.0, &mut rng);
    }

    #[test]
    fn table_costs_in_paper_interval() {
        let mut rng = SimRng::seed(55);
        let (inst, model) = uniform_table(50, 10, &mut rng);
        for r in 0..50 {
            let c = model.cost(r, 0, &());
            assert!(c.as_secs_f64() >= 0.36 && c.as_secs_f64() <= 5.36, "{c}");
            // Identical machines: same cost everywhere.
            assert_eq!(c, model.cost(r, 9, &()));
        }
        assert_eq!(inst.n_devices(), 10);
    }

    #[test]
    fn workloads_are_seed_deterministic() {
        let gen = |seed| {
            let mut rng = SimRng::seed(seed);
            let (_, model) = uniform_targets(5, 3, &mut rng);
            (0..5)
                .map(|r| model.cost(r, 0, &model.initial_status(0)))
                .collect::<Vec<_>>()
        };
        assert_eq!(gen(7), gen(7));
        assert_ne!(gen(7), gen(8));
    }
}
