//! Problem instances and cost models.

use aorta_data::Location;
use aorta_device::{Camera, PhotoSize, PtzPosition};
use aorta_sim::SimDuration;

/// Elementary-operation weight of one cost estimate (movement computation
/// plus comparison) in the op-counting CPU model. All algorithms count cost
/// estimates with this same weight, so relative scheduling times are fair.
pub const COST_ESTIMATE_OPS: u64 = 5;

/// A scheduling-problem instance: *n* requests, *m* devices, and the
/// eligibility restriction `D_i ⊆ D` for each request (Figure 2 of the
/// paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instance {
    n_requests: usize,
    n_devices: usize,
    eligible: Vec<Vec<usize>>,
}

impl Instance {
    /// Creates an instance from per-request eligibility lists.
    ///
    /// # Panics
    ///
    /// Panics if any request has an empty eligibility set or references a
    /// device index out of range — such an instance has no feasible
    /// schedule, which is a caller bug, not a runtime condition.
    pub fn new(n_devices: usize, eligible: Vec<Vec<usize>>) -> Self {
        for (r, devs) in eligible.iter().enumerate() {
            assert!(!devs.is_empty(), "request {r} has no candidate devices");
            for &d in devs {
                assert!(d < n_devices, "request {r} names device {d} >= {n_devices}");
            }
        }
        Instance {
            n_requests: eligible.len(),
            n_devices,
            eligible,
        }
    }

    /// An instance where every request may run on every device.
    pub fn fully_eligible(n_requests: usize, n_devices: usize) -> Self {
        Instance::new(
            n_devices,
            (0..n_requests).map(|_| (0..n_devices).collect()).collect(),
        )
    }

    /// Number of requests *n*.
    pub fn n_requests(&self) -> usize {
        self.n_requests
    }

    /// Number of devices *m*.
    pub fn n_devices(&self) -> usize {
        self.n_devices
    }

    /// The candidate device set `D_i` of request `r`.
    pub fn eligible(&self, r: usize) -> &[usize] {
        &self.eligible[r]
    }

    /// True when request `r` may be serviced on device `d`.
    pub fn is_eligible(&self, r: usize, d: usize) -> bool {
        self.eligible[r].contains(&d)
    }
}

/// The cost oracle scheduling algorithms consult.
///
/// `Status` captures the device's *physical status* — the source of
/// sequence-dependence: "after executing an action, the current physical
/// status of a device may change, which will in turn change the cost of the
/// subsequent action executed on the device" (§5.1).
pub trait CostModel {
    /// Per-device physical status (e.g. a camera head position).
    type Status: Clone;

    /// The device's status before servicing anything.
    fn initial_status(&self, device: usize) -> Self::Status;

    /// Estimated cost of servicing `request` on `device` given its current
    /// status.
    fn cost(&self, request: usize, device: usize, status: &Self::Status) -> SimDuration;

    /// The device's status after servicing `request`.
    fn next_status(&self, request: usize, device: usize, status: &Self::Status) -> Self::Status;

    /// Total cost of servicing `sequence` in order from the initial status.
    fn sequence_cost(&self, device: usize, sequence: &[usize]) -> SimDuration {
        let mut status = self.initial_status(device);
        let mut total = SimDuration::ZERO;
        for &r in sequence {
            total += self.cost(r, device, &status);
            status = self.next_status(r, device, &status);
        }
        total
    }
}

/// The kinematic cost model of the paper's experiments: every request is a
/// `photo()` of a target location, every device an AXIS-class PTZ camera,
/// and the cost is head travel plus capture time — hence in the paper's
/// `[0.36 s, 5.36 s]` range, and sequence-dependent through the head
/// position.
#[derive(Debug, Clone)]
pub struct CameraPhotoModel {
    cameras: Vec<Camera>,
    /// Per-camera, per-request target head position (aim clamped into the
    /// camera's travel range).
    aims: Vec<Vec<PtzPosition>>,
    size: PhotoSize,
}

impl CameraPhotoModel {
    /// Builds the model from cameras and photo target locations.
    pub fn new(cameras: Vec<Camera>, targets: &[Location], size: PhotoSize) -> Self {
        let aims = cameras
            .iter()
            .map(|cam| {
                targets
                    .iter()
                    .map(|t| cam.spec().clamp(cam.aim_at(t)))
                    .collect()
            })
            .collect();
        CameraPhotoModel {
            cameras,
            aims,
            size,
        }
    }

    /// The cameras backing the model.
    pub fn cameras(&self) -> &[Camera] {
        &self.cameras
    }

    /// The head position request `r` aims camera `d` at.
    pub fn aim(&self, device: usize, request: usize) -> PtzPosition {
        self.aims[device][request]
    }

    /// The photo size all requests use.
    pub fn size(&self) -> PhotoSize {
        self.size
    }
}

impl CostModel for CameraPhotoModel {
    type Status = PtzPosition;

    fn initial_status(&self, device: usize) -> PtzPosition {
        self.cameras[device].rest_position()
    }

    fn cost(&self, request: usize, device: usize, status: &PtzPosition) -> SimDuration {
        self.cameras[device].estimate_photo_cost(*status, self.aims[device][request], self.size)
    }

    fn next_status(&self, request: usize, device: usize, _status: &PtzPosition) -> PtzPosition {
        self.aims[device][request]
    }
}

/// A sequence-*independent* cost model given by an explicit cost matrix —
/// the classic unrelated-machines setting, used for unit tests, the exact
/// solver, and the ablation that isolates the effect of sequence-dependence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableModel {
    /// `costs[d][r]`; `None` renders the pair ineligible (callers should
    /// keep the [`Instance`] consistent).
    costs: Vec<Vec<Option<SimDuration>>>,
}

impl TableModel {
    /// Builds a table model from `costs[device][request]`.
    ///
    /// # Panics
    ///
    /// Panics if the rows are not all the same length.
    pub fn new(costs: Vec<Vec<Option<SimDuration>>>) -> Self {
        if let Some(first) = costs.first() {
            assert!(
                costs.iter().all(|row| row.len() == first.len()),
                "cost matrix rows have differing lengths"
            );
        }
        TableModel { costs }
    }

    /// A table where the cost of request `r` is the same on every device.
    pub fn identical_machines(per_request: Vec<SimDuration>, n_devices: usize) -> Self {
        let row: Vec<Option<SimDuration>> = per_request.into_iter().map(Some).collect();
        TableModel {
            costs: vec![row; n_devices],
        }
    }

    /// An [`Instance`] whose eligibility matches the table's `Some` entries.
    ///
    /// # Panics
    ///
    /// Panics (via [`Instance::new`]) when some request has no eligible
    /// device.
    pub fn instance(&self) -> Instance {
        let n = self.costs.first().map_or(0, Vec::len);
        let eligible = (0..n)
            .map(|r| {
                (0..self.costs.len())
                    .filter(|&d| self.costs[d][r].is_some())
                    .collect()
            })
            .collect();
        Instance::new(self.costs.len(), eligible)
    }
}

impl CostModel for TableModel {
    type Status = ();

    fn initial_status(&self, _device: usize) {}

    fn cost(&self, request: usize, device: usize, _status: &()) -> SimDuration {
        self.costs[device][request].expect("scheduled an ineligible (request, device) pair")
    }

    fn next_status(&self, _request: usize, _device: usize, _status: &()) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use aorta_data::Location;
    use aorta_device::CameraFailureModel;

    fn two_cameras() -> Vec<Camera> {
        vec![
            Camera::ceiling_mounted(0, Location::new(2.0, 3.0, 3.0))
                .with_failure(CameraFailureModel::reliable()),
            Camera::ceiling_mounted(1, Location::new(6.0, 3.0, 3.0))
                .with_failure(CameraFailureModel::reliable()),
        ]
    }

    #[test]
    fn instance_accessors() {
        let inst = Instance::new(3, vec![vec![0, 1], vec![2]]);
        assert_eq!(inst.n_requests(), 2);
        assert_eq!(inst.n_devices(), 3);
        assert_eq!(inst.eligible(0), &[0, 1]);
        assert!(inst.is_eligible(1, 2));
        assert!(!inst.is_eligible(1, 0));
    }

    #[test]
    fn fully_eligible_instance() {
        let inst = Instance::fully_eligible(4, 2);
        for r in 0..4 {
            assert_eq!(inst.eligible(r), &[0, 1]);
        }
    }

    #[test]
    #[should_panic(expected = "no candidate devices")]
    fn empty_eligibility_panics() {
        let _ = Instance::new(2, vec![vec![]]);
    }

    #[test]
    #[should_panic(expected = ">=")]
    fn out_of_range_device_panics() {
        let _ = Instance::new(2, vec![vec![5]]);
    }

    #[test]
    fn camera_model_costs_in_paper_range() {
        let cams = two_cameras();
        let targets = vec![Location::new(1.0, 1.0, 1.0), Location::new(7.0, 5.0, 1.0)];
        let model = CameraPhotoModel::new(cams, &targets, PhotoSize::Medium);
        for d in 0..2 {
            let mut status = model.initial_status(d);
            for r in 0..2 {
                let c = model.cost(r, d, &status);
                assert!(c >= SimDuration::from_millis(360), "{c}");
                assert!(c <= SimDuration::from_millis(5360), "{c}");
                status = model.next_status(r, d, &status);
            }
        }
    }

    #[test]
    fn camera_model_is_sequence_dependent() {
        let cams = two_cameras();
        let targets = vec![
            Location::new(1.0, 1.0, 1.0),
            Location::new(1.2, 1.0, 1.0), // near target 0
            Location::new(7.0, 5.0, 1.0), // far away
        ];
        let model = CameraPhotoModel::new(cams, &targets, PhotoSize::Medium);
        // Servicing 0 then 1 (near each other) beats 0 then 2 then 1.
        let near_order = model.sequence_cost(0, &[0, 1]);
        let far_detour = model.sequence_cost(0, &[0, 2, 1]) - model.sequence_cost(0, &[2]);
        assert!(near_order < model.sequence_cost(0, &[0, 2]) + SimDuration::from_secs(10));
        assert!(near_order < far_detour + model.sequence_cost(0, &[2]));
        // Direct check: cost of request 1 after request 0 < after request 2.
        let after0 = model.next_status(0, 0, &model.initial_status(0));
        let after2 = model.next_status(2, 0, &model.initial_status(0));
        assert!(model.cost(1, 0, &after0) < model.cost(1, 0, &after2));
    }

    #[test]
    fn table_model_sequence_cost_is_sum() {
        let t = TableModel::new(vec![vec![
            Some(SimDuration::from_secs(1)),
            Some(SimDuration::from_secs(2)),
            None,
        ]]);
        assert_eq!(t.sequence_cost(0, &[0, 1]), SimDuration::from_secs(3));
        assert_eq!(t.sequence_cost(0, &[1, 0]), SimDuration::from_secs(3));
    }

    #[test]
    fn table_model_instance_follows_some_entries() {
        let t = TableModel::new(vec![
            vec![Some(SimDuration::from_secs(1)), None],
            vec![
                Some(SimDuration::from_secs(2)),
                Some(SimDuration::from_secs(3)),
            ],
        ]);
        let inst = t.instance();
        assert_eq!(inst.eligible(0), &[0, 1]);
        assert_eq!(inst.eligible(1), &[1]);
    }

    #[test]
    fn identical_machines_builder() {
        let t = TableModel::identical_machines(vec![SimDuration::from_secs(4)], 3);
        let inst = t.instance();
        assert_eq!(inst.n_devices(), 3);
        assert_eq!(t.cost(0, 2, &()), SimDuration::from_secs(4));
    }

    #[test]
    #[should_panic(expected = "differing lengths")]
    fn ragged_table_panics() {
        let _ = TableModel::new(vec![vec![None], vec![]]);
    }
}
