//! Execution plans produced by scheduling algorithms.

use crate::Instance;

/// What a scheduling algorithm hands to the executor.
///
/// The SAP/CAP distinction of §5.2 shows up here: SAP algorithms finish the
/// whole assignment before execution starts (static plans), while the
/// fully-dynamic CAP algorithm LS makes assignment decisions as devices
/// become idle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Plan {
    /// Per-device request sequences, serviced in the given order
    /// (SA, SRFAE, RANDOM).
    Sequences(Vec<Vec<usize>>),
    /// Per-device request *sets*; each device dynamically services its
    /// cheapest remaining request first, re-estimating after every status
    /// change — the paper's SRFE (Algorithm 1.2).
    ShortestFirstPerDevice(Vec<Vec<usize>>),
    /// Fully dynamic list scheduling: whenever a device becomes idle, it
    /// takes the first (in request order) eligible unscheduled request.
    ListDynamic,
}

impl Plan {
    /// The per-device request lists, if the plan is static.
    pub fn per_device(&self) -> Option<&[Vec<usize>]> {
        match self {
            Plan::Sequences(v) | Plan::ShortestFirstPerDevice(v) => Some(v),
            Plan::ListDynamic => None,
        }
    }

    /// Checks a static plan against an instance: every request scheduled
    /// exactly once, on an eligible device.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation. `ListDynamic` always
    /// validates (the executor enforces eligibility as it assigns).
    pub fn validate(&self, inst: &Instance) -> Result<(), String> {
        let per_device = match self.per_device() {
            Some(p) => p,
            None => return Ok(()),
        };
        if per_device.len() != inst.n_devices() {
            return Err(format!(
                "plan has {} device lanes, instance has {}",
                per_device.len(),
                inst.n_devices()
            ));
        }
        let mut seen = vec![false; inst.n_requests()];
        for (d, seq) in per_device.iter().enumerate() {
            for &r in seq {
                if r >= inst.n_requests() {
                    return Err(format!("plan schedules unknown request {r}"));
                }
                if seen[r] {
                    return Err(format!("request {r} is scheduled more than once"));
                }
                seen[r] = true;
                if !inst.is_eligible(r, d) {
                    return Err(format!("request {r} is not eligible on device {d}"));
                }
            }
        }
        if let Some(missing) = seen.iter().position(|&s| !s) {
            return Err(format!("request {missing} is never scheduled"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst() -> Instance {
        Instance::new(2, vec![vec![0, 1], vec![1], vec![0]])
    }

    #[test]
    fn valid_plan_passes() {
        let plan = Plan::Sequences(vec![vec![2, 0], vec![1]]);
        assert_eq!(plan.validate(&inst()), Ok(()));
        let dynamic = Plan::ShortestFirstPerDevice(vec![vec![0, 2], vec![1]]);
        assert_eq!(dynamic.validate(&inst()), Ok(()));
    }

    #[test]
    fn list_dynamic_always_validates() {
        assert_eq!(Plan::ListDynamic.validate(&inst()), Ok(()));
        assert!(Plan::ListDynamic.per_device().is_none());
    }

    #[test]
    fn missing_request_detected() {
        let plan = Plan::Sequences(vec![vec![0], vec![1]]);
        assert!(plan
            .validate(&inst())
            .unwrap_err()
            .contains("never scheduled"));
    }

    #[test]
    fn duplicate_request_detected() {
        let plan = Plan::Sequences(vec![vec![0, 2], vec![1, 0]]);
        assert!(plan
            .validate(&inst())
            .unwrap_err()
            .contains("more than once"));
    }

    #[test]
    fn ineligible_assignment_detected() {
        let plan = Plan::Sequences(vec![vec![0, 1], vec![2]]);
        let err = plan.validate(&inst()).unwrap_err();
        assert!(err.contains("not eligible"), "{err}");
    }

    #[test]
    fn wrong_lane_count_detected() {
        let plan = Plan::Sequences(vec![vec![0, 1, 2]]);
        assert!(plan.validate(&inst()).unwrap_err().contains("lanes"));
    }

    #[test]
    fn unknown_request_detected() {
        let plan = Plan::Sequences(vec![vec![0, 7], vec![1, 2]]);
        assert!(plan.validate(&inst()).unwrap_err().contains("unknown"));
    }
}
