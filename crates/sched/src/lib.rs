//! # aorta-sched — action workload scheduling
//!
//! §5 of the paper: given *n* action requests and *m* devices, each request
//! eligible on a subset of devices and each (request, device) pair weighted
//! by the *sequence-dependent* cost of executing the action there, find a
//! schedule minimizing the **makespan**. The problem reduces to makespan
//! minimization on unrelated parallel machines with sequence-dependent setup
//! times and machine-eligibility restrictions — NP-hard — so the paper
//! proposes two fast heuristics and compares them against three references:
//!
//! * [`Algorithm::LerfaSrfe`] — the paper's Algorithm 1 (SAP): *Least
//!   Eligible Request First Assignment* + *Shortest Request First Execution*,
//! * [`Algorithm::Srfae`] — the paper's Algorithm 2 (CAP): *Shortest Request
//!   First Assignment and Execution* over a balanced BST of request–device
//!   pairs,
//! * [`Algorithm::Ls`] — classic greedy List Scheduling,
//! * [`Algorithm::Sa`] — the Simulated Annealing of Anagnostopoulos &
//!   Rabadi,
//! * [`Algorithm::Random`] — the random-assignment baseline.
//!
//! [`run_algorithm`] executes any of them against a [`CostModel`] in virtual
//! time and reports the scheduling-time / service-time breakdown of
//! Figure 5. [`workload`] generates the uniform and skewed workloads of
//! Figures 4 and 6.
//!
//! # Example
//!
//! ```
//! use aorta_sched::{run_algorithm, workload, Algorithm};
//! use aorta_sim::{CpuModel, SimRng};
//!
//! let (inst, model) = workload::uniform_targets(20, 10, &mut SimRng::seed(1));
//! let mut rng = SimRng::seed(2);
//! let result = run_algorithm(
//!     &Algorithm::LerfaSrfe,
//!     &inst,
//!     &model,
//!     &CpuModel::paper_notebook(),
//!     &mut rng,
//! );
//! assert!(result.total() > aorta_sim::SimDuration::ZERO);
//! assert_eq!(result.completed, 20);
//! ```

#![warn(missing_docs)]

pub mod algorithms;
mod executor;
mod plan;
mod problem;
pub mod workload;

pub use algorithms::{Algorithm, SaConfig};
pub use executor::{
    execute_plan, requeue_orphans, requeue_orphans_with_deadlines, run_algorithm, OrphanOutcome,
    RunResult,
};
pub use plan::Plan;
pub use problem::{CameraPhotoModel, CostModel, Instance, TableModel, COST_ESTIMATE_OPS};
