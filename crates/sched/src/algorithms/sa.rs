//! SA — Simulated Annealing for unrelated parallel machines.
//!
//! Reimplementation of the algorithm of Anagnostopoulos & Rabadi (2002),
//! which the paper cites as "the only one we know in the literature that has
//! considered all restrictions" (unrelated machines, sequence-dependent
//! setup, eligibility). A solution is a full assignment *and* per-machine
//! sequence; neighbourhood moves relocate one request or swap two; cooling
//! is geometric. SA is an SAP algorithm: the (large) search cost is all
//! scheduling time, which is why Figure 5 shows it dominated by scheduling
//! and Figure 6 shows it worst overall.

use aorta_sim::{OpCounter, SimDuration, SimRng};

use crate::{CostModel, Instance, COST_ESTIMATE_OPS};

/// Simulated-annealing parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SaConfig {
    /// Number of annealing iterations (each evaluates one neighbour).
    pub iterations: u32,
    /// Initial temperature as a fraction of the initial makespan.
    pub initial_temp_frac: f64,
    /// Final temperature as a fraction of the initial temperature.
    pub final_temp_frac: f64,
}

impl Default for SaConfig {
    /// The default budget is calibrated so that at the paper's n=20, m=10
    /// operating point SA's counted operations convert to ≈2.5 s of
    /// scheduling time on the [`aorta_sim::CpuModel::paper_notebook`] —
    /// Figure 5 reports 2.49 s.
    fn default() -> Self {
        SaConfig {
            iterations: 80_000,
            initial_temp_frac: 0.3,
            final_temp_frac: 1e-3,
        }
    }
}

impl SaConfig {
    /// A tiny budget for fast unit tests.
    pub fn quick() -> Self {
        SaConfig {
            iterations: 2_000,
            ..SaConfig::default()
        }
    }
}

/// Runs the annealing, returning per-device sequences.
pub(crate) fn assign<M: CostModel>(
    inst: &Instance,
    model: &M,
    cfg: &SaConfig,
    ops: &mut OpCounter,
    rng: &mut SimRng,
) -> Vec<Vec<usize>> {
    let m = inst.n_devices();

    // Initial solution: random eligible assignment.
    let mut current: Vec<Vec<usize>> = vec![Vec::new(); m];
    for r in 0..inst.n_requests() {
        ops.tick();
        let d = *rng.pick(inst.eligible(r)).expect("non-empty candidates");
        current[d].push(r);
    }
    let mut lane_cost: Vec<SimDuration> = (0..m)
        .map(|d| {
            ops.add(current[d].len() as u64 * COST_ESTIMATE_OPS);
            model.sequence_cost(d, &current[d])
        })
        .collect();
    let mut current_makespan = lane_cost.iter().copied().max().unwrap_or(SimDuration::ZERO);

    let mut best = current.clone();
    let mut best_makespan = current_makespan;

    let t0 = current_makespan.as_secs_f64().max(1e-6) * cfg.initial_temp_frac;
    let t_end = t0 * cfg.final_temp_frac;
    let alpha = if cfg.iterations > 1 {
        (t_end / t0).powf(1.0 / (cfg.iterations - 1) as f64)
    } else {
        1.0
    };
    let mut temp = t0;

    // The annealing budget counts *feasible* neighbour evaluations, as in
    // the cited implementation: proposals draw the destination machine
    // uniformly from all machines, a full candidate solution is generated
    // and evaluated, and infeasible ones (eligibility violations) are then
    // discarded without counting toward the budget. On skewed workloads
    // most proposals are wasted this way — the mechanism behind Figure 6's
    // blow-up of SA's scheduling time as skewness tightens.
    let mut feasible_done: u32 = 0;
    let mut proposals: u64 = 0;
    let proposal_cap = u64::from(cfg.iterations).saturating_mul(20).max(20);
    while feasible_done < cfg.iterations && proposals < proposal_cap {
        proposals += 1;
        let r = rng.range(0..inst.n_requests());
        let from = current
            .iter()
            .position(|lane| lane.contains(&r))
            .expect("every request is assigned");
        let to = rng.range(0..m);
        ops.tick();
        if !inst.is_eligible(r, to) {
            // A wasted full-solution evaluation.
            ops.add(inst.n_requests() as u64 * COST_ESTIMATE_OPS);
            continue;
        }
        feasible_done += 1;

        let (new_from, new_to) = if from == to {
            // Intra-lane reorder: move r to a random position.
            let mut lane = current[from].clone();
            let idx = lane.iter().position(|&x| x == r).expect("r is in its lane");
            lane.remove(idx);
            let pos = if lane.is_empty() {
                0
            } else {
                rng.range(0..=lane.len())
            };
            lane.insert(pos, r);
            (lane, None)
        } else {
            let mut lane_from = current[from].clone();
            let idx = lane_from
                .iter()
                .position(|&x| x == r)
                .expect("r is in its lane");
            lane_from.remove(idx);
            let mut lane_to = current[to].clone();
            let pos = if lane_to.is_empty() {
                0
            } else {
                rng.range(0..=lane_to.len())
            };
            lane_to.insert(pos, r);
            (lane_from, Some(lane_to))
        };

        // Incremental evaluation: only the touched lanes change cost.
        ops.add((new_from.len() + new_to.as_ref().map_or(0, Vec::len)) as u64 * COST_ESTIMATE_OPS);
        let cost_from = model.sequence_cost(from, &new_from);
        let cost_to = new_to.as_ref().map(|lane| model.sequence_cost(to, lane));

        let mut new_lane_cost = lane_cost.clone();
        new_lane_cost[from] = cost_from;
        if let Some(c) = cost_to {
            new_lane_cost[to] = c;
        }
        let new_makespan = new_lane_cost
            .iter()
            .copied()
            .max()
            .unwrap_or(SimDuration::ZERO);
        ops.add(m as u64);

        let delta = new_makespan.as_secs_f64() - current_makespan.as_secs_f64();
        let accept = delta <= 0.0 || rng.unit() < (-delta / temp.max(1e-12)).exp();
        if accept {
            current[from] = new_from;
            if let Some(lane) = new_to {
                current[to] = lane;
            }
            lane_cost = new_lane_cost;
            current_makespan = new_makespan;
            if current_makespan < best_makespan {
                best_makespan = current_makespan;
                best = current.clone();
            }
        }
        temp *= alpha;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::testutil::{camera_instance, small_table};
    use crate::Plan;

    fn makespan<M: CostModel>(model: &M, plan: &[Vec<usize>]) -> SimDuration {
        plan.iter()
            .enumerate()
            .map(|(d, lane)| model.sequence_cost(d, lane))
            .max()
            .unwrap()
    }

    #[test]
    fn finds_the_optimum_of_the_small_table() {
        let (inst, model) = small_table();
        let mut ops = OpCounter::new();
        let mut rng = SimRng::seed(11);
        let plan = assign(&inst, &model, &SaConfig::quick(), &mut ops, &mut rng);
        assert_eq!(makespan(&model, &plan), SimDuration::from_secs(7));
    }

    #[test]
    fn produces_valid_plans() {
        let (inst, model) = camera_instance(15, 5, 21);
        let mut ops = OpCounter::new();
        let mut rng = SimRng::seed(12);
        let plan = Plan::Sequences(assign(
            &inst,
            &model,
            &SaConfig::quick(),
            &mut ops,
            &mut rng,
        ));
        assert_eq!(plan.validate(&inst), Ok(()));
    }

    #[test]
    fn improves_over_its_own_initial_random_solution() {
        let (inst, model) = camera_instance(20, 5, 22);
        // Zero iterations = the random initial solution.
        let zero_cfg = SaConfig {
            iterations: 0,
            ..SaConfig::default()
        };
        let mut rng1 = SimRng::seed(13);
        let mut ops = OpCounter::new();
        let initial = assign(&inst, &model, &zero_cfg, &mut ops, &mut rng1);
        let mut rng2 = SimRng::seed(13);
        let annealed = assign(&inst, &model, &SaConfig::quick(), &mut ops, &mut rng2);
        assert!(
            makespan(&model, &annealed) <= makespan(&model, &initial),
            "annealing must not end worse than its start (best-so-far is kept)"
        );
    }

    #[test]
    fn respects_eligibility() {
        let s = SimDuration::from_secs;
        let model = crate::TableModel::new(vec![
            vec![Some(s(1)), None, Some(s(2))],
            vec![None, Some(s(1)), Some(s(2))],
        ]);
        let inst = model.instance();
        let mut ops = OpCounter::new();
        let mut rng = SimRng::seed(14);
        let plan = Plan::Sequences(assign(
            &inst,
            &model,
            &SaConfig::quick(),
            &mut ops,
            &mut rng,
        ));
        assert_eq!(plan.validate(&inst), Ok(()));
    }

    #[test]
    fn scheduling_ops_dwarf_greedy_algorithms() {
        let (inst, model) = camera_instance(20, 10, 23);
        let mut sa_ops = OpCounter::new();
        let mut rng = SimRng::seed(15);
        let _ = assign(&inst, &model, &SaConfig::default(), &mut sa_ops, &mut rng);
        // Figure 5's point: SA's scheduling cost is orders of magnitude
        // above the greedy algorithms (which use ~n·m estimates ≈ 1k ops).
        assert!(
            sa_ops.total() > 1_000_000,
            "got {} ops, expected ≈ 2.5M to match the 2.49 s of Figure 5",
            sa_ops.total()
        );
    }

    #[test]
    fn default_budget_lands_near_figure5_time() {
        let (inst, model) = camera_instance(20, 10, 24);
        let mut ops = OpCounter::new();
        let mut rng = SimRng::seed(16);
        let _ = assign(&inst, &model, &SaConfig::default(), &mut ops, &mut rng);
        let t = aorta_sim::CpuModel::paper_notebook().time_for(&ops);
        let secs = t.as_secs_f64();
        assert!(
            (1.5..=4.0).contains(&secs),
            "SA scheduling time {secs:.2}s should be in the ~2.5s band"
        );
    }
}
