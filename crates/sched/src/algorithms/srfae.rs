//! SRFAE — Shortest Request First Assignment and Execution (Algorithm 2).
//!
//! ```text
//! 1.  for each request ri, each device dj in Di:
//! 2.    insert (ri, dj) into a balanced BST T keyed by the pair's weight
//! 3.  for each device: Wj = 0; lock dj
//! 4.  while T not empty:
//! 5.    extract the node a with the least key; it names (ri, dj)
//! 6.    assign ri to dj (service immediately if free, else FIFO-queue)
//! 7.    w = key(a); delete a; mark ri serviced
//! 8.    for each unserviced rl with dj ∈ Dl:
//! 9.      Clj = cost of servicing rl on dj after ri
//! 10.     update key of (rl, dj) to Clj + w
//! 11. unlock all devices
//! ```
//!
//! The balanced BST is a `BTreeMap` keyed by `(weight, request, device)`
//! (the id components make keys unique). After each extraction, the keys of
//! the extracted device's remaining pairs become *cumulative completion
//! times* (`Clj + w`), and `Clj` is re-estimated from the device's new
//! physical status — the "cost recalculation … based on the new physical
//! status" step.

use std::collections::BTreeMap;

use aorta_sim::{OpCounter, SimDuration};

use crate::{CostModel, Instance, COST_ESTIMATE_OPS};

/// Weight per BST insert/delete/update, on top of the cost estimate itself.
const TREE_OP: u64 = 1;

/// Runs the assignment, returning per-device FIFO sequences.
pub(crate) fn assign<M: CostModel>(
    inst: &Instance,
    model: &M,
    ops: &mut OpCounter,
) -> Vec<Vec<usize>> {
    let n = inst.n_requests();
    let m = inst.n_devices();
    let mut per_device: Vec<Vec<usize>> = vec![Vec::new(); m];
    let mut status: Vec<M::Status> = (0..m).map(|d| model.initial_status(d)).collect();
    let mut cum_workload = vec![SimDuration::ZERO; m];
    let mut serviced = vec![false; n];

    // The balanced binary search tree T of (weight, request, device).
    let mut tree: BTreeMap<(SimDuration, usize, usize), ()> = BTreeMap::new();
    // Current key of each live (request, device) pair, for key updates.
    let mut key_of: Vec<Vec<Option<SimDuration>>> = vec![vec![None; m]; n];

    for (r, keys) in key_of.iter_mut().enumerate() {
        for &d in inst.eligible(r) {
            ops.add(COST_ESTIMATE_OPS + TREE_OP);
            let w = model.cost(r, d, &status[d]);
            tree.insert((w, r, d), ());
            keys[d] = Some(w);
        }
    }

    while let Some((&(w, r, d), ())) = tree.iter().next() {
        ops.add(TREE_OP);
        tree.remove(&(w, r, d));
        debug_assert!(!serviced[r], "serviced requests are purged from T");

        // Assign ri to dj; queued FIFO (the executor services in order).
        per_device[d].push(r);
        serviced[r] = true;
        cum_workload[d] = w;
        status[d] = model.next_status(r, d, &status[d]);

        // Purge the other nodes of ri.
        for &d2 in inst.eligible(r) {
            if d2 != d {
                if let Some(k) = key_of[r][d2].take() {
                    ops.add(TREE_OP);
                    tree.remove(&(k, r, d2));
                }
            } else {
                key_of[r][d2] = None;
            }
        }

        // Recalculate keys of unserviced requests on dj from its new status.
        for rl in 0..n {
            if serviced[rl] {
                continue;
            }
            if let Some(old) = key_of[rl][d] {
                ops.add(COST_ESTIMATE_OPS + 2 * TREE_OP);
                tree.remove(&(old, rl, d));
                let c = model.cost(rl, d, &status[d]);
                let new_key = c + cum_workload[d];
                tree.insert((new_key, rl, d), ());
                key_of[rl][d] = Some(new_key);
            }
        }
    }
    per_device
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::testutil::{camera_instance, small_table};
    use crate::Plan;

    #[test]
    fn services_globally_shortest_request_first() {
        let (inst, model) = small_table();
        let mut ops = OpCounter::new();
        let plan = assign(&inst, &model, &mut ops);
        // Smallest weight overall is (r0, d0) = 2s, so r0 heads d0's queue.
        assert_eq!(plan[0].first(), Some(&0));
    }

    #[test]
    fn solves_small_table_near_optimally() {
        let (inst, model) = small_table();
        let mut ops = OpCounter::new();
        let plan = assign(&inst, &model, &mut ops);
        let makespan = (0..2)
            .map(|d| model.sequence_cost(d, &plan[d]))
            .max()
            .unwrap();
        // Optimum is 7s; SRFAE achieves it on this instance.
        assert_eq!(makespan, SimDuration::from_secs(7));
    }

    #[test]
    fn cumulative_keys_spread_load() {
        // 4 identical requests, 2 identical devices: cumulative re-keying
        // must alternate devices (2 each), not pile all four on one.
        let model = crate::TableModel::identical_machines(vec![SimDuration::from_secs(1); 4], 2);
        let inst = model.instance();
        let mut ops = OpCounter::new();
        let plan = assign(&inst, &model, &mut ops);
        assert_eq!(plan[0].len(), 2, "{plan:?}");
        assert_eq!(plan[1].len(), 2, "{plan:?}");
    }

    #[test]
    fn produces_valid_plans_on_kinematic_instances() {
        for seed in 0..5 {
            let (inst, model) = camera_instance(20, 6, seed);
            let mut ops = OpCounter::new();
            let plan = Plan::Sequences(assign(&inst, &model, &mut ops));
            assert_eq!(plan.validate(&inst), Ok(()));
        }
    }

    #[test]
    fn respects_eligibility() {
        let s = SimDuration::from_secs;
        let model = crate::TableModel::new(vec![vec![Some(s(1)), None], vec![None, Some(s(1))]]);
        let inst = model.instance();
        let mut ops = OpCounter::new();
        let plan = assign(&inst, &model, &mut ops);
        assert_eq!(plan[0], vec![0]);
        assert_eq!(plan[1], vec![1]);
    }

    #[test]
    fn op_count_grows_with_instance_size() {
        let (i1, m1) = camera_instance(10, 5, 1);
        let (i2, m2) = camera_instance(30, 5, 1);
        let mut ops1 = OpCounter::new();
        let mut ops2 = OpCounter::new();
        assign(&i1, &m1, &mut ops1);
        assign(&i2, &m2, &mut ops2);
        assert!(ops2.total() > ops1.total());
    }
}
