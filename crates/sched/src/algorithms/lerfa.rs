//! LERFA — Least Eligible Request First Assignment (Algorithm 1.1).
//!
//! ```text
//! 1. for each device dj in D: Wj = 0
//! 2. i = 1
//! 3. while there are unassigned requests:
//! 4.   for each request r that has i candidate devices:
//! 5.     for each candidate device dk of r:
//! 6.       Crk = estimated cost for servicing r on dk
//! 7.       Ek  = Wk + Crk
//! 8.     assign r to the device dl with the least E value
//! 9.     Wl += Crl
//! 10.  i++
//! ```
//!
//! Ties in the candidate count are broken in random order, as the paper
//! specifies. Cost estimates use the device's *predicted* physical status
//! after the requests already assigned to it (sequence-dependence, §5.1).

use aorta_sim::{OpCounter, SimDuration, SimRng};

use crate::{CostModel, Instance, COST_ESTIMATE_OPS};

/// Runs the assignment, returning per-device request sets.
///
/// Execution order within each device is decided later by SRFE
/// (Algorithm 1.2) in the executor.
pub(crate) fn assign<M: CostModel>(
    inst: &Instance,
    model: &M,
    ops: &mut OpCounter,
    rng: &mut SimRng,
) -> Vec<Vec<usize>> {
    let m = inst.n_devices();
    let mut workload = vec![SimDuration::ZERO; m];
    let mut status: Vec<M::Status> = (0..m).map(|d| model.initial_status(d)).collect();
    let mut per_device: Vec<Vec<usize>> = vec![Vec::new(); m];

    // Least-eligible-first order, random among equals: shuffle, then stable
    // sort by candidate count.
    let mut order: Vec<usize> = (0..inst.n_requests()).collect();
    rng.shuffle(&mut order);
    order.sort_by_key(|&r| inst.eligible(r).len());
    ops.add(inst.n_requests() as u64); // sorting pass

    for r in order {
        let mut best: Option<(SimDuration, SimDuration, usize)> = None;
        for &d in inst.eligible(r) {
            ops.add(COST_ESTIMATE_OPS);
            let cost = model.cost(r, d, &status[d]);
            let finish = workload[d] + cost;
            let better = match best {
                None => true,
                Some((best_finish, _, _)) => finish < best_finish,
            };
            if better {
                best = Some((finish, cost, d));
            }
        }
        let (_, cost, d) = best.expect("Instance guarantees a non-empty candidate set");
        workload[d] += cost;
        status[d] = model.next_status(r, d, &status[d]);
        per_device[d].push(r);
    }
    per_device
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::testutil::{camera_instance, small_table};

    #[test]
    fn balances_the_small_table_optimally() {
        let (inst, model) = small_table();
        let mut ops = OpCounter::new();
        let mut rng = SimRng::seed(2);
        let plan = assign(&inst, &model, &mut ops, &mut rng);
        // r2 is only eligible on d1, so it is assigned first; the balanced
        // outcome puts r0 and r3 on d0 (workload 5) and r1, r2 on d1 (7).
        assert!(plan[1].contains(&2));
        let w0: SimDuration = plan[0].iter().map(|&r| model.cost(r, 0, &())).sum();
        let w1: SimDuration = plan[1].iter().map(|&r| model.cost(r, 1, &())).sum();
        assert_eq!(w0.max(w1), SimDuration::from_secs(7));
    }

    #[test]
    fn least_eligible_requests_assigned_first() {
        // r0 eligible everywhere; r1 only on d0. If r1 were assigned last it
        // could pile onto d0 behind r0; LERFA assigns r1 first.
        let s = SimDuration::from_secs;
        let model =
            crate::TableModel::new(vec![vec![Some(s(5)), Some(s(5))], vec![Some(s(5)), None]]);
        let inst = model.instance();
        let mut ops = OpCounter::new();
        let mut rng = SimRng::seed(2);
        let plan = assign(&inst, &model, &mut ops, &mut rng);
        assert_eq!(plan[0], vec![1], "constrained request lands on d0 first");
        assert_eq!(plan[1], vec![0], "flexible request balances onto d1");
    }

    #[test]
    fn counts_cost_estimates() {
        let (inst, model) = camera_instance(10, 5, 3);
        let mut ops = OpCounter::new();
        let mut rng = SimRng::seed(3);
        let _ = assign(&inst, &model, &mut ops, &mut rng);
        // 10 requests × 5 candidates × COST_ESTIMATE_OPS, plus the sort pass.
        assert_eq!(ops.total(), 10 * 5 * COST_ESTIMATE_OPS + 10);
    }

    #[test]
    fn all_requests_assigned_exactly_once() {
        let (inst, model) = camera_instance(30, 7, 4);
        let mut ops = OpCounter::new();
        let mut rng = SimRng::seed(4);
        let plan = assign(&inst, &model, &mut ops, &mut rng);
        let mut all: Vec<usize> = plan.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..30).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_given_seed() {
        let (inst, model) = camera_instance(15, 4, 5);
        let run = |seed| {
            let mut ops = OpCounter::new();
            let mut rng = SimRng::seed(seed);
            assign(&inst, &model, &mut ops, &mut rng)
        };
        assert_eq!(run(9), run(9));
    }
}
