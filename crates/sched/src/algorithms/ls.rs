//! LS — greedy List Scheduling.
//!
//! "Whenever a machine becomes idle, the LS algorithm schedules any eligible
//! job that has not yet been scheduled on the machine" (§5.2). LS is a CAP
//! algorithm whose assignment decisions happen *during* execution, so it
//! produces the fully dynamic [`Plan::ListDynamic`]; the executor implements
//! the idle-device-takes-next-eligible-job loop.

use crate::Plan;

/// LS has no offline assignment phase.
pub(crate) fn plan() -> Plan {
    Plan::ListDynamic
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ls_is_fully_dynamic() {
        assert_eq!(plan(), Plan::ListDynamic);
    }
}
