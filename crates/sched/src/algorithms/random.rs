//! RANDOM — the baseline of §6.3.
//!
//! "It randomly assigns action requests to available devices for execution."
//! Each request independently picks a uniformly random candidate device;
//! devices service their queues FIFO.

use aorta_sim::{OpCounter, SimRng};

use crate::Instance;

/// Runs the random assignment.
pub(crate) fn assign(inst: &Instance, ops: &mut OpCounter, rng: &mut SimRng) -> Vec<Vec<usize>> {
    let mut per_device: Vec<Vec<usize>> = vec![Vec::new(); inst.n_devices()];
    for r in 0..inst.n_requests() {
        ops.tick();
        let d = *rng
            .pick(inst.eligible(r))
            .expect("Instance guarantees a non-empty candidate set");
        per_device[d].push(r);
    }
    per_device
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Plan;

    #[test]
    fn assigns_every_request_to_an_eligible_device() {
        let inst = Instance::new(3, vec![vec![0], vec![1, 2], vec![0, 1, 2], vec![2]]);
        let mut ops = OpCounter::new();
        let mut rng = SimRng::seed(5);
        let plan = Plan::Sequences(assign(&inst, &mut ops, &mut rng));
        assert_eq!(plan.validate(&inst), Ok(()));
        assert_eq!(ops.total(), 4);
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let inst = Instance::fully_eligible(1, 4);
        let mut rng = SimRng::seed(6);
        let mut counts = [0u32; 4];
        for _ in 0..4000 {
            let mut ops = OpCounter::new();
            let plan = assign(&inst, &mut ops, &mut rng);
            for (d, q) in plan.iter().enumerate() {
                counts[d] += q.len() as u32;
            }
        }
        for &c in &counts {
            assert!((800..=1200).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn can_produce_unbalanced_loads() {
        // The reason RANDOM performs worst in Figure 4: with n=m, some
        // device frequently gets 2+ requests while others idle.
        let inst = Instance::fully_eligible(10, 10);
        let mut rng = SimRng::seed(7);
        let mut saw_imbalance = false;
        for _ in 0..20 {
            let mut ops = OpCounter::new();
            let plan = assign(&inst, &mut ops, &mut rng);
            if plan.iter().any(|q| q.len() >= 2) {
                saw_imbalance = true;
            }
        }
        assert!(saw_imbalance);
    }
}
