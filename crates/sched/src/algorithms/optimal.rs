//! Exact makespan minimization by branch-and-bound, for small instances.
//!
//! The paper notes the optimal MIP "required nearly one and a half hour …
//! with an input size n = 4 and m = 8" on 2002 hardware (§5.2) — exact
//! solutions are only for validating heuristics on small instances, which is
//! what this module is for: property tests assert the heuristics stay within
//! a constant factor of optimal.
//!
//! The search inserts requests in index order into any eligible device at
//! any sequence position (which reaches every possible schedule, including
//! all per-device orders), pruning branches whose partial makespan already
//! meets the incumbent.

use aorta_sim::SimDuration;

use crate::{CostModel, Instance};

/// Hard cap on the exhaustive search size.
const MAX_REQUESTS: usize = 9;

/// Finds an optimal schedule (per-device sequences) and its makespan.
///
/// # Panics
///
/// Panics when the instance has more than 9 requests — the search is
/// exponential and larger inputs indicate misuse.
pub fn exhaustive_optimal<M: CostModel>(
    inst: &Instance,
    model: &M,
) -> (Vec<Vec<usize>>, SimDuration) {
    assert!(
        inst.n_requests() <= MAX_REQUESTS,
        "exhaustive search is capped at {MAX_REQUESTS} requests, got {}",
        inst.n_requests()
    );
    let mut state = Search {
        inst,
        model,
        lanes: vec![Vec::new(); inst.n_devices()],
        lane_cost: vec![SimDuration::ZERO; inst.n_devices()],
        best: None,
        best_makespan: SimDuration::MAX,
    };
    state.dfs(0);
    let best = state
        .best
        .expect("every Instance request has ≥1 candidate, so a schedule exists");
    (best, state.best_makespan)
}

struct Search<'a, M: CostModel> {
    inst: &'a Instance,
    model: &'a M,
    lanes: Vec<Vec<usize>>,
    lane_cost: Vec<SimDuration>,
    best: Option<Vec<Vec<usize>>>,
    best_makespan: SimDuration,
}

impl<M: CostModel> Search<'_, M> {
    fn dfs(&mut self, r: usize) {
        let partial = self
            .lane_cost
            .iter()
            .copied()
            .max()
            .unwrap_or(SimDuration::ZERO);
        if partial >= self.best_makespan {
            return; // prune
        }
        if r == self.inst.n_requests() {
            self.best_makespan = partial;
            self.best = Some(self.lanes.clone());
            return;
        }
        for &d in self.inst.eligible(r) {
            for pos in 0..=self.lanes[d].len() {
                self.lanes[d].insert(pos, r);
                let old_cost = self.lane_cost[d];
                self.lane_cost[d] = self.model.sequence_cost(d, &self.lanes[d]);
                self.dfs(r + 1);
                self.lane_cost[d] = old_cost;
                self.lanes[d].remove(pos);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::testutil::{camera_instance, small_table};
    use crate::Plan;
    use aorta_sim::SimDuration;

    #[test]
    fn solves_the_small_table() {
        let (inst, model) = small_table();
        let (plan, makespan) = exhaustive_optimal(&inst, &model);
        assert_eq!(makespan, SimDuration::from_secs(7));
        assert_eq!(Plan::Sequences(plan).validate(&inst), Ok(()));
    }

    #[test]
    fn single_device_sequences_optimally() {
        // One camera, three targets where visiting in spatial order beats
        // the worst order — the optimum must find the cheap tour.
        let (inst, model) = camera_instance(3, 1, 31);
        let (plan, makespan) = exhaustive_optimal(&inst, &model);
        // Compare against every permutation by brute force.
        let perms: [[usize; 3]; 6] = [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ];
        let brute = perms
            .iter()
            .map(|p| model.sequence_cost(0, p))
            .min()
            .unwrap();
        assert_eq!(makespan, brute);
        assert_eq!(plan[0].len(), 3);
    }

    #[test]
    fn respects_eligibility() {
        let s = SimDuration::from_secs;
        let model =
            crate::TableModel::new(vec![vec![Some(s(10)), None], vec![Some(s(1)), Some(s(1))]]);
        let inst = model.instance();
        let (plan, makespan) = exhaustive_optimal(&inst, &model);
        // Both requests must go to d1 even though it serializes them.
        assert!(plan[0].is_empty() || makespan <= SimDuration::from_secs(10));
        assert_eq!(makespan, SimDuration::from_secs(2));
    }

    #[test]
    #[should_panic(expected = "capped")]
    fn rejects_large_instances() {
        let (inst, model) = camera_instance(10, 2, 32);
        let _ = exhaustive_optimal(&inst, &model);
    }

    #[test]
    fn optimal_never_exceeds_any_heuristic() {
        use crate::algorithms::Algorithm;
        use aorta_sim::{OpCounter, SimRng};
        for seed in 0..4 {
            let (inst, model) = camera_instance(6, 2, 100 + seed);
            let (_, opt) = exhaustive_optimal(&inst, &model);
            for alg in [Algorithm::LerfaSrfe, Algorithm::Srfae, Algorithm::Random] {
                let mut ops = OpCounter::new();
                let mut rng = SimRng::seed(seed);
                let plan = alg.schedule(&inst, &model, &mut ops, &mut rng);
                if let Some(lanes) = plan.per_device() {
                    let heuristic = lanes
                        .iter()
                        .enumerate()
                        .map(|(d, lane)| model.sequence_cost(d, lane))
                        .max()
                        .unwrap();
                    assert!(
                        heuristic + SimDuration::from_micros(1) > opt,
                        "{}: heuristic {heuristic} below optimal {opt}?!",
                        alg.name()
                    );
                }
            }
        }
    }
}
