//! The five scheduling algorithms evaluated in §6.3.

mod lerfa;
mod ls;
mod optimal;
mod random;
mod sa;
mod srfae;

pub use optimal::exhaustive_optimal;
pub use sa::SaConfig;

use aorta_sim::{OpCounter, SimRng};

use crate::{CostModel, Instance, Plan};

/// A scheduling algorithm under study.
#[derive(Debug, Clone, PartialEq)]
pub enum Algorithm {
    /// The paper's Algorithm 1 (SAP): Least Eligible Request First
    /// Assignment + Shortest Request First Execution.
    LerfaSrfe,
    /// The paper's Algorithm 2 (CAP): Shortest Request First Assignment and
    /// Execution over a balanced BST of request–device pairs.
    Srfae,
    /// Greedy List Scheduling: an idle device takes the first eligible
    /// unscheduled request.
    Ls,
    /// Simulated Annealing (Anagnostopoulos & Rabadi) over assignments and
    /// per-device sequences.
    Sa(SaConfig),
    /// Random assignment baseline.
    Random,
}

impl Algorithm {
    /// The display name used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::LerfaSrfe => "LERFA + SRFE",
            Algorithm::Srfae => "SRFAE",
            Algorithm::Ls => "LS",
            Algorithm::Sa(_) => "SA",
            Algorithm::Random => "RANDOM",
        }
    }

    /// The five algorithms of §6.3 with default configurations, in the
    /// paper's figure order.
    pub fn paper_lineup() -> Vec<Algorithm> {
        vec![
            Algorithm::LerfaSrfe,
            Algorithm::Srfae,
            Algorithm::Ls,
            Algorithm::Sa(SaConfig::default()),
            Algorithm::Random,
        ]
    }

    /// Runs the assignment phase, counting elementary operations into `ops`.
    pub fn schedule<M: CostModel>(
        &self,
        inst: &Instance,
        model: &M,
        ops: &mut OpCounter,
        rng: &mut SimRng,
    ) -> Plan {
        match self {
            Algorithm::LerfaSrfe => {
                Plan::ShortestFirstPerDevice(lerfa::assign(inst, model, ops, rng))
            }
            Algorithm::Srfae => Plan::Sequences(srfae::assign(inst, model, ops)),
            Algorithm::Ls => ls::plan(),
            Algorithm::Sa(cfg) => Plan::Sequences(sa::assign(inst, model, cfg, ops, rng)),
            Algorithm::Random => Plan::Sequences(random::assign(inst, ops, rng)),
        }
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared fixtures for algorithm tests.

    use aorta_data::Location;
    use aorta_device::{Camera, CameraFailureModel, PhotoSize};
    use aorta_sim::{SimDuration, SimRng};

    use crate::{CameraPhotoModel, Instance, TableModel};

    /// A small sequence-independent instance with a known optimal makespan.
    ///
    /// Costs (device × request):
    /// ```text
    ///        r0   r1   r2   r3
    /// d0      2    4    -    3
    /// d1      3    2    5    -
    /// ```
    /// Optimal: d0 ← {r0, r3} (5), d1 ← {r1, r2} (7) → makespan 7.
    pub fn small_table() -> (Instance, TableModel) {
        let s = SimDuration::from_secs;
        let model = TableModel::new(vec![
            vec![Some(s(2)), Some(s(4)), None, Some(s(3))],
            vec![Some(s(3)), Some(s(2)), Some(s(5)), None],
        ]);
        let inst = model.instance();
        (inst, model)
    }

    /// A kinematic instance: `n` photo requests over `m` reliable cameras.
    pub fn camera_instance(n: usize, m: usize, seed: u64) -> (Instance, CameraPhotoModel) {
        let mut rng = SimRng::seed(seed);
        let cameras: Vec<Camera> = (0..m)
            .map(|i| {
                Camera::ceiling_mounted(i as u32, Location::new(i as f64, 3.0, 3.0))
                    .with_failure(CameraFailureModel::reliable())
            })
            .collect();
        let targets: Vec<Location> = (0..n)
            .map(|_| Location::new(rng.unit() * 8.0, rng.unit() * 6.0, 1.0))
            .collect();
        let model = CameraPhotoModel::new(cameras, &targets, PhotoSize::Medium);
        (Instance::fully_eligible(n, m), model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aorta_sim::{OpCounter, SimRng};

    #[test]
    fn lineup_matches_paper_order() {
        let names: Vec<&str> = Algorithm::paper_lineup().iter().map(|a| a.name()).collect();
        assert_eq!(names, ["LERFA + SRFE", "SRFAE", "LS", "SA", "RANDOM"]);
    }

    #[test]
    fn every_algorithm_produces_a_valid_plan() {
        let (inst, model) = testutil::small_table();
        for alg in Algorithm::paper_lineup() {
            let mut ops = OpCounter::new();
            let mut rng = SimRng::seed(42);
            let plan = alg.schedule(&inst, &model, &mut ops, &mut rng);
            assert_eq!(plan.validate(&inst), Ok(()), "{}", alg.name());
        }
    }

    #[test]
    fn every_algorithm_valid_on_kinematic_instance() {
        let (inst, model) = testutil::camera_instance(12, 4, 7);
        for alg in Algorithm::paper_lineup() {
            let mut ops = OpCounter::new();
            let mut rng = SimRng::seed(43);
            let plan = alg.schedule(&inst, &model, &mut ops, &mut rng);
            assert_eq!(plan.validate(&inst), Ok(()), "{}", alg.name());
        }
    }
}
