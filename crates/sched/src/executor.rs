//! Virtual-time execution of schedules and the end-to-end harness.
//!
//! Figure 4's makespans "included both the computational cost of the
//! scheduling algorithm (the scheduling time), and the time spent on
//! servicing the requests on the cameras (the service time)" — so
//! [`RunResult::total`] is the sum of the two, and Figure 5's breakdown
//! falls out of the parts.

use aorta_obs::MetricsRegistry;
use aorta_sim::{CpuModel, OpCounter, SimDuration, SimRng};

use crate::{Algorithm, CostModel, Instance, Plan, COST_ESTIMATE_OPS};

/// The outcome of running one scheduling algorithm on one instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunResult {
    /// Algorithm display name.
    pub algorithm: &'static str,
    /// Virtual compute time of the algorithm (op count / CPU model).
    pub sched_time: SimDuration,
    /// Time from service start until the last request finishes.
    pub service_makespan: SimDuration,
    /// Raw counted operations.
    pub ops: u64,
    /// Requests serviced (always *n* here — failure modelling lives in the
    /// engine, not the scheduler study).
    pub completed: usize,
    /// Per-device total busy time.
    pub per_device_busy: Vec<SimDuration>,
}

impl RunResult {
    /// The paper's makespan: scheduling time plus service makespan.
    pub fn total(&self) -> SimDuration {
        self.sched_time + self.service_makespan
    }

    /// Records this run into a metrics registry: per-algorithm schedule
    /// time and makespan histograms, a completed-request counter, and one
    /// per-lane busy-time gauge (virtual µs) for utilization analysis.
    pub fn record_into(&self, registry: &mut MetricsRegistry) {
        let alg = [("algorithm", self.algorithm)];
        registry.observe("aorta_sched_time", &alg, self.sched_time);
        registry.observe("aorta_sched_service_makespan", &alg, self.service_makespan);
        registry.incr("aorta_sched_completed", &alg, self.completed as u64);
        registry.incr("aorta_sched_ops", &alg, self.ops);
        for (lane, busy) in self.per_device_busy.iter().enumerate() {
            registry.gauge_set(
                "aorta_sched_lane_busy_us",
                &[("algorithm", self.algorithm), ("lane", &lane.to_string())],
                busy.as_micros() as i64,
            );
        }
    }
}

/// Services a plan in virtual time, returning per-device busy times.
///
/// Devices are independent once assignments are fixed ("there is no
/// connection or communication among the devices", §7), so static plans
/// simulate per device; the dynamic LS plan serializes assignment decisions
/// through a global idle-device loop.
pub fn execute_plan<M: CostModel>(
    inst: &Instance,
    model: &M,
    plan: &Plan,
    ops: &mut OpCounter,
) -> Vec<SimDuration> {
    match plan {
        Plan::Sequences(lanes) => lanes
            .iter()
            .enumerate()
            .map(|(d, lane)| model.sequence_cost(d, lane))
            .collect(),
        Plan::ShortestFirstPerDevice(lanes) => lanes
            .iter()
            .enumerate()
            .map(|(d, lane)| srfe_device(model, d, lane, ops))
            .collect(),
        Plan::ListDynamic => list_schedule(inst, model, ops),
    }
}

/// SRFE (Algorithm 1.2) on one device: repeatedly service the remaining
/// request with the least estimated cost *from the device's current
/// physical status*.
fn srfe_device<M: CostModel>(
    model: &M,
    device: usize,
    requests: &[usize],
    ops: &mut OpCounter,
) -> SimDuration {
    let mut remaining: Vec<usize> = requests.to_vec();
    let mut status = model.initial_status(device);
    let mut elapsed = SimDuration::ZERO;
    while !remaining.is_empty() {
        let mut best_idx = 0;
        let mut best_cost = SimDuration::MAX;
        for (i, &r) in remaining.iter().enumerate() {
            ops.add(COST_ESTIMATE_OPS);
            let c = model.cost(r, device, &status);
            if c < best_cost {
                best_cost = c;
                best_idx = i;
            }
        }
        let r = remaining.swap_remove(best_idx);
        elapsed += best_cost;
        status = model.next_status(r, device, &status);
    }
    elapsed
}

/// Greedy list scheduling: the earliest-idle device takes the first (in
/// request order) eligible unscheduled request.
fn list_schedule<M: CostModel>(
    inst: &Instance,
    model: &M,
    ops: &mut OpCounter,
) -> Vec<SimDuration> {
    let m = inst.n_devices();
    let mut free_at = vec![SimDuration::ZERO; m];
    let mut status: Vec<M::Status> = (0..m).map(|d| model.initial_status(d)).collect();
    let mut scheduled = vec![false; inst.n_requests()];
    let mut active: Vec<bool> = vec![true; m];
    let mut left = inst.n_requests();

    while left > 0 {
        // The earliest-idle device still able to take work.
        let d = match (0..m)
            .filter(|&d| active[d])
            .min_by_key(|&d| (free_at[d], d))
        {
            Some(d) => d,
            None => unreachable!("Instance guarantees every request has a candidate"),
        };
        ops.tick();
        let next = (0..inst.n_requests()).find(|&r| !scheduled[r] && inst.is_eligible(r, d));
        match next {
            Some(r) => {
                ops.add(COST_ESTIMATE_OPS);
                let c = model.cost(r, d, &status[d]);
                free_at[d] += c;
                status[d] = model.next_status(r, d, &status[d]);
                scheduled[r] = true;
                left -= 1;
            }
            None => active[d] = false,
        }
    }
    free_at
}

/// What became of the orphans of a failed device after re-queuing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OrphanOutcome {
    /// `(request, new_device)` pairs moved onto surviving lanes.
    pub requeued: Vec<(usize, usize)>,
    /// Requests with no surviving eligible device; the caller must report
    /// these as failed — they are never silently dropped.
    pub dropped: Vec<usize>,
    /// Requests whose cheapest surviving lane already finishes past their
    /// deadline: re-queuing them would spend device time on work that can
    /// only be cancelled at completion, so they are dropped as counted
    /// expiries instead of retried forever.
    pub expired: Vec<usize>,
}

/// Fails over a static plan after device `failed` dies: drains its lane and
/// re-assigns each orphaned request to the surviving eligible device whose
/// lane it lengthens the least (measured by [`CostModel::sequence_cost`] with
/// the orphan appended). Requests eligible only on the dead device are
/// returned in [`OrphanOutcome::dropped`].
///
/// [`Plan::ListDynamic`] carries no lanes to repair — the dynamic scheduler
/// re-assigns naturally — so it is a documented no-op here.
pub fn requeue_orphans<M: CostModel>(
    plan: &mut Plan,
    inst: &Instance,
    model: &M,
    failed: usize,
    ops: &mut OpCounter,
) -> OrphanOutcome {
    requeue_orphans_with_deadlines(plan, inst, model, failed, &[], ops)
}

/// Deadline-aware variant of [`requeue_orphans`]: `deadlines[r]` is request
/// `r`'s remaining completion budget on the plan's own clock (the one
/// [`CostModel::sequence_cost`] measures). An orphan whose cheapest
/// surviving lane would still finish past its budget lands in
/// [`OrphanOutcome::expired`] rather than being moved. A missing entry or
/// [`SimDuration::MAX`] means unbounded, so an empty slice reproduces
/// [`requeue_orphans`] exactly.
pub fn requeue_orphans_with_deadlines<M: CostModel>(
    plan: &mut Plan,
    inst: &Instance,
    model: &M,
    failed: usize,
    deadlines: &[SimDuration],
    ops: &mut OpCounter,
) -> OrphanOutcome {
    let lanes = match plan {
        Plan::Sequences(lanes) | Plan::ShortestFirstPerDevice(lanes) => lanes,
        Plan::ListDynamic => return OrphanOutcome::default(),
    };
    let mut outcome = OrphanOutcome::default();
    if failed >= lanes.len() {
        return outcome;
    }
    let orphans = std::mem::take(&mut lanes[failed]);
    for r in orphans {
        let budget = deadlines.get(r).copied().unwrap_or(SimDuration::MAX);
        let mut best: Option<(SimDuration, usize)> = None;
        for &d in inst.eligible(r) {
            if d == failed || d >= lanes.len() {
                continue;
            }
            ops.add(COST_ESTIMATE_OPS);
            let mut lane = lanes[d].clone();
            lane.push(r);
            let cost = model.sequence_cost(d, &lane);
            if best.is_none_or(|(bc, _)| cost < bc) {
                best = Some((cost, d));
            }
        }
        match best {
            Some((cost, _)) if cost > budget => outcome.expired.push(r),
            Some((_, d)) => {
                lanes[d].push(r);
                outcome.requeued.push((r, d));
            }
            None => outcome.dropped.push(r),
        }
    }
    outcome
}

/// Runs one algorithm end to end: schedule, validate, service, and convert
/// counted operations into virtual scheduling time.
pub fn run_algorithm<M: CostModel>(
    algorithm: &Algorithm,
    inst: &Instance,
    model: &M,
    cpu: &CpuModel,
    rng: &mut SimRng,
) -> RunResult {
    let mut ops = OpCounter::new();
    let plan = algorithm.schedule(inst, model, &mut ops, rng);
    debug_assert_eq!(plan.validate(inst), Ok(()), "{}", algorithm.name());
    let per_device_busy = execute_plan(inst, model, &plan, &mut ops);
    let service_makespan = per_device_busy
        .iter()
        .copied()
        .max()
        .unwrap_or(SimDuration::ZERO);
    RunResult {
        algorithm: algorithm.name(),
        sched_time: cpu.time_for(&ops),
        service_makespan,
        ops: ops.total(),
        completed: inst.n_requests(),
        per_device_busy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::testutil::{camera_instance, small_table};
    use crate::TableModel;

    #[test]
    fn sequences_plan_sums_lane_costs() {
        let (inst, model) = small_table();
        let plan = Plan::Sequences(vec![vec![0, 3], vec![1, 2]]);
        let mut ops = OpCounter::new();
        let busy = execute_plan(&inst, &model, &plan, &mut ops);
        assert_eq!(busy[0], SimDuration::from_secs(5));
        assert_eq!(busy[1], SimDuration::from_secs(7));
    }

    #[test]
    fn srfe_orders_by_proximity() {
        // One camera; requests whose optimal service order is not the
        // assignment order. SRFE must not exceed the assignment-order cost.
        let (_, model) = camera_instance(5, 1, 41);
        let lane: Vec<usize> = (0..5).collect();
        let mut ops = OpCounter::new();
        let srfe = srfe_device(&model, 0, &lane, &mut ops);
        let fifo = model.sequence_cost(0, &lane);
        assert!(
            srfe <= fifo + SimDuration::from_micros(5),
            "srfe {srfe} should not exceed fifo {fifo}"
        );
    }

    #[test]
    fn srfe_counts_quadratic_estimates() {
        let (_, model) = camera_instance(4, 1, 42);
        let mut ops = OpCounter::new();
        let _ = srfe_device(&model, 0, &[0, 1, 2, 3], &mut ops);
        // 4 + 3 + 2 + 1 = 10 estimates.
        assert_eq!(ops.total(), 10 * COST_ESTIMATE_OPS);
    }

    #[test]
    fn list_scheduling_fills_idle_devices() {
        // 4 equal 1s jobs on 2 machines -> makespan 2s, perfectly balanced.
        let model = TableModel::identical_machines(vec![SimDuration::from_secs(1); 4], 2);
        let inst = model.instance();
        let mut ops = OpCounter::new();
        let busy = list_schedule(&inst, &model, &mut ops);
        assert_eq!(busy, vec![SimDuration::from_secs(2); 2]);
    }

    #[test]
    fn list_scheduling_respects_eligibility() {
        let s = SimDuration::from_secs;
        // r0, r1 only on d1; d0 must go inactive without stealing them.
        let model = TableModel::new(vec![vec![None, None], vec![Some(s(1)), Some(s(1))]]);
        let inst = model.instance();
        let mut ops = OpCounter::new();
        let busy = list_schedule(&inst, &model, &mut ops);
        assert_eq!(busy[0], SimDuration::ZERO);
        assert_eq!(busy[1], SimDuration::from_secs(2));
    }

    #[test]
    fn run_algorithm_reports_breakdown() {
        let (inst, model) = camera_instance(12, 4, 43);
        let mut rng = SimRng::seed(1);
        let result = run_algorithm(
            &Algorithm::LerfaSrfe,
            &inst,
            &model,
            &CpuModel::paper_notebook(),
            &mut rng,
        );
        assert_eq!(result.algorithm, "LERFA + SRFE");
        assert_eq!(result.completed, 12);
        assert!(result.ops > 0);
        assert!(result.sched_time > SimDuration::ZERO);
        assert!(result.service_makespan >= SimDuration::from_millis(360));
        assert_eq!(result.total(), result.sched_time + result.service_makespan);
        assert_eq!(result.per_device_busy.len(), 4);
        assert_eq!(
            result.per_device_busy.iter().copied().max().unwrap(),
            result.service_makespan
        );
    }

    #[test]
    fn all_five_algorithms_run_end_to_end() {
        let (inst, model) = camera_instance(20, 10, 44);
        let mut rng = SimRng::seed(2);
        for alg in Algorithm::paper_lineup() {
            let alg = match alg {
                Algorithm::Sa(_) => Algorithm::Sa(crate::SaConfig::quick()),
                other => other,
            };
            let r = run_algorithm(&alg, &inst, &model, &CpuModel::paper_notebook(), &mut rng);
            assert_eq!(r.completed, 20, "{}", alg.name());
            assert!(
                r.service_makespan >= SimDuration::from_millis(360),
                "{}",
                alg.name()
            );
            // All 20 requests serviced somewhere: busy time ≥ 20 × min cost.
            let total_busy: SimDuration = r.per_device_busy.iter().copied().sum();
            assert!(total_busy >= SimDuration::from_millis(360) * 20);
        }
    }

    #[test]
    fn requeue_moves_orphans_to_least_loaded_lane() {
        let s = SimDuration::from_secs;
        // Two identical machines; lane 0 is long, lane 1 short. When device
        // 2 (holding r4) dies, r4 must land on the shorter lane 1.
        let model = TableModel::identical_machines(vec![s(1); 5], 3);
        let inst = model.instance();
        let mut plan = Plan::Sequences(vec![vec![0, 1, 2], vec![3], vec![4]]);
        let mut ops = OpCounter::new();
        let outcome = requeue_orphans(&mut plan, &inst, &model, 2, &mut ops);
        assert_eq!(outcome.requeued, vec![(4, 1)]);
        assert!(outcome.dropped.is_empty());
        let Plan::Sequences(lanes) = &plan else {
            panic!("plan shape changed");
        };
        assert!(lanes[2].is_empty());
        assert_eq!(lanes[1], vec![3, 4]);
        assert!(ops.total() > 0, "re-assignment must cost estimate ops");
        // Every surviving request still appears exactly once.
        let mut all: Vec<usize> = lanes.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn requeue_expires_orphans_whose_cheapest_lane_misses_their_deadline() {
        let s = SimDuration::from_secs;
        // Same topology as above, but r4 has only 1s of budget left while
        // the shortest surviving lane would finish it at 2s — it must be
        // expired, not moved. A generous budget on the same orphan requeues.
        let model = TableModel::identical_machines(vec![s(1); 5], 3);
        let inst = model.instance();
        let tight = {
            let mut plan = Plan::Sequences(vec![vec![0, 1, 2], vec![3], vec![4]]);
            let mut deadlines = vec![SimDuration::MAX; 5];
            deadlines[4] = s(1);
            let mut ops = OpCounter::new();
            requeue_orphans_with_deadlines(&mut plan, &inst, &model, 2, &deadlines, &mut ops)
        };
        assert!(tight.requeued.is_empty());
        assert!(tight.dropped.is_empty());
        assert_eq!(tight.expired, vec![4]);
        let loose = {
            let mut plan = Plan::Sequences(vec![vec![0, 1, 2], vec![3], vec![4]]);
            let mut deadlines = vec![SimDuration::MAX; 5];
            deadlines[4] = s(2);
            let mut ops = OpCounter::new();
            requeue_orphans_with_deadlines(&mut plan, &inst, &model, 2, &deadlines, &mut ops)
        };
        assert_eq!(loose.requeued, vec![(4, 1)]);
        assert!(loose.expired.is_empty());
    }

    #[test]
    fn requeue_reports_sole_candidate_orphans_as_dropped() {
        let s = SimDuration::from_secs;
        // r1 is eligible only on device 1; when device 1 dies it cannot be
        // re-queued and must be reported dropped, not lost.
        // Rows are devices: device 0 can serve only r0, device 1 both.
        let model = TableModel::new(vec![vec![Some(s(1)), None], vec![Some(s(1)), Some(s(1))]]);
        let inst = model.instance();
        let mut plan = Plan::Sequences(vec![vec![0], vec![1]]);
        let mut ops = OpCounter::new();
        let outcome = requeue_orphans(&mut plan, &inst, &model, 1, &mut ops);
        assert_eq!(outcome.requeued, vec![]);
        assert_eq!(outcome.dropped, vec![1]);
    }

    #[test]
    fn requeue_is_noop_for_dynamic_plans() {
        let model = TableModel::identical_machines(vec![SimDuration::from_secs(1); 3], 2);
        let inst = model.instance();
        let mut plan = Plan::ListDynamic;
        let mut ops = OpCounter::new();
        let outcome = requeue_orphans(&mut plan, &inst, &model, 0, &mut ops);
        assert_eq!(outcome, OrphanOutcome::default());
        assert_eq!(plan, Plan::ListDynamic);
    }

    #[test]
    fn requeued_plan_still_validates_on_survivors() {
        let (inst, model) = camera_instance(10, 4, 46);
        let mut rng = SimRng::seed(5);
        let mut ops = OpCounter::new();
        let mut plan = Algorithm::LerfaSrfe.schedule(&inst, &model, &mut ops, &mut rng);
        let outcome = requeue_orphans(&mut plan, &inst, &model, 0, &mut ops);
        // Fully eligible instance: nothing may drop, and the repaired plan
        // must still place every request exactly once.
        assert!(outcome.dropped.is_empty());
        assert_eq!(plan.validate(&inst), Ok(()));
        let (Plan::ShortestFirstPerDevice(lanes) | Plan::Sequences(lanes)) = &plan else {
            panic!("static algorithm produced a dynamic plan");
        };
        assert!(lanes[0].is_empty(), "dead lane must be drained");
    }

    #[test]
    fn instant_cpu_isolates_service_time() {
        let (inst, model) = camera_instance(10, 5, 45);
        let mut rng = SimRng::seed(3);
        let r = run_algorithm(
            &Algorithm::Random,
            &inst,
            &model,
            &CpuModel::instant(),
            &mut rng,
        );
        assert_eq!(r.sched_time, SimDuration::ZERO);
        assert_eq!(r.total(), r.service_makespan);
    }

    #[test]
    fn record_into_emits_per_algorithm_and_per_lane_series() {
        let (inst, model) = camera_instance(10, 4, 45);
        let mut rng = SimRng::seed(6);
        let r = run_algorithm(
            &Algorithm::LerfaSrfe,
            &inst,
            &model,
            &CpuModel::paper_notebook(),
            &mut rng,
        );
        let mut reg = MetricsRegistry::new();
        r.record_into(&mut reg);
        let alg = [("algorithm", r.algorithm)];
        assert_eq!(reg.counter("aorta_sched_completed", &alg), 10);
        assert_eq!(reg.counter("aorta_sched_ops", &alg), r.ops);
        let prom = reg.to_prometheus();
        assert!(prom.contains("aorta_sched_time_count{algorithm=\"LERFA + SRFE\"} 1"));
        assert!(
            prom.contains("lane=\"0\""),
            "missing per-lane gauge: {prom}"
        );
        // Recording twice aggregates, never panics.
        r.record_into(&mut reg);
        assert_eq!(reg.counter("aorta_sched_completed", &alg), 20);
    }
}
