//! Property tests over random scheduling instances: every algorithm must
//! produce a valid schedule on any feasible instance, the executor's
//! accounting must be internally consistent, and the proposed heuristics
//! must stay within a constant factor of a trivial lower bound.

use proptest::prelude::*;

use aorta_sched::{
    execute_plan, run_algorithm, Algorithm, CostModel, Instance, SaConfig, TableModel,
};
use aorta_sim::{CpuModel, OpCounter, SimDuration, SimRng};

/// A random feasible instance: 1–12 requests, 1–5 devices, every request
/// eligible on a non-empty random subset, costs in the paper's range.
fn arb_instance() -> impl Strategy<Value = (Instance, TableModel)> {
    (1usize..=12, 1usize..=5).prop_flat_map(|(n, m)| {
        let costs = proptest::collection::vec(
            proptest::collection::vec(proptest::option::weighted(0.8, 360_000u64..5_360_000), n),
            m,
        );
        costs.prop_map(move |mut grid| {
            // Guarantee feasibility: every request gets at least one device.
            for r in 0..n {
                if (0..m).all(|d| grid[d][r].is_none()) {
                    grid[r % m][r] = Some(1_000_000);
                }
            }
            let table = TableModel::new(
                grid.into_iter()
                    .map(|row| {
                        row.into_iter()
                            .map(|c| c.map(SimDuration::from_micros))
                            .collect()
                    })
                    .collect(),
            );
            let inst = table.instance();
            (inst, table)
        })
    })
}

fn algorithms() -> Vec<Algorithm> {
    vec![
        Algorithm::LerfaSrfe,
        Algorithm::Srfae,
        Algorithm::Ls,
        Algorithm::Sa(SaConfig {
            iterations: 300,
            ..SaConfig::default()
        }),
        Algorithm::Random,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Plans are always valid: every request scheduled exactly once on an
    /// eligible device.
    #[test]
    fn prop_all_algorithms_produce_valid_plans(
        (inst, model) in arb_instance(),
        seed in 0u64..1000,
    ) {
        for alg in algorithms() {
            let mut ops = OpCounter::new();
            let mut rng = SimRng::seed(seed);
            let plan = alg.schedule(&inst, &model, &mut ops, &mut rng);
            prop_assert_eq!(plan.validate(&inst), Ok(()), "{}", alg.name());
        }
    }

    /// The reported service makespan is exactly the max per-device busy
    /// time, and total busy time equals the sum of scheduled request costs.
    #[test]
    fn prop_executor_accounting_consistent(
        (inst, model) in arb_instance(),
        seed in 0u64..1000,
    ) {
        for alg in algorithms() {
            let mut rng = SimRng::seed(seed);
            let r = run_algorithm(&alg, &inst, &model, &CpuModel::instant(), &mut rng);
            prop_assert_eq!(r.completed, inst.n_requests());
            let max_busy = r.per_device_busy.iter().copied().max().unwrap_or(SimDuration::ZERO);
            prop_assert_eq!(r.service_makespan, max_busy, "{}", alg.name());
        }
    }

    /// No schedule beats the trivial lower bound max(longest single request
    /// minimum cost, total minimum work / m).
    #[test]
    fn prop_makespan_respects_lower_bound(
        (inst, model) in arb_instance(),
        seed in 0u64..1000,
    ) {
        let m = inst.n_devices() as u64;
        // Lower bound: each request contributes at least its cheapest cost.
        let mins: Vec<SimDuration> = (0..inst.n_requests())
            .map(|r| {
                inst.eligible(r)
                    .iter()
                    .map(|&d| model.cost(r, d, &()))
                    .min()
                    .expect("non-empty candidates")
            })
            .collect();
        let longest = mins.iter().copied().max().unwrap_or(SimDuration::ZERO);
        let total: SimDuration = mins.iter().copied().sum();
        let bound = longest.max(total / m);
        for alg in algorithms() {
            let mut rng = SimRng::seed(seed);
            let r = run_algorithm(&alg, &inst, &model, &CpuModel::instant(), &mut rng);
            prop_assert!(
                r.service_makespan + SimDuration::from_micros(1) >= bound,
                "{} makespan {} below lower bound {}",
                alg.name(),
                r.service_makespan,
                bound
            );
        }
    }

    /// Executing the same plan twice gives the same busy profile
    /// (the executor itself is deterministic).
    #[test]
    fn prop_execution_deterministic(
        (inst, model) in arb_instance(),
        seed in 0u64..1000,
    ) {
        let mut rng = SimRng::seed(seed);
        let mut ops = OpCounter::new();
        let plan = Algorithm::LerfaSrfe.schedule(&inst, &model, &mut ops, &mut rng);
        let mut ops_a = OpCounter::new();
        let mut ops_b = OpCounter::new();
        let a = execute_plan(&inst, &model, &plan, &mut ops_a);
        let b = execute_plan(&inst, &model, &plan, &mut ops_b);
        prop_assert_eq!(a, b);
        prop_assert_eq!(ops_a.total(), ops_b.total());
    }
}
