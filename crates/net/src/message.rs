//! The wire format of the basic communication methods.
//!
//! Every interaction with a device — probes, attribute reads, action
//! commands — is a length-delimited binary [`Message`]. The encoding is a
//! one-byte tag followed by fields; strings are length-prefixed UTF-8.
//! Serialized size matters: the link models charge per byte.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use aorta_data::Value;
use aorta_device::{PhotoSize, PtzPosition};

/// A message exchanged between the communication layer and a device.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Open a connection.
    Connect,
    /// Connection accepted.
    ConnectAck,
    /// Availability + physical status probe (§4).
    Probe,
    /// Probe answer: an opaque status rendering plus raw numeric fields.
    ProbeReply {
        /// pan/tilt/zoom or depth/battery etc., device-specific.
        fields: Vec<f64>,
    },
    /// Read the named sensory attributes.
    ReadAttrs {
        /// Attribute names to acquire.
        names: Vec<String>,
    },
    /// Attribute values, in request order.
    AttrReply {
        /// One value per requested name.
        values: Vec<Value>,
    },
    /// Command a PTZ camera to move and take a photo.
    Photo {
        /// Target head position.
        target: PtzPosition,
        /// Requested photo size.
        size: PhotoSize,
    },
    /// Photo accepted; completion expected after `duration_us`.
    PhotoAck {
        /// Expected execution time in microseconds.
        duration_us: u64,
    },
    /// Deliver a text/media message to a phone.
    SendMessage {
        /// True for MMS, false for SMS.
        mms: bool,
        /// The body (e.g. a photo path).
        body: String,
    },
    /// Message delivered.
    MessageAck,
    /// Close the connection.
    Close,
    /// In-network pushdown marker: the device's reply when its pushed
    /// filter program suppressed the sample. Carries no payload — its
    /// one-byte cost is what suppressed samples pay on the wire instead of
    /// a full [`Message::AttrReply`].
    Suppressed,
}

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

fn err(msg: impl Into<String>) -> WireError {
    WireError(msg.into())
}

const TAG_CONNECT: u8 = 1;
const TAG_CONNECT_ACK: u8 = 2;
const TAG_PROBE: u8 = 3;
const TAG_PROBE_REPLY: u8 = 4;
const TAG_READ_ATTRS: u8 = 5;
const TAG_ATTR_REPLY: u8 = 6;
const TAG_PHOTO: u8 = 7;
const TAG_PHOTO_ACK: u8 = 8;
const TAG_SEND_MESSAGE: u8 = 9;
const TAG_MESSAGE_ACK: u8 = 10;
const TAG_CLOSE: u8 = 11;
const TAG_SUPPRESSED: u8 = 12;

const VAL_NULL: u8 = 0;
const VAL_BOOL: u8 = 1;
const VAL_INT: u8 = 2;
const VAL_FLOAT: u8 = 3;
const VAL_STR: u8 = 4;
const VAL_LOC: u8 = 5;

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> Result<String, WireError> {
    if buf.remaining() < 4 {
        return Err(err("truncated string length"));
    }
    let len = buf.get_u32() as usize;
    if buf.remaining() < len {
        return Err(err("truncated string body"));
    }
    let bytes = buf.copy_to_bytes(len);
    String::from_utf8(bytes.to_vec()).map_err(|_| err("invalid UTF-8 in string"))
}

fn put_value(buf: &mut BytesMut, v: &Value) {
    match v {
        Value::Null => buf.put_u8(VAL_NULL),
        Value::Bool(b) => {
            buf.put_u8(VAL_BOOL);
            buf.put_u8(u8::from(*b));
        }
        Value::Int(i) => {
            buf.put_u8(VAL_INT);
            buf.put_i64(*i);
        }
        Value::Float(f) => {
            buf.put_u8(VAL_FLOAT);
            buf.put_f64(*f);
        }
        Value::Str(s) => {
            buf.put_u8(VAL_STR);
            put_str(buf, s);
        }
        Value::Location(l) => {
            buf.put_u8(VAL_LOC);
            buf.put_f64(l.x);
            buf.put_f64(l.y);
            buf.put_f64(l.z);
        }
    }
}

fn get_value(buf: &mut Bytes) -> Result<Value, WireError> {
    if buf.remaining() < 1 {
        return Err(err("truncated value tag"));
    }
    match buf.get_u8() {
        VAL_NULL => Ok(Value::Null),
        VAL_BOOL => {
            if buf.remaining() < 1 {
                return Err(err("truncated bool"));
            }
            Ok(Value::Bool(buf.get_u8() != 0))
        }
        VAL_INT => {
            if buf.remaining() < 8 {
                return Err(err("truncated int"));
            }
            Ok(Value::Int(buf.get_i64()))
        }
        VAL_FLOAT => {
            if buf.remaining() < 8 {
                return Err(err("truncated float"));
            }
            Ok(Value::Float(buf.get_f64()))
        }
        VAL_STR => Ok(Value::Str(get_str(buf)?)),
        VAL_LOC => {
            if buf.remaining() < 24 {
                return Err(err("truncated location"));
            }
            Ok(Value::Location(aorta_data::Location::new(
                buf.get_f64(),
                buf.get_f64(),
                buf.get_f64(),
            )))
        }
        t => Err(err(format!("unknown value tag {t}"))),
    }
}

impl Message {
    /// Serializes to bytes.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(16);
        match self {
            Message::Connect => buf.put_u8(TAG_CONNECT),
            Message::ConnectAck => buf.put_u8(TAG_CONNECT_ACK),
            Message::Probe => buf.put_u8(TAG_PROBE),
            Message::ProbeReply { fields } => {
                buf.put_u8(TAG_PROBE_REPLY);
                buf.put_u32(fields.len() as u32);
                for f in fields {
                    buf.put_f64(*f);
                }
            }
            Message::ReadAttrs { names } => {
                buf.put_u8(TAG_READ_ATTRS);
                buf.put_u32(names.len() as u32);
                for n in names {
                    put_str(&mut buf, n);
                }
            }
            Message::AttrReply { values } => {
                buf.put_u8(TAG_ATTR_REPLY);
                buf.put_u32(values.len() as u32);
                for v in values {
                    put_value(&mut buf, v);
                }
            }
            Message::Photo { target, size } => {
                buf.put_u8(TAG_PHOTO);
                buf.put_f64(target.pan);
                buf.put_f64(target.tilt);
                buf.put_f64(target.zoom);
                buf.put_u8(match size {
                    PhotoSize::Small => 0,
                    PhotoSize::Medium => 1,
                    PhotoSize::Large => 2,
                });
            }
            Message::PhotoAck { duration_us } => {
                buf.put_u8(TAG_PHOTO_ACK);
                buf.put_u64(*duration_us);
            }
            Message::SendMessage { mms, body } => {
                buf.put_u8(TAG_SEND_MESSAGE);
                buf.put_u8(u8::from(*mms));
                put_str(&mut buf, body);
            }
            Message::MessageAck => buf.put_u8(TAG_MESSAGE_ACK),
            Message::Close => buf.put_u8(TAG_CLOSE),
            Message::Suppressed => buf.put_u8(TAG_SUPPRESSED),
        }
        buf.freeze()
    }

    /// Deserializes from bytes.
    ///
    /// # Errors
    ///
    /// [`WireError`] on truncation, unknown tags, invalid UTF-8, or
    /// trailing bytes.
    pub fn decode(mut buf: Bytes) -> Result<Message, WireError> {
        if buf.remaining() < 1 {
            return Err(err("empty message"));
        }
        let msg = match buf.get_u8() {
            TAG_CONNECT => Message::Connect,
            TAG_CONNECT_ACK => Message::ConnectAck,
            TAG_PROBE => Message::Probe,
            TAG_PROBE_REPLY => {
                if buf.remaining() < 4 {
                    return Err(err("truncated field count"));
                }
                let n = buf.get_u32() as usize;
                if buf.remaining() < n * 8 {
                    return Err(err("truncated probe fields"));
                }
                let fields = (0..n).map(|_| buf.get_f64()).collect();
                Message::ProbeReply { fields }
            }
            TAG_READ_ATTRS => {
                if buf.remaining() < 4 {
                    return Err(err("truncated name count"));
                }
                let n = buf.get_u32() as usize;
                let mut names = Vec::with_capacity(n.min(64));
                for _ in 0..n {
                    names.push(get_str(&mut buf)?);
                }
                Message::ReadAttrs { names }
            }
            TAG_ATTR_REPLY => {
                if buf.remaining() < 4 {
                    return Err(err("truncated value count"));
                }
                let n = buf.get_u32() as usize;
                let mut values = Vec::with_capacity(n.min(64));
                for _ in 0..n {
                    values.push(get_value(&mut buf)?);
                }
                Message::AttrReply { values }
            }
            TAG_PHOTO => {
                if buf.remaining() < 25 {
                    return Err(err("truncated photo command"));
                }
                let target = PtzPosition::new(buf.get_f64(), buf.get_f64(), buf.get_f64());
                let size = match buf.get_u8() {
                    0 => PhotoSize::Small,
                    1 => PhotoSize::Medium,
                    2 => PhotoSize::Large,
                    s => return Err(err(format!("unknown photo size {s}"))),
                };
                Message::Photo { target, size }
            }
            TAG_PHOTO_ACK => {
                if buf.remaining() < 8 {
                    return Err(err("truncated photo ack"));
                }
                Message::PhotoAck {
                    duration_us: buf.get_u64(),
                }
            }
            TAG_SEND_MESSAGE => {
                if buf.remaining() < 1 {
                    return Err(err("truncated message kind"));
                }
                let mms = buf.get_u8() != 0;
                Message::SendMessage {
                    mms,
                    body: get_str(&mut buf)?,
                }
            }
            TAG_MESSAGE_ACK => Message::MessageAck,
            TAG_CLOSE => Message::Close,
            TAG_SUPPRESSED => Message::Suppressed,
            t => return Err(err(format!("unknown message tag {t}"))),
        };
        if buf.has_remaining() {
            return Err(err(format!("{} trailing bytes", buf.remaining())));
        }
        Ok(msg)
    }

    /// Serialized size in bytes (drives per-byte link latency).
    pub fn wire_len(&self) -> usize {
        self.encode().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aorta_data::Location;

    fn round_trip(msg: Message) {
        let bytes = msg.encode();
        let back = Message::decode(bytes).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn all_variants_round_trip() {
        round_trip(Message::Connect);
        round_trip(Message::ConnectAck);
        round_trip(Message::Probe);
        round_trip(Message::ProbeReply {
            fields: vec![1.5, -2.0, 0.25],
        });
        round_trip(Message::ReadAttrs {
            names: vec!["accel_x".into(), "temp".into()],
        });
        round_trip(Message::AttrReply {
            values: vec![
                Value::Null,
                Value::Bool(true),
                Value::Int(-42),
                Value::Float(3.75),
                Value::Str("hello".into()),
                Value::Location(Location::new(1.0, 2.0, 3.0)),
            ],
        });
        round_trip(Message::Photo {
            target: PtzPosition::new(45.0, -30.0, 0.5),
            size: PhotoSize::Large,
        });
        round_trip(Message::PhotoAck { duration_us: 1234 });
        round_trip(Message::SendMessage {
            mms: true,
            body: "photos/admin/door.jpg".into(),
        });
        round_trip(Message::MessageAck);
        round_trip(Message::Close);
        round_trip(Message::Suppressed);
    }

    #[test]
    fn suppressed_marker_is_one_byte() {
        // The pushdown accounting depends on the marker being strictly
        // smaller than any attribute reply: the whole point of suppression
        // is paying one byte per hop instead of the payload.
        assert_eq!(Message::Suppressed.wire_len(), 1);
        let reply = Message::AttrReply { values: vec![] };
        assert!(Message::Suppressed.wire_len() <= reply.wire_len());
    }

    #[test]
    fn unicode_strings_round_trip() {
        round_trip(Message::SendMessage {
            mms: false,
            body: "警报 — movement detected".into(),
        });
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Message::decode(Bytes::new()).is_err());
        assert!(Message::decode(Bytes::from_static(&[99])).is_err());
        // Truncated photo.
        assert!(Message::decode(Bytes::from_static(&[TAG_PHOTO, 0, 0])).is_err());
        // Bad photo size.
        let mut good = BytesMut::new();
        good.put_u8(TAG_PHOTO);
        good.put_f64(0.0);
        good.put_f64(0.0);
        good.put_f64(0.0);
        good.put_u8(7);
        assert!(Message::decode(good.freeze()).is_err());
    }

    #[test]
    fn decode_rejects_trailing_bytes() {
        let mut bytes = BytesMut::from(&Message::Close.encode()[..]);
        bytes.put_u8(0);
        let e = Message::decode(bytes.freeze()).unwrap_err();
        assert!(e.to_string().contains("trailing"), "{e}");
    }

    #[test]
    fn wire_len_tracks_payload() {
        let small = Message::SendMessage {
            mms: false,
            body: "x".into(),
        };
        let big = Message::SendMessage {
            mms: false,
            body: "x".repeat(1000),
        };
        assert!(big.wire_len() > small.wire_len() + 900);
        assert_eq!(Message::Close.wire_len(), 1);
    }

    #[test]
    fn decode_rejects_invalid_utf8() {
        let mut buf = BytesMut::new();
        buf.put_u8(TAG_SEND_MESSAGE);
        buf.put_u8(0);
        buf.put_u32(2);
        buf.put_slice(&[0xFF, 0xFE]);
        assert!(Message::decode(buf.freeze()).is_err());
    }
}
