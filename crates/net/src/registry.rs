//! The device registry: profiles plus the dynamic, logical device view.

use std::collections::BTreeMap;

use aorta_data::{Location, Schema};
use aorta_device::{
    Camera, DeviceId, DeviceKind, Mote, OpCostTable, PervasiveLab, Phone, PhysicalStatus,
    RfidReader,
};
use aorta_sim::{LinkModel, SimDuration, SimRng, SimTime};

use crate::RetryPolicy;

/// A simulated device of any kind.
///
/// Camera is the large variant (photo history + busy intervals); entries
/// live in one registry map, so the size skew is not worth a level of
/// indirection on every access.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)]
pub enum DeviceSim {
    /// A PTZ network camera.
    Camera(Camera),
    /// A sensor mote.
    Mote(Mote),
    /// A phone.
    Phone(Phone),
    /// An RFID portal reader.
    Rfid(RfidReader),
}

impl DeviceSim {
    /// The device's ID.
    pub fn id(&self) -> DeviceId {
        match self {
            DeviceSim::Camera(c) => c.id(),
            DeviceSim::Mote(m) => m.id(),
            DeviceSim::Phone(p) => p.id(),
            DeviceSim::Rfid(r) => r.id(),
        }
    }

    /// The device kind.
    pub fn kind(&self) -> DeviceKind {
        self.id().kind()
    }

    /// The device's fixed location, when it has one.
    pub fn location(&self) -> Option<Location> {
        match self {
            DeviceSim::Camera(c) => Some(c.mount()),
            DeviceSim::Mote(m) => Some(m.location()),
            DeviceSim::Phone(p) => p.location(),
            DeviceSim::Rfid(r) => Some(r.location()),
        }
    }

    /// Probes the device (§4), sampling its reliability model.
    pub fn probe(&mut self, now: SimTime, rng: &mut SimRng) -> Option<PhysicalStatus> {
        match self {
            DeviceSim::Camera(c) => c.probe(now, rng),
            DeviceSim::Mote(m) => m.probe(now, rng),
            DeviceSim::Phone(p) => p.probe(now, rng),
            DeviceSim::Rfid(r) => r.probe(now, rng),
        }
    }

    /// The camera, if this is one.
    pub fn as_camera(&self) -> Option<&Camera> {
        match self {
            DeviceSim::Camera(c) => Some(c),
            _ => None,
        }
    }

    /// Mutable camera access, if this is one.
    pub fn as_camera_mut(&mut self) -> Option<&mut Camera> {
        match self {
            DeviceSim::Camera(c) => Some(c),
            _ => None,
        }
    }

    /// The mote, if this is one.
    pub fn as_mote(&self) -> Option<&Mote> {
        match self {
            DeviceSim::Mote(m) => Some(m),
            _ => None,
        }
    }

    /// Mutable mote access, if this is one.
    pub fn as_mote_mut(&mut self) -> Option<&mut Mote> {
        match self {
            DeviceSim::Mote(m) => Some(m),
            _ => None,
        }
    }

    /// The phone, if this is one.
    pub fn as_phone(&self) -> Option<&Phone> {
        match self {
            DeviceSim::Phone(p) => Some(p),
            _ => None,
        }
    }

    /// Mutable phone access, if this is one.
    pub fn as_phone_mut(&mut self) -> Option<&mut Phone> {
        match self {
            DeviceSim::Phone(p) => Some(p),
            _ => None,
        }
    }

    /// The RFID reader, if this is one.
    pub fn as_rfid(&self) -> Option<&RfidReader> {
        match self {
            DeviceSim::Rfid(r) => Some(r),
            _ => None,
        }
    }

    /// Mutable RFID reader access, if this is one.
    pub fn as_rfid_mut(&mut self) -> Option<&mut RfidReader> {
        match self {
            DeviceSim::Rfid(r) => Some(r),
            _ => None,
        }
    }
}

impl From<Camera> for DeviceSim {
    fn from(c: Camera) -> Self {
        DeviceSim::Camera(c)
    }
}
impl From<Mote> for DeviceSim {
    fn from(m: Mote) -> Self {
        DeviceSim::Mote(m)
    }
}
impl From<Phone> for DeviceSim {
    fn from(p: Phone) -> Self {
        DeviceSim::Phone(p)
    }
}
impl From<RfidReader> for DeviceSim {
    fn from(r: RfidReader) -> Self {
        DeviceSim::Rfid(r)
    }
}

/// A registered device plus its registry-side metadata.
#[derive(Debug, Clone)]
pub struct DeviceEntry {
    /// The simulated device.
    pub sim: DeviceSim,
    /// When the device joined the network.
    pub joined_at: SimTime,
    /// Administrative online flag — devices "may join, move around, or leave
    /// the network dynamically" (§4); an offline device never answers.
    pub online: bool,
}

/// The registry at the heart of the communication layer.
///
/// Holds every registered device, the per-kind profiles (catalog schema,
/// atomic-operation cost table, probe TIMEOUT, link model) and supports
/// dynamic join/leave.
#[derive(Debug, Clone)]
pub struct DeviceRegistry {
    devices: BTreeMap<DeviceId, DeviceEntry>,
    schemas: BTreeMap<DeviceKind, Schema>,
    cost_tables: BTreeMap<DeviceKind, OpCostTable>,
    probe_timeouts: BTreeMap<DeviceKind, SimDuration>,
    links: BTreeMap<DeviceKind, LinkModel>,
    retry_policies: BTreeMap<DeviceKind, RetryPolicy>,
}

impl DeviceRegistry {
    /// An empty registry with default per-kind profiles.
    pub fn new() -> Self {
        let mut schemas = BTreeMap::new();
        let mut cost_tables = BTreeMap::new();
        let mut probe_timeouts = BTreeMap::new();
        let mut links = BTreeMap::new();
        let mut retry_policies = BTreeMap::new();
        for kind in DeviceKind::ALL {
            // Profiles are generated/parsed through the XML catalog format,
            // exactly as an administrator would register them (§3.1).
            let catalog = aorta_device::catalog_for(kind);
            let schema =
                aorta_device::parse_catalog(&catalog).expect("built-in catalogs always parse");
            schemas.insert(kind, schema);
            cost_tables.insert(kind, OpCostTable::defaults_for(kind));
            probe_timeouts.insert(kind, default_probe_timeout(kind));
            links.insert(kind, default_link(kind));
            retry_policies.insert(kind, RetryPolicy::none());
        }
        DeviceRegistry {
            devices: BTreeMap::new(),
            schemas,
            cost_tables,
            probe_timeouts,
            links,
            retry_policies,
        }
    }

    /// A registry populated from a [`PervasiveLab`] fixture.
    pub fn from_lab(lab: PervasiveLab) -> Self {
        let mut reg = DeviceRegistry::new();
        for c in lab.cameras {
            reg.register(c.into(), SimTime::ZERO);
        }
        for m in lab.motes {
            reg.register(m.into(), SimTime::ZERO);
        }
        for p in lab.phones {
            reg.register(p.into(), SimTime::ZERO);
        }
        reg
    }

    /// Registers (joins) a device.
    ///
    /// Re-registering an existing ID replaces the previous entry, matching
    /// "profiles … are updated dynamically by the system administrator".
    pub fn register(&mut self, sim: DeviceSim, now: SimTime) -> DeviceId {
        let id = sim.id();
        self.devices.insert(
            id,
            DeviceEntry {
                sim,
                joined_at: now,
                online: true,
            },
        );
        id
    }

    /// Unregisters (leaves) a device; returns it if present.
    pub fn unregister(&mut self, id: DeviceId) -> Option<DeviceSim> {
        self.devices.remove(&id).map(|e| e.sim)
    }

    /// Removes a device *with* its registration state (join time, online
    /// flag) intact — the first half of an ownership transfer between
    /// registries. Pair with [`DeviceRegistry::adopt`] on the receiving
    /// side; plain [`DeviceRegistry::unregister`] would forget the state.
    pub fn extract(&mut self, id: DeviceId) -> Option<DeviceEntry> {
        self.devices.remove(&id)
    }

    /// Installs an entry extracted from another registry, preserving its
    /// join time and online state — the second half of an ownership
    /// transfer. Replaces any existing entry with the same ID.
    pub fn adopt(&mut self, entry: DeviceEntry) -> DeviceId {
        let id = entry.sim.id();
        self.devices.insert(id, entry);
        id
    }

    /// Marks a device online/offline without removing its registration.
    ///
    /// Returns `false` when the device is unknown.
    pub fn set_online(&mut self, id: DeviceId, online: bool) -> bool {
        match self.devices.get_mut(&id) {
            Some(e) => {
                e.online = online;
                true
            }
            None => false,
        }
    }

    /// The entry for a device.
    pub fn get(&self, id: DeviceId) -> Option<&DeviceEntry> {
        self.devices.get(&id)
    }

    /// Mutable entry access.
    pub fn get_mut(&mut self, id: DeviceId) -> Option<&mut DeviceEntry> {
        self.devices.get_mut(&id)
    }

    /// All devices of a kind, in ID order.
    pub fn of_kind(&self, kind: DeviceKind) -> impl Iterator<Item = &DeviceEntry> {
        self.devices.values().filter(move |e| e.sim.kind() == kind)
    }

    /// IDs of all devices of a kind, in order.
    pub fn ids_of_kind(&self, kind: DeviceKind) -> Vec<DeviceId> {
        self.of_kind(kind).map(|e| e.sim.id()).collect()
    }

    /// Total registered devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// True when no devices are registered.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// The virtual-table schema for a kind (from its catalog profile).
    pub fn schema(&self, kind: DeviceKind) -> &Schema {
        &self.schemas[&kind]
    }

    /// The atomic-operation cost table for a kind.
    pub fn cost_table(&self, kind: DeviceKind) -> &OpCostTable {
        &self.cost_tables[&kind]
    }

    /// Replaces the atomic-operation cost table for a kind (the
    /// administrator's profile update).
    pub fn set_cost_table(&mut self, kind: DeviceKind, table: OpCostTable) {
        self.cost_tables.insert(kind, table);
    }

    /// The probe TIMEOUT for a kind (§4: "a system-provided TIMEOUT value is
    /// set for each type of devices").
    pub fn probe_timeout(&self, kind: DeviceKind) -> SimDuration {
        self.probe_timeouts[&kind]
    }

    /// Overrides the probe TIMEOUT for a kind.
    pub fn set_probe_timeout(&mut self, kind: DeviceKind, timeout: SimDuration) {
        self.probe_timeouts.insert(kind, timeout);
    }

    /// The link model used to reach devices of a kind.
    pub fn link(&self, kind: DeviceKind) -> &LinkModel {
        &self.links[&kind]
    }

    /// Overrides the link model for a kind.
    pub fn set_link(&mut self, kind: DeviceKind, link: LinkModel) {
        self.links.insert(kind, link);
    }

    /// The probe retry policy for a kind (default: single attempt).
    pub fn retry_policy(&self, kind: DeviceKind) -> RetryPolicy {
        self.retry_policies[&kind]
    }

    /// Overrides the probe retry policy for a kind.
    pub fn set_retry_policy(&mut self, kind: DeviceKind, policy: RetryPolicy) {
        self.retry_policies.insert(kind, policy);
    }

    /// Convenience: mutable access to a camera.
    pub fn camera_mut(&mut self, id: DeviceId) -> Option<&mut Camera> {
        self.get_mut(id).and_then(|e| e.sim.as_camera_mut())
    }

    /// Convenience: shared access to a camera.
    pub fn camera(&self, id: DeviceId) -> Option<&Camera> {
        self.get(id).and_then(|e| e.sim.as_camera())
    }
}

impl Default for DeviceRegistry {
    fn default() -> Self {
        DeviceRegistry::new()
    }
}

fn default_probe_timeout(kind: DeviceKind) -> SimDuration {
    match kind {
        DeviceKind::Camera => SimDuration::from_millis(500),
        DeviceKind::Sensor => SimDuration::from_millis(300),
        DeviceKind::Phone => SimDuration::from_secs(5),
        DeviceKind::Rfid => SimDuration::from_millis(400),
    }
}

fn default_link(kind: DeviceKind) -> LinkModel {
    match kind {
        // Ethernet to the cameras: fast, effectively lossless at this layer
        // (connect failures are modelled inside the camera).
        DeviceKind::Camera => LinkModel::new(
            SimDuration::from_millis(2),
            SimDuration::from_millis(1),
            0.0,
        )
        .with_bytes_per_sec(10_000_000),
        // MICA2 radio: slow, lossy per hop (per-hop loss also modelled in
        // the mote; link-level loss covers the base-station leg).
        DeviceKind::Sensor => LinkModel::new(
            SimDuration::from_millis(15),
            SimDuration::from_millis(10),
            0.02,
        )
        .with_bytes_per_sec(38_400 / 8),
        // Cell network: high latency, some loss.
        DeviceKind::Phone => LinkModel::new(
            SimDuration::from_millis(300),
            SimDuration::from_millis(200),
            0.01,
        )
        .with_bytes_per_sec(100_000),
        // Wired portal reader: serial-line latencies, no loss at this layer.
        DeviceKind::Rfid => LinkModel::new(
            SimDuration::from_millis(5),
            SimDuration::from_millis(2),
            0.0,
        )
        .with_bytes_per_sec(1_000_000),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_lab_registers_everything() {
        let reg = DeviceRegistry::from_lab(PervasiveLab::standard());
        assert_eq!(reg.len(), 13);
        assert_eq!(reg.ids_of_kind(DeviceKind::Camera).len(), 2);
        assert_eq!(reg.ids_of_kind(DeviceKind::Sensor).len(), 10);
        assert_eq!(reg.ids_of_kind(DeviceKind::Phone).len(), 1);
    }

    #[test]
    fn join_and_leave_dynamics() {
        let mut reg = DeviceRegistry::new();
        assert!(reg.is_empty());
        let id = reg.register(
            Camera::ceiling_mounted(7, Location::ORIGIN).into(),
            SimTime::ZERO,
        );
        assert_eq!(id, DeviceId::camera(7));
        assert_eq!(reg.len(), 1);
        assert!(reg.get(id).unwrap().online);
        assert!(reg.set_online(id, false));
        assert!(!reg.get(id).unwrap().online);
        assert!(reg.unregister(id).is_some());
        assert!(reg.get(id).is_none());
        assert!(!reg.set_online(id, false));
        assert!(reg.unregister(id).is_none());
    }

    #[test]
    fn profiles_available_per_kind() {
        let reg = DeviceRegistry::new();
        for kind in DeviceKind::ALL {
            assert_eq!(reg.schema(kind).table(), kind.table_name());
            assert!(!reg.cost_table(kind).is_empty());
            assert!(reg.probe_timeout(kind) > SimDuration::ZERO);
        }
        // Phones tolerate much longer probe delays than motes.
        assert!(reg.probe_timeout(DeviceKind::Phone) > reg.probe_timeout(DeviceKind::Sensor));
    }

    #[test]
    fn reregistering_replaces() {
        let mut reg = DeviceRegistry::new();
        let cam = Camera::ceiling_mounted(0, Location::new(1.0, 1.0, 3.0));
        reg.register(cam.into(), SimTime::ZERO);
        let cam2 = Camera::ceiling_mounted(0, Location::new(5.0, 5.0, 3.0));
        reg.register(cam2.into(), SimTime::from_micros(10));
        assert_eq!(reg.len(), 1);
        let mount = reg.camera(DeviceId::camera(0)).unwrap().mount();
        assert_eq!(mount, Location::new(5.0, 5.0, 3.0));
    }

    #[test]
    fn typed_accessors() {
        let mut reg = DeviceRegistry::from_lab(PervasiveLab::standard());
        let cam_id = DeviceId::camera(0);
        assert!(reg.camera(cam_id).is_some());
        assert!(reg.camera_mut(cam_id).is_some());
        let mote_id = DeviceId::sensor(0);
        assert!(reg.get(mote_id).unwrap().sim.as_mote().is_some());
        assert!(reg.get(mote_id).unwrap().sim.as_camera().is_none());
        let phone_id = DeviceId::phone(0);
        assert!(reg.get_mut(phone_id).unwrap().sim.as_phone_mut().is_some());
    }

    #[test]
    fn device_sim_metadata() {
        let sim: DeviceSim = Mote::new(3, Location::new(1.0, 2.0, 1.0), 2).into();
        assert_eq!(sim.kind(), DeviceKind::Sensor);
        assert_eq!(sim.location(), Some(Location::new(1.0, 2.0, 1.0)));
        let phone: DeviceSim = Phone::new(0, "x").into();
        assert_eq!(phone.location(), None);
    }

    #[test]
    fn extract_adopt_preserves_registration_state() {
        let mut a = DeviceRegistry::from_lab(PervasiveLab::standard());
        let mut b = DeviceRegistry::new();
        let id = DeviceId::camera(1);
        a.set_online(id, false);
        let entry = a.extract(id).expect("camera-1 registered");
        assert!(a.get(id).is_none(), "extract must remove the device");
        let joined_at = entry.joined_at;
        assert_eq!(b.adopt(entry), id);
        let adopted = b.get(id).expect("adopt must install the device");
        assert_eq!(adopted.joined_at, joined_at);
        assert!(!adopted.online, "online state must survive the transfer");
    }
}
