//! Device-side request handlers — the per-type "communication modules".
//!
//! Each function services one wire [`Message`] against a simulated device
//! and produces the reply the channel carries back. The scan operator, the
//! prober and the engine's action operators all go through these, so every
//! interaction crosses the same (lossy, latency-charged) path a real
//! deployment would.

use aorta_data::Value;
use aorta_device::{Mote, Phone, PhysicalStatus};
use aorta_sim::{SimRng, SimTime};

use crate::Message;

/// Services a `ReadAttrs` request on a mote, sampling its sensors.
///
/// Unknown attribute names yield `Value::Null` (the engine surfaces them as
/// SQL NULLs rather than failing the whole scan).
pub fn mote_read_attrs(mote: &Mote, names: &[String], now: SimTime, rng: &mut SimRng) -> Message {
    let reading = mote.sample(now, rng);
    let values = names
        .iter()
        .map(|name| match name.as_str() {
            "accel_x" => Value::Int(reading.accel_x),
            "accel_y" => Value::Int(reading.accel_y),
            "temp" => Value::Float(reading.temp),
            "light" => Value::Int(reading.light),
            "battery" => Value::Float(reading.battery_volts),
            _ => Value::Null,
        })
        .collect();
    Message::AttrReply { values }
}

/// Services a `Probe` on any device status, flattening the status into the
/// wire format's numeric fields.
pub fn probe_reply(status: &PhysicalStatus) -> Message {
    let fields = match status {
        PhysicalStatus::CameraHead(p) => vec![p.pan, p.tilt, p.zoom],
        PhysicalStatus::SensorLink {
            depth,
            battery_volts,
        } => vec![f64::from(*depth), *battery_volts],
        PhysicalStatus::PhoneCoverage { in_coverage } => {
            vec![if *in_coverage { 1.0 } else { 0.0 }]
        }
        PhysicalStatus::RfidField { tags_in_range } => vec![f64::from(*tags_in_range)],
    };
    Message::ProbeReply { fields }
}

/// Reconstructs a camera status from probe-reply fields.
///
/// Returns `None` when the field count does not match.
pub fn camera_status_from_fields(fields: &[f64]) -> Option<PhysicalStatus> {
    match fields {
        [pan, tilt, zoom] => Some(PhysicalStatus::CameraHead(aorta_device::PtzPosition::new(
            *pan, *tilt, *zoom,
        ))),
        _ => None,
    }
}

/// Services a `SendMessage` on a phone.
///
/// Returns `MessageAck` on delivery, or `None` when the phone is out of
/// coverage (the caller times out).
pub fn phone_deliver(
    phone: &mut Phone,
    mms: bool,
    body: &str,
    now: SimTime,
    rng: &mut SimRng,
) -> Option<Message> {
    let kind = if mms {
        aorta_device::MessageKind::Mms
    } else {
        aorta_device::MessageKind::Sms
    };
    phone
        .deliver(now, kind, body, rng)
        .map(|_| Message::MessageAck)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aorta_data::Location;
    use aorta_device::{PtzPosition, SpikeModel};
    use aorta_sim::SimDuration;

    #[test]
    fn mote_answers_known_attrs_and_nulls_unknown() {
        let mote = Mote::new(0, Location::ORIGIN, 1);
        let mut rng = SimRng::seed(1);
        let names = vec!["accel_x".into(), "nope".into(), "battery".into()];
        let reply = mote_read_attrs(&mote, &names, SimTime::ZERO, &mut rng);
        match reply {
            Message::AttrReply { values } => {
                assert!(matches!(values[0], Value::Int(_)));
                assert_eq!(values[1], Value::Null);
                assert!(matches!(values[2], Value::Float(_)));
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }

    #[test]
    fn spiking_mote_reports_high_accel_over_the_wire() {
        let mote = Mote::new(0, Location::ORIGIN, 1).with_spikes(SpikeModel::Periodic {
            period: SimDuration::from_mins(1),
            offset: SimDuration::ZERO,
            width: SimDuration::from_secs(2),
        });
        let mut rng = SimRng::seed(2);
        let reply = mote_read_attrs(&mote, &["accel_x".into()], SimTime::ZERO, &mut rng);
        match reply {
            Message::AttrReply { values } => {
                assert!(values[0].as_i64().unwrap() > 500);
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }

    #[test]
    fn probe_reply_field_shapes() {
        let cam = PhysicalStatus::CameraHead(PtzPosition::new(10.0, -20.0, 0.5));
        match probe_reply(&cam) {
            Message::ProbeReply { fields } => {
                assert_eq!(fields, vec![10.0, -20.0, 0.5]);
                let back = camera_status_from_fields(&fields).unwrap();
                assert_eq!(
                    back.as_camera_head(),
                    Some(PtzPosition::new(10.0, -20.0, 0.5))
                );
            }
            other => panic!("unexpected reply {other:?}"),
        }
        let sensor = PhysicalStatus::SensorLink {
            depth: 3,
            battery_volts: 2.8,
        };
        match probe_reply(&sensor) {
            Message::ProbeReply { fields } => assert_eq!(fields, vec![3.0, 2.8]),
            other => panic!("unexpected reply {other:?}"),
        }
        assert!(camera_status_from_fields(&[1.0]).is_none());
    }

    #[test]
    fn phone_delivery_acks_or_times_out() {
        let mut phone = Phone::new(0, "x");
        let mut rng = SimRng::seed(3);
        let ack = phone_deliver(&mut phone, true, "photo.jpg", SimTime::ZERO, &mut rng);
        assert_eq!(ack, Some(Message::MessageAck));
        assert_eq!(phone.inbox().len(), 1);

        let mut off = Phone::new(1, "y").with_coverage(aorta_device::CoverageModel {
            p_drop: 1.0,
            p_regain: 0.0,
            epoch: SimDuration::from_secs(1),
        });
        let res = phone_deliver(
            &mut off,
            false,
            "hi",
            SimTime::ZERO + SimDuration::from_secs(5),
            &mut rng,
        );
        assert_eq!(res, None);
    }
}
