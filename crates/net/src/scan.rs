//! Scan operators over virtual device tables (§3.2).
//!
//! "The communication layer abstracts each type of devices into a virtual
//! relational table … Each tuple of a virtual device table is from a
//! specific device of the corresponding type; it is generated on-the-fly
//! when requested by the query engine." Sensory attributes are acquired
//! over the wire (lossy — failed acquisitions surface as NULLs after
//! retries); non-sensory attributes come from registry metadata.

use aorta_data::{AttrKind, Tuple, Value};
use aorta_device::{DeviceId, DeviceKind};
use aorta_sim::{SimRng, SimTime};

use crate::channel::{Channel, Exchange};
use crate::endpoint;
use crate::{DeviceRegistry, DeviceSim, Message};

/// How many times a sensory acquisition is retried before yielding NULL.
const ACQUIRE_RETRIES: u32 = 2;

/// A scan operator for one device kind's virtual table.
///
/// # Example
///
/// ```
/// use aorta_net::{DeviceRegistry, ScanOperator};
/// use aorta_device::{DeviceKind, PervasiveLab};
/// use aorta_sim::{SimRng, SimTime};
///
/// let mut registry = DeviceRegistry::from_lab(PervasiveLab::standard());
/// let scan = ScanOperator::new(DeviceKind::Camera);
/// let mut rng = SimRng::seed(1);
/// let tuples = scan.run(&mut registry, SimTime::ZERO, &mut rng);
/// assert_eq!(tuples.len(), 2);
/// // camera(id, ip, loc, pan, tilt, zoom)
/// assert_eq!(tuples[0].len(), 6);
/// ```
#[derive(Debug, Clone)]
pub struct ScanOperator {
    kind: DeviceKind,
}

impl ScanOperator {
    /// A scan over the given kind's table.
    pub fn new(kind: DeviceKind) -> Self {
        ScanOperator { kind }
    }

    /// The device kind scanned.
    pub fn kind(&self) -> DeviceKind {
        self.kind
    }

    /// Produces one tuple per online device of the kind, in ID order.
    pub fn run(&self, registry: &mut DeviceRegistry, now: SimTime, rng: &mut SimRng) -> Vec<Tuple> {
        let ids: Vec<DeviceId> = registry.ids_of_kind(self.kind);
        ids.into_iter()
            .filter_map(|id| self.scan_device(registry, id, now, rng))
            .collect()
    }

    /// The wire cost, in bytes, of shipping one scanned tuple's sensory
    /// payload from its device: the [`Message::AttrReply`] the scan
    /// exchange carries. Non-sensory attributes come from registry
    /// metadata and never travel, so they are excluded. Used by the
    /// engine's pushdown accounting to compare shipped payloads against
    /// the one-byte [`Message::Suppressed`] marker.
    pub fn reply_wire_len(schema: &aorta_data::Schema, tuple: &Tuple) -> usize {
        let values: Vec<Value> = schema
            .iter()
            .enumerate()
            .filter(|(_, a)| a.kind() == AttrKind::Sensory)
            .map(|(i, _)| tuple.get(i).cloned().unwrap_or(Value::Null))
            .collect();
        Message::AttrReply { values }.wire_len()
    }

    /// The wire cost of a suppressed sample: the bare marker message.
    pub fn suppressed_wire_len() -> usize {
        Message::Suppressed.wire_len()
    }

    /// Produces the tuple for a single device (`None` when offline/unknown).
    pub fn scan_device(
        &self,
        registry: &mut DeviceRegistry,
        id: DeviceId,
        now: SimTime,
        rng: &mut SimRng,
    ) -> Option<Tuple> {
        let schema = registry.schema(self.kind).clone();
        let channel = Channel::new(registry.link(self.kind).clone());
        let entry = registry.get_mut(id)?;
        if !entry.online {
            return None;
        }

        // Gather the sensory attribute names to acquire over the wire.
        let sensory_names: Vec<String> = schema.sensory().map(|a| a.name().to_string()).collect();
        let sensory_values = acquire_sensory(&channel, &mut entry.sim, &sensory_names, now, rng);

        let mut values = Vec::with_capacity(schema.len());
        let mut sensory_iter = sensory_values.into_iter();
        for attr in schema.iter() {
            let v = match attr.kind() {
                AttrKind::Sensory => sensory_iter.next().unwrap_or(Value::Null),
                AttrKind::NonSensory => non_sensory_value(&entry.sim, attr.name()),
            };
            values.push(v);
        }
        let tuple = Tuple::new(values);
        debug_assert_eq!(
            schema.check(&tuple),
            Ok(()),
            "scan produced ill-typed tuple"
        );
        Some(tuple)
    }
}

/// Acquires sensory attributes over the wire with bounded retries; a device
/// whose radio loses every attempt yields all-NULL sensory values.
fn acquire_sensory(
    channel: &Channel,
    sim: &mut DeviceSim,
    names: &[String],
    now: SimTime,
    rng: &mut SimRng,
) -> Vec<Value> {
    if names.is_empty() {
        return Vec::new();
    }
    let request = Message::ReadAttrs {
        names: names.to_vec(),
    };
    for _attempt in 0..=ACQUIRE_RETRIES {
        let reply = match sim {
            DeviceSim::Mote(m) => {
                // Both the request and the reply must survive the multi-hop
                // radio path (the base-station link is modelled separately
                // by the channel).
                let p_round_trip = m.delivery_prob() * m.delivery_prob();
                if rng.chance(1.0 - p_round_trip) {
                    continue;
                }
                endpoint::mote_read_attrs(m, names, now, rng)
            }
            DeviceSim::Camera(c) => {
                let pos = c.position_at(now);
                Message::AttrReply {
                    values: names
                        .iter()
                        .map(|n| match n.as_str() {
                            "pan" => Value::Float(pos.pan),
                            "tilt" => Value::Float(pos.tilt),
                            "zoom" => Value::Float(pos.zoom),
                            _ => Value::Null,
                        })
                        .collect(),
                }
            }
            DeviceSim::Phone(p) => {
                let reachable = p.is_reachable(now, rng);
                Message::AttrReply {
                    values: names
                        .iter()
                        .map(|n| match n.as_str() {
                            "in_coverage" => Value::Bool(reachable),
                            _ => Value::Null,
                        })
                        .collect(),
                }
            }
            DeviceSim::Rfid(r) => {
                let count = r.tag_count(now, rng);
                let last = r.last_tag(now);
                Message::AttrReply {
                    values: names
                        .iter()
                        .map(|n| match n.as_str() {
                            "tag_count" => Value::Int(count),
                            "last_tag" => last.clone().map(Value::Str).unwrap_or(Value::Null),
                            _ => Value::Null,
                        })
                        .collect(),
                }
            }
        };
        match channel.exchange(&request, rng, || reply) {
            Exchange::Reply { message, .. } => {
                if let Message::AttrReply { values } = message {
                    return values;
                }
            }
            Exchange::Lost => continue,
        }
    }
    vec![Value::Null; names.len()]
}

fn non_sensory_value(sim: &DeviceSim, attr: &str) -> Value {
    match (sim, attr) {
        (_, "id") => Value::Int(i64::from(sim.id().index())),
        (_, "loc") => sim.location().map(Value::Location).unwrap_or(Value::Null),
        (DeviceSim::Mote(m), "depth") => Value::Int(i64::from(m.depth())),
        (DeviceSim::Camera(c), "ip") => Value::Str(format!("192.168.0.{}", 100 + c.id().index())),
        (DeviceSim::Phone(p), "number") => Value::Str(p.number().to_string()),
        _ => Value::Null,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aorta_data::Location;
    use aorta_device::{Mote, PervasiveLab, SpikeModel};
    use aorta_sim::{LinkModel, SimDuration};

    fn registry() -> DeviceRegistry {
        let mut reg = DeviceRegistry::from_lab(PervasiveLab::standard());
        reg.set_link(DeviceKind::Sensor, LinkModel::ideal());
        reg.set_link(DeviceKind::Camera, LinkModel::ideal());
        reg.set_link(DeviceKind::Phone, LinkModel::ideal());
        reg
    }

    #[test]
    fn sensor_scan_produces_typed_tuples() {
        let mut reg = registry();
        let scan = ScanOperator::new(DeviceKind::Sensor);
        let mut rng = SimRng::seed(1);
        let tuples = scan.run(&mut reg, SimTime::ZERO, &mut rng);
        assert_eq!(tuples.len(), 10);
        let schema = reg.schema(DeviceKind::Sensor).clone();
        for t in &tuples {
            assert_eq!(schema.check(t), Ok(()));
        }
        // IDs come out in order.
        let ids: Vec<i64> = tuples
            .iter()
            .map(|t| t.get(0).unwrap().as_i64().unwrap())
            .collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn spiking_mote_visible_through_scan() {
        let mut reg = registry();
        let loc = Location::new(1.0, 1.0, 1.0);
        reg.register(
            Mote::new(20, loc, 1)
                .with_per_hop_loss(0.0)
                .with_spikes(SpikeModel::Periodic {
                    period: SimDuration::from_mins(1),
                    offset: SimDuration::ZERO,
                    width: SimDuration::from_secs(2),
                })
                .into(),
            SimTime::ZERO,
        );
        let scan = ScanOperator::new(DeviceKind::Sensor);
        let mut rng = SimRng::seed(2);
        let schema = reg.schema(DeviceKind::Sensor).clone();
        let accel_idx = schema.index_of("accel_x").unwrap();
        let t = scan
            .scan_device(&mut reg, DeviceId::sensor(20), SimTime::ZERO, &mut rng)
            .unwrap();
        assert!(t.get(accel_idx).unwrap().as_i64().unwrap() > 500);
    }

    #[test]
    fn offline_devices_are_skipped() {
        let mut reg = registry();
        reg.set_online(DeviceId::sensor(3), false);
        let scan = ScanOperator::new(DeviceKind::Sensor);
        let mut rng = SimRng::seed(3);
        let tuples = scan.run(&mut reg, SimTime::ZERO, &mut rng);
        assert_eq!(tuples.len(), 9);
    }

    #[test]
    fn camera_scan_exposes_head_position_and_ip() {
        let mut reg = registry();
        let scan = ScanOperator::new(DeviceKind::Camera);
        let mut rng = SimRng::seed(4);
        let tuples = scan.run(&mut reg, SimTime::ZERO, &mut rng);
        let schema = reg.schema(DeviceKind::Camera).clone();
        let ip_idx = schema.index_of("ip").unwrap();
        let pan_idx = schema.index_of("pan").unwrap();
        assert_eq!(
            tuples[0].get(ip_idx).unwrap().as_str(),
            Some("192.168.0.100")
        );
        assert_eq!(tuples[0].get(pan_idx), Some(&Value::Float(0.0)));
    }

    #[test]
    fn phone_scan_reports_coverage() {
        let mut reg = registry();
        let scan = ScanOperator::new(DeviceKind::Phone);
        let mut rng = SimRng::seed(5);
        let tuples = scan.run(&mut reg, SimTime::ZERO, &mut rng);
        let schema = reg.schema(DeviceKind::Phone).clone();
        let cov_idx = schema.index_of("in_coverage").unwrap();
        assert_eq!(tuples[0].get(cov_idx), Some(&Value::Bool(true)));
    }

    #[test]
    fn reply_wire_len_counts_only_sensory_payload() {
        let mut reg = registry();
        let scan = ScanOperator::new(DeviceKind::Sensor);
        let mut rng = SimRng::seed(9);
        let schema = reg.schema(DeviceKind::Sensor).clone();
        let t = scan
            .scan_device(&mut reg, DeviceId::sensor(0), SimTime::ZERO, &mut rng)
            .unwrap();
        let len = ScanOperator::reply_wire_len(&schema, &t);
        // Tag + count + one tagged value per sensory attribute, at least.
        let sensory = schema.sensory().count();
        assert!(len >= 5 + sensory, "{len} bytes for {sensory} attrs");
        // Suppression must always be cheaper than shipping.
        assert!(ScanOperator::suppressed_wire_len() < len);
    }

    #[test]
    fn totally_lossy_link_yields_null_sensory_but_keeps_non_sensory() {
        let mut reg = registry();
        reg.set_link(
            DeviceKind::Sensor,
            LinkModel::new(SimDuration::ZERO, SimDuration::ZERO, 1.0),
        );
        let scan = ScanOperator::new(DeviceKind::Sensor);
        let mut rng = SimRng::seed(6);
        let schema = reg.schema(DeviceKind::Sensor).clone();
        let t = scan
            .scan_device(&mut reg, DeviceId::sensor(0), SimTime::ZERO, &mut rng)
            .unwrap();
        let accel = schema.index_of("accel_x").unwrap();
        let loc = schema.index_of("loc").unwrap();
        assert_eq!(t.get(accel), Some(&Value::Null), "sensory lost");
        assert!(
            matches!(t.get(loc), Some(Value::Location(_))),
            "non-sensory static"
        );
    }
}
