//! Per-device circuit breakers with health scoring.
//!
//! A device that keeps failing probes or actions wastes probe time and drags
//! every dispatch epoch it participates in. Each device gets a three-state
//! breaker in the classic pattern:
//!
//! * **Closed** — healthy; probes and actions flow normally. Consecutive
//!   failures are counted, and at the configured threshold the breaker trips.
//! * **Open** — quarantined; the device is excluded from candidate sets
//!   without paying probe cost, until a seeded-jittered cooldown elapses.
//! * **Half-open** — probation; exactly one probe is admitted. Success
//!   closes the breaker, failure re-opens it with a fresh cooldown.
//!
//! Every transition is reported to the caller so it can be recorded in the
//! deterministic trace, and the jitter draws from the caller's [`SimRng`],
//! keeping identical seeds byte-identical. Alongside the state machine the
//! bank keeps a per-device **health score** — an exponentially weighted
//! success ratio in `[0, 1]` — for observability and tie-breaking.

use std::collections::BTreeMap;

use aorta_device::DeviceId;
use aorta_obs::SharedMetrics;
use aorta_sim::{SimDuration, SimRng, SimTime};

/// EWMA weight of the most recent probe/action outcome in the health score.
const HEALTH_ALPHA: f64 = 0.25;

/// Breaker tunables.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip a Closed breaker to Open.
    pub failure_threshold: u32,
    /// Base quarantine before a tripped breaker grants a probation probe.
    pub cooldown: SimDuration,
    /// Upper bound of the uniformly drawn jitter added to each cooldown, so
    /// a fleet of breakers tripped by one fault burst does not re-probe in
    /// lockstep. Drawn from the engine's seeded RNG — deterministic per seed.
    pub probation_jitter: SimDuration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown: SimDuration::from_secs(10),
            probation_jitter: SimDuration::from_secs(1),
        }
    }
}

/// The classic three breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow, failures are counted.
    Closed,
    /// Quarantined: excluded from candidate sets, no probe cost paid.
    Open,
    /// Probation: one probe admitted; its outcome decides the next state.
    HalfOpen,
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BreakerState::Closed => write!(f, "closed"),
            BreakerState::Open => write!(f, "open"),
            BreakerState::HalfOpen => write!(f, "half-open"),
        }
    }
}

/// What the bank decided about admitting one device into a dispatch epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerDecision {
    /// Breaker closed (or device unknown): admit normally.
    Admit,
    /// Cooldown elapsed: the breaker just moved Open → Half-open and admits
    /// this one probation probe.
    Probation,
    /// Breaker open: exclude the device without probing it.
    Reject,
}

#[derive(Debug, Clone)]
struct DeviceBreaker {
    state: BreakerState,
    consecutive_failures: u32,
    open_until: SimTime,
    health: f64,
}

impl Default for DeviceBreaker {
    fn default() -> Self {
        DeviceBreaker {
            state: BreakerState::Closed,
            consecutive_failures: 0,
            open_until: SimTime::ZERO,
            health: 1.0,
        }
    }
}

/// All per-device breakers of one engine, plus transition counters.
#[derive(Debug, Clone, Default)]
pub struct BreakerBank {
    config: BreakerConfig,
    breakers: BTreeMap<DeviceId, DeviceBreaker>,
    trips: u64,
    closes: u64,
    metrics: Option<SharedMetrics>,
}

impl BreakerBank {
    /// An empty bank with the given tunables.
    pub fn new(config: BreakerConfig) -> Self {
        BreakerBank {
            config,
            ..BreakerBank::default()
        }
    }

    /// Attaches a metrics handle; every subsequent state transition
    /// (trip, close, probation grant, reject) is recorded as a counter
    /// labeled by device. Write-only: decisions are unaffected.
    pub fn set_metrics(&mut self, metrics: SharedMetrics) {
        self.metrics = Some(metrics);
    }

    /// Admission decision for `device` at `now`. An Open breaker whose
    /// cooldown has elapsed transitions to Half-open here and admits one
    /// probation probe.
    pub fn decide(&mut self, device: DeviceId, now: SimTime) -> BreakerDecision {
        let b = self.breakers.entry(device).or_default();
        let decision = match b.state {
            BreakerState::Closed | BreakerState::HalfOpen => BreakerDecision::Admit,
            BreakerState::Open if now >= b.open_until => {
                b.state = BreakerState::HalfOpen;
                BreakerDecision::Probation
            }
            BreakerState::Open => BreakerDecision::Reject,
        };
        if let Some(m) = &self.metrics {
            match decision {
                BreakerDecision::Probation => {
                    m.incr(
                        "aorta_breaker_probations",
                        &[("device", &device.to_string())],
                        1,
                    );
                }
                BreakerDecision::Reject => {
                    m.incr(
                        "aorta_breaker_rejects",
                        &[("device", &device.to_string())],
                        1,
                    );
                }
                BreakerDecision::Admit => {}
            }
        }
        decision
    }

    /// Records a successful probe or action. Returns `true` when this
    /// success closed a Half-open breaker (worth tracing).
    pub fn record_success(&mut self, device: DeviceId) -> bool {
        let b = self.breakers.entry(device).or_default();
        b.consecutive_failures = 0;
        b.health = b.health * (1.0 - HEALTH_ALPHA) + HEALTH_ALPHA;
        if b.state == BreakerState::HalfOpen {
            b.state = BreakerState::Closed;
            self.closes += 1;
            if let Some(m) = &self.metrics {
                m.incr(
                    "aorta_breaker_closes",
                    &[("device", &device.to_string())],
                    1,
                );
            }
            true
        } else {
            false
        }
    }

    /// Records a failed probe or action. Returns `true` when the failure
    /// tripped the breaker Open (from Closed at the threshold, or
    /// immediately from Half-open probation).
    pub fn record_failure(&mut self, device: DeviceId, now: SimTime, rng: &mut SimRng) -> bool {
        let jitter = self.config.probation_jitter.as_micros();
        let b = self.breakers.entry(device).or_default();
        b.consecutive_failures += 1;
        b.health *= 1.0 - HEALTH_ALPHA;
        let trip = match b.state {
            BreakerState::Closed => b.consecutive_failures >= self.config.failure_threshold,
            BreakerState::HalfOpen => true,
            BreakerState::Open => false,
        };
        if trip {
            b.state = BreakerState::Open;
            b.open_until =
                now + self.config.cooldown + SimDuration::from_micros(rng.range(0..=jitter));
            self.trips += 1;
            if let Some(m) = &self.metrics {
                m.incr("aorta_breaker_trips", &[("device", &device.to_string())], 1);
            }
        }
        trip
    }

    /// Trips `device` Open immediately — the crash-fault integration: a
    /// crash observed by the fault layer is stronger evidence than any
    /// failure count. No-op if already Open.
    pub fn force_open(&mut self, device: DeviceId, now: SimTime, rng: &mut SimRng) -> bool {
        let jitter = self.config.probation_jitter.as_micros();
        let b = self.breakers.entry(device).or_default();
        if b.state == BreakerState::Open {
            return false;
        }
        b.state = BreakerState::Open;
        b.consecutive_failures = self.config.failure_threshold.max(b.consecutive_failures);
        b.health *= 1.0 - HEALTH_ALPHA;
        b.open_until = now + self.config.cooldown + SimDuration::from_micros(rng.range(0..=jitter));
        self.trips += 1;
        if let Some(m) = &self.metrics {
            m.incr("aorta_breaker_trips", &[("device", &device.to_string())], 1);
        }
        true
    }

    /// Current state of `device`'s breaker (Closed when never touched).
    pub fn state(&self, device: DeviceId) -> BreakerState {
        self.breakers
            .get(&device)
            .map_or(BreakerState::Closed, |b| b.state)
    }

    /// The device's health score in `[0, 1]` (1.0 when never touched):
    /// an exponentially weighted success ratio over recent probes/actions.
    pub fn health(&self, device: DeviceId) -> f64 {
        self.breakers.get(&device).map_or(1.0, |b| b.health)
    }

    /// Consecutive failures currently accumulated against `device`.
    pub fn consecutive_failures(&self, device: DeviceId) -> u32 {
        self.breakers
            .get(&device)
            .map_or(0, |b| b.consecutive_failures)
    }

    /// Transitions into Open over the bank's lifetime.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Half-open → Closed transitions over the bank's lifetime.
    pub fn closes(&self) -> u64 {
        self.closes
    }

    /// Devices currently quarantined (Open with cooldown still running is
    /// indistinguishable here from Open past cooldown; `decide` resolves
    /// that lazily).
    pub fn open_count(&self) -> usize {
        self.breakers
            .values()
            .filter(|b| b.state == BreakerState::Open)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn trips_after_threshold_consecutive_failures() {
        let mut bank = BreakerBank::new(BreakerConfig::default());
        let mut rng = SimRng::seed(1);
        let d = DeviceId::camera(0);
        assert!(!bank.record_failure(d, t(0), &mut rng));
        assert!(!bank.record_failure(d, t(1), &mut rng));
        assert_eq!(bank.state(d), BreakerState::Closed);
        assert!(
            bank.record_failure(d, t(2), &mut rng),
            "third failure trips"
        );
        assert_eq!(bank.state(d), BreakerState::Open);
        assert_eq!(bank.trips(), 1);
        assert_eq!(bank.decide(d, t(3)), BreakerDecision::Reject);
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let mut bank = BreakerBank::new(BreakerConfig::default());
        let mut rng = SimRng::seed(2);
        let d = DeviceId::camera(1);
        bank.record_failure(d, t(0), &mut rng);
        bank.record_failure(d, t(1), &mut rng);
        bank.record_success(d);
        assert_eq!(bank.consecutive_failures(d), 0);
        // Two more failures are again below the threshold.
        bank.record_failure(d, t(2), &mut rng);
        assert!(!bank.record_failure(d, t(3), &mut rng));
        assert_eq!(bank.state(d), BreakerState::Closed);
    }

    #[test]
    fn probation_after_cooldown_and_close_on_success() {
        let config = BreakerConfig {
            failure_threshold: 1,
            cooldown: SimDuration::from_secs(5),
            probation_jitter: SimDuration::ZERO,
        };
        let mut bank = BreakerBank::new(config);
        let mut rng = SimRng::seed(3);
        let d = DeviceId::camera(2);
        assert!(bank.record_failure(d, t(0), &mut rng));
        assert_eq!(bank.decide(d, t(3)), BreakerDecision::Reject);
        assert_eq!(bank.decide(d, t(5)), BreakerDecision::Probation);
        assert_eq!(bank.state(d), BreakerState::HalfOpen);
        assert!(bank.record_success(d), "probation success closes");
        assert_eq!(bank.state(d), BreakerState::Closed);
        assert_eq!(bank.closes(), 1);
    }

    #[test]
    fn probation_failure_reopens_with_fresh_cooldown() {
        let config = BreakerConfig {
            failure_threshold: 1,
            cooldown: SimDuration::from_secs(5),
            probation_jitter: SimDuration::ZERO,
        };
        let mut bank = BreakerBank::new(config);
        let mut rng = SimRng::seed(4);
        let d = DeviceId::camera(3);
        bank.record_failure(d, t(0), &mut rng);
        assert_eq!(bank.decide(d, t(5)), BreakerDecision::Probation);
        assert!(
            bank.record_failure(d, t(5), &mut rng),
            "probation failure re-trips"
        );
        assert_eq!(bank.state(d), BreakerState::Open);
        assert_eq!(bank.decide(d, t(6)), BreakerDecision::Reject);
        assert_eq!(bank.decide(d, t(10)), BreakerDecision::Probation);
    }

    #[test]
    fn force_open_quarantines_immediately() {
        let mut bank = BreakerBank::new(BreakerConfig::default());
        let mut rng = SimRng::seed(5);
        let d = DeviceId::sensor(0);
        assert!(bank.force_open(d, t(0), &mut rng));
        assert_eq!(bank.state(d), BreakerState::Open);
        assert!(!bank.force_open(d, t(1), &mut rng), "already open");
        assert_eq!(bank.open_count(), 1);
    }

    #[test]
    fn health_score_decays_on_failure_and_recovers_on_success() {
        let mut bank = BreakerBank::new(BreakerConfig::default());
        let mut rng = SimRng::seed(6);
        let d = DeviceId::camera(4);
        assert_eq!(bank.health(d), 1.0);
        bank.record_failure(d, t(0), &mut rng);
        let after_fail = bank.health(d);
        assert!(after_fail < 1.0);
        for _ in 0..20 {
            bank.record_success(d);
        }
        assert!(bank.health(d) > 0.99, "health must recover under successes");
    }

    #[test]
    fn jitter_draws_are_seed_deterministic() {
        let run = |seed| {
            let config = BreakerConfig {
                failure_threshold: 1,
                cooldown: SimDuration::from_secs(5),
                probation_jitter: SimDuration::from_secs(2),
            };
            let mut bank = BreakerBank::new(config);
            let mut rng = SimRng::seed(seed);
            let d = DeviceId::camera(0);
            bank.record_failure(d, t(0), &mut rng);
            // Find the first second at which probation is granted.
            (0..20)
                .find(|&s| bank.decide(d, t(s)) == BreakerDecision::Probation)
                .unwrap()
        };
        assert_eq!(run(7), run(7));
    }
}
