//! Bulk transfer over the simulated network, plus epoch fencing.
//!
//! Shard failover ships snapshot images between hosts. A transfer is
//! chunked into fixed-size segments and sent in retransmission rounds over
//! a lossy link: each segment can be dropped, duplicated, or delivered out
//! of order, with every hazard drawn from a caller-supplied [`SimRng`] so
//! two runs with the same seed ship byte-identical histories. The receiver
//! reassembles by sequence number — duplication and reordering are
//! *tolerated by construction* (a duplicate overwrites an identical slot, a
//! stray segment sorts into place), loss is repaired by retransmission, and
//! a transfer that cannot complete within the round budget fails loudly
//! rather than delivering a prefix.
//!
//! Integrity of the *content* is not this layer's job: the shipped bytes
//! carry their own checksums (see `aorta_wal::SnapshotImage`), so a
//! transfer that somehow delivered damage is caught by the decoder. This
//! layer guarantees only all-or-nothing delivery with a deterministic cost.
//!
//! [`EpochFence`] is the companion guard for *everything else* that moves
//! between hosts during failover: each shard incarnation owns an epoch, and
//! a fence admits only messages stamped with the current one. A zombie
//! incarnation (isolated by a partition, already failed over) keeps the old
//! stamp, so its late messages bounce off the fence — counted, never
//! applied.

use aorta_sim::{SimDuration, SimRng};

/// Parameters of one bulk transfer hop.
#[derive(Debug, Clone, PartialEq)]
pub struct ShipConfig {
    /// Segment size in bytes.
    pub chunk_bytes: usize,
    /// Per-segment loss probability.
    pub loss: f64,
    /// Per-segment duplication probability (the duplicate also arrives).
    pub dup_rate: f64,
    /// Per-segment probability of arriving out of order.
    pub reorder_rate: f64,
    /// Fixed per-round link latency.
    pub latency: SimDuration,
    /// Link throughput used to cost each round's bytes.
    pub bytes_per_sec: u64,
    /// Retransmission rounds before the transfer is abandoned.
    pub max_rounds: u32,
}

impl Default for ShipConfig {
    fn default() -> Self {
        ShipConfig {
            chunk_bytes: 4096,
            loss: 0.0,
            dup_rate: 0.0,
            reorder_rate: 0.0,
            latency: SimDuration::from_millis(2),
            bytes_per_sec: 10_000_000,
            max_rounds: 16,
        }
    }
}

/// What a completed transfer cost and survived.
#[derive(Debug, Clone, PartialEq)]
pub struct Shipment {
    /// The reassembled bytes — always exactly the payload that was sent.
    pub bytes: Vec<u8>,
    /// Total simulated transfer time across all rounds.
    pub elapsed: SimDuration,
    /// Retransmission rounds used (1 = clean first pass).
    pub rounds: u32,
    /// Segments put on the wire, including retransmissions and duplicates.
    pub chunks_sent: u64,
    /// Duplicated segments the receiver discarded.
    pub duplicates: u64,
    /// Segments that arrived out of order and were re-sorted.
    pub reordered: u64,
}

/// A transfer that could not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShipError {
    /// Segments still missing when the round budget ran out.
    pub missing: usize,
    /// Rounds attempted.
    pub rounds: u32,
}

impl std::fmt::Display for ShipError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "transfer abandoned after {} round(s) with {} segment(s) missing",
            self.rounds, self.missing
        )
    }
}

impl std::error::Error for ShipError {}

/// Ships `payload` over the simulated link, repairing loss by
/// retransmission and tolerating duplication and reordering.
///
/// Deterministic in (`payload`, `config`, RNG state): the same inputs ship
/// the same history, hazard for hazard.
///
/// # Errors
///
/// [`ShipError`] when segments are still missing after
/// [`max_rounds`](ShipConfig::max_rounds) — all-or-nothing, never a
/// silently short delivery.
pub fn ship_bytes(
    payload: &[u8],
    config: &ShipConfig,
    rng: &mut SimRng,
) -> Result<Shipment, ShipError> {
    let chunk = config.chunk_bytes.max(1);
    let total = payload.len().div_ceil(chunk).max(1);
    let mut received: Vec<Option<&[u8]>> = vec![None; total];
    let mut elapsed = SimDuration::ZERO;
    let mut rounds = 0u32;
    let mut chunks_sent = 0u64;
    let mut duplicates = 0u64;
    let mut reordered = 0u64;

    while rounds < config.max_rounds.max(1) {
        rounds += 1;
        // This round retransmits exactly the segments still missing.
        let wanted: Vec<usize> = (0..total).filter(|&i| received[i].is_none()).collect();
        if wanted.is_empty() {
            break;
        }
        // Arrival schedule: each surviving segment lands in order unless
        // the reorder draw displaces it; duplicates arrive right behind
        // their original.
        let mut arrivals: Vec<usize> = Vec::new();
        let mut round_bytes = 0u64;
        for &i in &wanted {
            chunks_sent += 1;
            let start = i * chunk;
            let end = (start + chunk).min(payload.len());
            round_bytes += (end - start) as u64;
            if rng.chance(config.loss) {
                continue; // dropped on the wire; next round retransmits
            }
            arrivals.push(i);
            if rng.chance(config.dup_rate) {
                chunks_sent += 1;
                round_bytes += (end - start) as u64;
                arrivals.push(i);
            }
        }
        // Displace a subset of arrivals to the back of the round.
        let mut displaced: Vec<usize> = Vec::new();
        arrivals.retain(|&i| {
            if rng.chance(config.reorder_rate) {
                displaced.push(i);
                false
            } else {
                true
            }
        });
        reordered += displaced.len() as u64;
        rng.shuffle(&mut displaced);
        arrivals.extend(displaced);
        for i in arrivals {
            let start = i * chunk;
            let end = (start + chunk).min(payload.len());
            let slot = &mut received[i];
            if slot.is_some() {
                duplicates += 1;
            } else {
                *slot = Some(&payload[start..end]);
            }
        }
        elapsed += config.latency
            + SimDuration::from_micros(round_bytes * 1_000_000 / config.bytes_per_sec.max(1));
        if received.iter().all(|s| s.is_some()) {
            break;
        }
    }

    let missing = received.iter().filter(|s| s.is_none()).count();
    if missing > 0 {
        return Err(ShipError { missing, rounds });
    }
    let mut bytes = Vec::with_capacity(payload.len());
    for slot in received {
        bytes.extend_from_slice(slot.expect("verified complete"));
    }
    debug_assert_eq!(bytes, payload);
    Ok(Shipment {
        bytes,
        elapsed,
        rounds,
        chunks_sent,
        duplicates,
        reordered,
    })
}

/// An epoch gate for one shard's message streams.
///
/// Every shard incarnation runs at a monotonically increasing epoch; the
/// fence admits only messages stamped with the current one. Stale stamps
/// are zombie traffic from a fenced-off incarnation — rejected and counted,
/// never applied, so a request can neither double-execute nor resurrect on
/// the wrong side of a partition.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EpochFence {
    current: u64,
    rejected: u64,
}

impl EpochFence {
    /// A fence open at `epoch`.
    pub fn new(epoch: u64) -> Self {
        EpochFence {
            current: epoch,
            rejected: 0,
        }
    }

    /// The epoch currently admitted.
    pub fn current(&self) -> u64 {
        self.current
    }

    /// Advances to the next epoch (a new incarnation took over) and
    /// returns it. Everything stamped with an older epoch is now zombie
    /// traffic.
    pub fn bump(&mut self) -> u64 {
        self.current += 1;
        self.current
    }

    /// Admits or rejects a message stamped `epoch`. Rejections are
    /// counted; a stamp *ahead* of the fence is a protocol bug, not a
    /// zombie, and panics loudly.
    pub fn admit(&mut self, epoch: u64) -> bool {
        assert!(
            epoch <= self.current,
            "message from the future: stamped epoch {epoch}, fence at {}",
            self.current
        );
        if epoch == self.current {
            true
        } else {
            self.rejected += 1;
            false
        }
    }

    /// Stale-epoch messages rejected so far.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aorta_sim::SimRng;

    fn payload(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 7 + 3) as u8).collect()
    }

    #[test]
    fn clean_link_ships_in_one_round() {
        let data = payload(10_000);
        let mut rng = SimRng::seed(1);
        let s = ship_bytes(&data, &ShipConfig::default(), &mut rng).unwrap();
        assert_eq!(s.bytes, data);
        assert_eq!(s.rounds, 1);
        assert_eq!(s.duplicates, 0);
        assert_eq!(s.reordered, 0);
        assert!(s.elapsed > SimDuration::ZERO);
    }

    #[test]
    fn hazardous_link_still_delivers_exact_bytes() {
        let data = payload(50_000);
        let cfg = ShipConfig {
            chunk_bytes: 1024,
            loss: 0.3,
            dup_rate: 0.2,
            reorder_rate: 0.3,
            max_rounds: 64,
            ..ShipConfig::default()
        };
        let mut rng = SimRng::seed(99);
        let s = ship_bytes(&data, &cfg, &mut rng).unwrap();
        assert_eq!(s.bytes, data, "reassembly must be byte-exact");
        assert!(s.rounds > 1, "30% loss forces retransmission rounds");
        assert!(s.duplicates > 0);
        assert!(s.reordered > 0);
    }

    #[test]
    fn shipping_is_deterministic_per_seed() {
        let data = payload(20_000);
        let cfg = ShipConfig {
            chunk_bytes: 512,
            loss: 0.2,
            dup_rate: 0.1,
            reorder_rate: 0.2,
            max_rounds: 64,
            ..ShipConfig::default()
        };
        let a = ship_bytes(&data, &cfg, &mut SimRng::seed(7)).unwrap();
        let b = ship_bytes(&data, &cfg, &mut SimRng::seed(7)).unwrap();
        assert_eq!(a, b);
        let c = ship_bytes(&data, &cfg, &mut SimRng::seed(8)).unwrap();
        assert!(a.elapsed != c.elapsed || a.chunks_sent != c.chunks_sent);
    }

    #[test]
    fn total_loss_fails_loudly_not_short() {
        let data = payload(4_000);
        let cfg = ShipConfig {
            chunk_bytes: 256,
            loss: 1.0,
            max_rounds: 4,
            ..ShipConfig::default()
        };
        let err = ship_bytes(&data, &cfg, &mut SimRng::seed(3)).unwrap_err();
        assert_eq!(err.rounds, 4);
        assert_eq!(err.missing, 16);
        assert!(err.to_string().contains("abandoned"));
    }

    #[test]
    fn fence_rejects_and_counts_zombie_stamps() {
        let mut fence = EpochFence::new(1);
        assert!(fence.admit(1));
        assert_eq!(fence.bump(), 2);
        assert!(!fence.admit(1), "old incarnation is fenced out");
        assert!(fence.admit(2));
        assert!(!fence.admit(1));
        assert_eq!(fence.rejected(), 2);
        assert_eq!(fence.current(), 2);
    }

    #[test]
    #[should_panic(expected = "message from the future")]
    fn future_stamp_is_a_protocol_bug() {
        let mut fence = EpochFence::new(1);
        fence.admit(2);
    }
}
