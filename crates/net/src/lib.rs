//! # aorta-net — the uniform data communication layer
//!
//! §3 of the paper: the layer that "handles heterogeneous networking
//! protocols and provides a dynamic, logical view of networked devices".
//! Its three components map to modules here:
//!
//! 1. **Device profiles** — kept by the [`DeviceRegistry`] (catalog schemas
//!    from `aorta-device::catalog_for`, atomic-operation cost tables, probe
//!    timeouts per device type), plus dynamic join/leave.
//! 2. **Scan operators** — [`ScanOperator`] materializes each device type as
//!    a virtual relational table; sensory attributes are acquired live over
//!    the (lossy) wire, non-sensory attributes come from registry metadata.
//! 3. **Basic communication methods** — [`Channel`] and [`endpoint`]
//!    implement `connect/send/receive/close` over per-device-type
//!    [`aorta_sim::LinkModel`]s with a length-prefixed binary [`Message`] format.
//!
//! # Example
//!
//! ```
//! use aorta_net::{DeviceRegistry, ScanOperator};
//! use aorta_device::{DeviceKind, PervasiveLab};
//! use aorta_sim::{SimRng, SimTime};
//!
//! let mut registry = DeviceRegistry::from_lab(PervasiveLab::standard());
//! let mut rng = SimRng::seed(1);
//! let scan = ScanOperator::new(DeviceKind::Sensor);
//! let tuples = scan.run(&mut registry, SimTime::ZERO, &mut rng);
//! assert_eq!(tuples.len(), 10); // ten motes in the standard lab
//! ```

#![warn(missing_docs)]

mod breaker;
mod channel;
pub mod endpoint;
mod message;
mod probe;
mod profiles_dir;
mod registry;
mod scan;
mod ship;

pub use breaker::{BreakerBank, BreakerConfig, BreakerDecision, BreakerState};
pub use channel::Channel;
pub use message::{Message, WireError};
pub use probe::{ProbeOutcome, Prober, RetryPolicy};
pub use profiles_dir::{export_profiles, import_cost_tables};
pub use registry::{DeviceEntry, DeviceRegistry, DeviceSim};
pub use scan::ScanOperator;
pub use ship::{ship_bytes, EpochFence, ShipConfig, ShipError, Shipment};
