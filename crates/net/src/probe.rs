//! The probing mechanism (§4).
//!
//! "A probe on a candidate device includes the transmission of several
//! messages between the optimizer and the device. The major role of the
//! probing mechanism is to check the current availability of a candidate
//! device … A system-provided TIMEOUT value is set for each type of devices
//! to break the probe on unresponsive devices."

use aorta_device::{DeviceId, PhysicalStatus};
use aorta_sim::{SimDuration, SimRng, SimTime};

use crate::channel::{Channel, Exchange};
use crate::endpoint;
use crate::{DeviceRegistry, Message};

/// The outcome of probing one candidate device.
#[derive(Debug, Clone, PartialEq)]
pub enum ProbeOutcome {
    /// The device answered within the TIMEOUT.
    Available {
        /// Its current physical status (feeds the cost model).
        status: PhysicalStatus,
        /// Probe round-trip time.
        rtt: SimDuration,
    },
    /// No answer within the per-kind TIMEOUT; the device is excluded from
    /// device-selection optimization.
    TimedOut,
    /// The device is not registered at all.
    Unknown,
}

impl ProbeOutcome {
    /// True when the device can be considered for selection.
    pub fn is_available(&self) -> bool {
        matches!(self, ProbeOutcome::Available { .. })
    }

    /// The probed status, when available.
    pub fn status(&self) -> Option<&PhysicalStatus> {
        match self {
            ProbeOutcome::Available { status, .. } => Some(status),
            _ => None,
        }
    }
}

/// Probes candidate devices through the communication layer.
#[derive(Debug, Clone, Default)]
pub struct Prober {
    probes_sent: u64,
    timeouts: u64,
}

impl Prober {
    /// Creates a prober.
    pub fn new() -> Self {
        Prober::default()
    }

    /// Total probes attempted.
    pub fn probes_sent(&self) -> u64 {
        self.probes_sent
    }

    /// Probes that timed out.
    pub fn timeouts(&self) -> u64 {
        self.timeouts
    }

    /// Probes one device: connect, exchange `Probe`/`ProbeReply`, close.
    ///
    /// A probe fails (times out) when the device is offline, the wire loses
    /// a message, the device's own reliability model rejects the contact, or
    /// the sampled RTT exceeds the kind's TIMEOUT.
    pub fn probe(
        &mut self,
        registry: &mut DeviceRegistry,
        id: DeviceId,
        now: SimTime,
        rng: &mut SimRng,
    ) -> ProbeOutcome {
        self.probes_sent += 1;
        let timeout = registry.probe_timeout(id.kind());
        let channel = Channel::new(registry.link(id.kind()).clone());
        let entry = match registry.get_mut(id) {
            Some(e) => e,
            None => return ProbeOutcome::Unknown,
        };
        if !entry.online {
            self.timeouts += 1;
            return ProbeOutcome::TimedOut;
        }
        // Device-level availability (radio hops, coverage, connect loss).
        let status = match entry.sim.probe(now, rng) {
            Some(s) => s,
            None => {
                self.timeouts += 1;
                return ProbeOutcome::TimedOut;
            }
        };
        // Wire-level exchange.
        match channel.exchange(&Message::Probe, rng, || endpoint::probe_reply(&status)) {
            Exchange::Reply { rtt, .. } if rtt <= timeout => {
                ProbeOutcome::Available { status, rtt }
            }
            _ => {
                self.timeouts += 1;
                ProbeOutcome::TimedOut
            }
        }
    }

    /// Probes every candidate, returning the available ones with status.
    pub fn probe_all(
        &mut self,
        registry: &mut DeviceRegistry,
        candidates: &[DeviceId],
        now: SimTime,
        rng: &mut SimRng,
    ) -> Vec<(DeviceId, PhysicalStatus)> {
        candidates
            .iter()
            .filter_map(|&id| match self.probe(registry, id, now, rng) {
                ProbeOutcome::Available { status, .. } => Some((id, status)),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aorta_data::Location;
    use aorta_device::{Camera, CameraFailureModel, DeviceKind, Mote, PervasiveLab};
    use aorta_sim::LinkModel;

    fn reliable_registry() -> DeviceRegistry {
        let mut reg = DeviceRegistry::from_lab(PervasiveLab::standard().with_reliable_cameras());
        // Deterministic wire for the camera tests.
        reg.set_link(DeviceKind::Camera, LinkModel::ideal());
        reg
    }

    #[test]
    fn probing_reliable_camera_yields_status() {
        let mut reg = reliable_registry();
        let mut prober = Prober::new();
        let mut rng = SimRng::seed(1);
        let outcome = prober.probe(&mut reg, DeviceId::camera(0), SimTime::ZERO, &mut rng);
        assert!(outcome.is_available());
        assert!(outcome.status().unwrap().as_camera_head().is_some());
        assert_eq!(prober.probes_sent(), 1);
        assert_eq!(prober.timeouts(), 0);
    }

    #[test]
    fn unknown_device() {
        let mut reg = DeviceRegistry::new();
        let mut prober = Prober::new();
        let mut rng = SimRng::seed(2);
        assert_eq!(
            prober.probe(&mut reg, DeviceId::camera(9), SimTime::ZERO, &mut rng),
            ProbeOutcome::Unknown
        );
    }

    #[test]
    fn offline_device_times_out() {
        let mut reg = reliable_registry();
        reg.set_online(DeviceId::camera(0), false);
        let mut prober = Prober::new();
        let mut rng = SimRng::seed(3);
        assert_eq!(
            prober.probe(&mut reg, DeviceId::camera(0), SimTime::ZERO, &mut rng),
            ProbeOutcome::TimedOut
        );
        assert_eq!(prober.timeouts(), 1);
    }

    #[test]
    fn unreachable_camera_times_out() {
        let mut reg = reliable_registry();
        let dead = Camera::ceiling_mounted(5, Location::ORIGIN).with_failure(CameraFailureModel {
            connect_loss: 1.0,
            ..CameraFailureModel::reliable()
        });
        reg.register(dead.into(), SimTime::ZERO);
        let mut prober = Prober::new();
        let mut rng = SimRng::seed(4);
        assert_eq!(
            prober.probe(&mut reg, DeviceId::camera(5), SimTime::ZERO, &mut rng),
            ProbeOutcome::TimedOut
        );
    }

    #[test]
    fn deep_lossy_mote_often_times_out() {
        let mut reg = DeviceRegistry::new();
        let mote = Mote::new(0, Location::ORIGIN, 5).with_per_hop_loss(0.15);
        reg.register(mote.into(), SimTime::ZERO);
        let mut prober = Prober::new();
        let mut rng = SimRng::seed(5);
        for _ in 0..200 {
            let _ = prober.probe(&mut reg, DeviceId::sensor(0), SimTime::ZERO, &mut rng);
        }
        // (0.85)^10 ≈ 0.197 survive the radio path, so most probes fail.
        let rate = prober.timeouts() as f64 / prober.probes_sent() as f64;
        assert!(rate > 0.6, "timeout rate {rate}");
    }

    #[test]
    fn slow_link_exceeds_timeout() {
        let mut reg = reliable_registry();
        reg.set_link(
            DeviceKind::Camera,
            LinkModel::new(SimDuration::from_secs(10), SimDuration::ZERO, 0.0),
        );
        let mut prober = Prober::new();
        let mut rng = SimRng::seed(6);
        assert_eq!(
            prober.probe(&mut reg, DeviceId::camera(0), SimTime::ZERO, &mut rng),
            ProbeOutcome::TimedOut
        );
    }

    #[test]
    fn probe_all_filters_unavailable() {
        let mut reg = reliable_registry();
        reg.set_online(DeviceId::camera(1), false);
        let mut prober = Prober::new();
        let mut rng = SimRng::seed(7);
        let candidates = [DeviceId::camera(0), DeviceId::camera(1)];
        let available = prober.probe_all(&mut reg, &candidates, SimTime::ZERO, &mut rng);
        assert_eq!(available.len(), 1);
        assert_eq!(available[0].0, DeviceId::camera(0));
    }
}
