//! The probing mechanism (§4).
//!
//! "A probe on a candidate device includes the transmission of several
//! messages between the optimizer and the device. The major role of the
//! probing mechanism is to check the current availability of a candidate
//! device … A system-provided TIMEOUT value is set for each type of devices
//! to break the probe on unresponsive devices."
//!
//! On top of the paper's single-shot probe, the prober supports a per-kind
//! [`RetryPolicy`]: transient wire loss can be ridden out by re-probing with
//! exponential backoff, turning a spuriously "unavailable" device back into
//! a selection candidate.

use aorta_device::{DeviceId, PhysicalStatus};
use aorta_obs::{SharedMetrics, SpanKind};
use aorta_sim::{SimDuration, SimRng, SimTime};

use crate::channel::{Channel, Exchange};
use crate::endpoint;
use crate::{DeviceRegistry, Message};

/// The outcome of probing one candidate device.
#[derive(Debug, Clone, PartialEq)]
pub enum ProbeOutcome {
    /// The device answered within the TIMEOUT.
    Available {
        /// Its current physical status (feeds the cost model).
        status: PhysicalStatus,
        /// Probe round-trip time (of the successful attempt).
        rtt: SimDuration,
    },
    /// No answer within the per-kind TIMEOUT on any attempt; the device is
    /// excluded from device-selection optimization.
    TimedOut,
    /// The device is not registered at all.
    Unknown,
}

impl ProbeOutcome {
    /// True when the device can be considered for selection.
    pub fn is_available(&self) -> bool {
        matches!(self, ProbeOutcome::Available { .. })
    }

    /// The probed status, when available.
    pub fn status(&self) -> Option<&PhysicalStatus> {
        match self {
            ProbeOutcome::Available { status, .. } => Some(status),
            _ => None,
        }
    }
}

/// How a logical probe retries failed attempts.
///
/// An attempt that fails (offline device, unreachable radio, lost message,
/// over-TIMEOUT reply) is retried after an exponentially growing backoff:
/// the wait before attempt `k + 1` is `backoff_base × 2^(k-1)` plus a
/// uniform jitter in `[0, jitter]` drawn from the caller's [`SimRng`].
///
/// The default policy is [`RetryPolicy::none`] — a single attempt, matching
/// the paper's probe — so retries are strictly opt-in per device kind via
/// [`DeviceRegistry::set_retry_policy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    max_attempts: u32,
    backoff_base: SimDuration,
    jitter: SimDuration,
}

impl RetryPolicy {
    /// A single attempt, no retries (the default).
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff_base: SimDuration::ZERO,
            jitter: SimDuration::ZERO,
        }
    }

    /// A policy with the given attempt budget, backoff base, and jitter cap.
    ///
    /// # Panics
    ///
    /// Panics when `max_attempts` is zero.
    pub fn new(max_attempts: u32, backoff_base: SimDuration, jitter: SimDuration) -> Self {
        assert!(max_attempts >= 1, "a probe needs at least one attempt");
        RetryPolicy {
            max_attempts,
            backoff_base,
            jitter,
        }
    }

    /// Total attempts allowed per logical probe (first try included).
    pub fn max_attempts(&self) -> u32 {
        self.max_attempts
    }

    /// The backoff base duration.
    pub fn backoff_base(&self) -> SimDuration {
        self.backoff_base
    }

    /// The maximum uniform jitter added to each backoff wait.
    pub fn jitter(&self) -> SimDuration {
        self.jitter
    }

    /// The wait after failed attempt `attempt` (1-based): `base × 2^(attempt-1)`,
    /// jitter excluded.
    pub fn backoff_after(&self, attempt: u32) -> SimDuration {
        self.backoff_base
            .mul_f64((1u64 << (attempt - 1).min(32)) as f64)
    }

    /// Upper bound on total backoff time over a fully failed probe: the sum
    /// of the backoff schedule plus maximal jitter on every wait.
    pub fn max_total_backoff(&self) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for attempt in 1..self.max_attempts {
            total = total + self.backoff_after(attempt) + self.jitter;
        }
        total
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

/// Why one probe attempt failed. Each failed attempt is classified into
/// exactly one of these, so the prober's failure counters are mutually
/// exclusive by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AttemptFailure {
    /// The device is administratively offline.
    Offline,
    /// The device's own reliability model rejected the contact (radio hops,
    /// coverage, connect loss).
    Unreachable,
    /// The wire lost a message in either direction.
    WireLost,
    /// The reply arrived, but after the per-kind TIMEOUT.
    SlowReply,
}

/// Probes candidate devices through the communication layer.
///
/// Counter semantics: `probes_sent` counts *attempts* (so
/// `probes_sent == logical probes + retries`), `timeouts` counts logical
/// probes whose every attempt failed, and the four failure-reason counters
/// (`offline_failures`, `unreachable_failures`, `wire_lost`, `slow_replies`)
/// partition the failed attempts — each failed attempt increments exactly
/// one of them.
#[derive(Debug, Clone, Default)]
pub struct Prober {
    probes_sent: u64,
    timeouts: u64,
    retries: u64,
    recovered_by_retry: u64,
    offline_failures: u64,
    unreachable_failures: u64,
    wire_lost: u64,
    slow_replies: u64,
    metrics: Option<SharedMetrics>,
}

impl Prober {
    /// Creates a prober.
    pub fn new() -> Self {
        Prober::default()
    }

    /// Attaches a metrics handle; every subsequent probe records attempt /
    /// timeout counters, an RTT histogram, and one `probe` span per logical
    /// probe. Recording is write-only and never changes probe behavior.
    pub fn set_metrics(&mut self, metrics: SharedMetrics) {
        self.metrics = Some(metrics);
    }

    /// Total probe attempts (retries included).
    pub fn probes_sent(&self) -> u64 {
        self.probes_sent
    }

    /// Logical probes that failed on every attempt.
    pub fn timeouts(&self) -> u64 {
        self.timeouts
    }

    /// Attempts beyond the first, across all logical probes.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Logical probes that failed at least once but succeeded on a retry.
    pub fn recovered_by_retry(&self) -> u64 {
        self.recovered_by_retry
    }

    /// Attempts that failed because the device was administratively offline.
    pub fn offline_failures(&self) -> u64 {
        self.offline_failures
    }

    /// Attempts rejected by the device's own reliability model.
    pub fn unreachable_failures(&self) -> u64 {
        self.unreachable_failures
    }

    /// Attempts whose request or reply was lost on the wire.
    pub fn wire_lost(&self) -> u64 {
        self.wire_lost
    }

    /// Attempts whose reply arrived after the TIMEOUT.
    pub fn slow_replies(&self) -> u64 {
        self.slow_replies
    }

    /// Probes one device: connect, exchange `Probe`/`ProbeReply`, close —
    /// retrying per the registry's [`RetryPolicy`] for the device's kind.
    pub fn probe(
        &mut self,
        registry: &mut DeviceRegistry,
        id: DeviceId,
        now: SimTime,
        rng: &mut SimRng,
    ) -> ProbeOutcome {
        self.probe_timed(registry, id, now, rng).0
    }

    /// Like [`Prober::probe`], also returning the total virtual time the
    /// logical probe consumed: successful-attempt RTT, plus a full TIMEOUT
    /// per failed attempt, plus every backoff wait.
    pub fn probe_timed(
        &mut self,
        registry: &mut DeviceRegistry,
        id: DeviceId,
        now: SimTime,
        rng: &mut SimRng,
    ) -> (ProbeOutcome, SimDuration) {
        if registry.get(id).is_none() {
            return (ProbeOutcome::Unknown, SimDuration::ZERO);
        }
        let device_label = id.to_string();
        let policy = registry.retry_policy(id.kind());
        let timeout = registry.probe_timeout(id.kind());
        let channel = Channel::new(registry.link(id.kind()).clone());
        let mut elapsed = SimDuration::ZERO;
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            self.probes_sent += 1;
            if attempt > 1 {
                self.retries += 1;
            }
            if let Some(m) = &self.metrics {
                m.incr("aorta_probe_attempts", &[("device", &device_label)], 1);
            }
            match attempt_once(registry, id, timeout, &channel, now + elapsed, rng) {
                Ok((status, rtt)) => {
                    elapsed += rtt;
                    if attempt > 1 {
                        self.recovered_by_retry += 1;
                    }
                    if let Some(m) = &self.metrics {
                        m.observe("aorta_probe_rtt", &[("device", &device_label)], rtt);
                        m.span(
                            SpanKind::Probe,
                            now + elapsed,
                            elapsed,
                            &format!("device={device_label} attempts={attempt} outcome=available"),
                        );
                    }
                    return (ProbeOutcome::Available { status, rtt }, elapsed);
                }
                Err(failure) => {
                    // The optimizer waits out the full TIMEOUT before it
                    // declares an attempt dead.
                    elapsed += timeout;
                    match failure {
                        AttemptFailure::Offline => self.offline_failures += 1,
                        AttemptFailure::Unreachable => self.unreachable_failures += 1,
                        AttemptFailure::WireLost => self.wire_lost += 1,
                        AttemptFailure::SlowReply => self.slow_replies += 1,
                    }
                }
            }
            if attempt >= policy.max_attempts() {
                self.timeouts += 1;
                if let Some(m) = &self.metrics {
                    m.incr("aorta_probe_timeouts", &[("device", &device_label)], 1);
                    m.span(
                        SpanKind::Probe,
                        now + elapsed,
                        elapsed,
                        &format!("device={device_label} attempts={attempt} outcome=timeout"),
                    );
                }
                return (ProbeOutcome::TimedOut, elapsed);
            }
            let mut wait = policy.backoff_after(attempt);
            if !policy.jitter().is_zero() {
                wait += SimDuration::from_micros(rng.range(0..=policy.jitter().as_micros()));
            }
            elapsed += wait;
        }
    }

    /// Probes every candidate, returning the available ones with status.
    pub fn probe_all(
        &mut self,
        registry: &mut DeviceRegistry,
        candidates: &[DeviceId],
        now: SimTime,
        rng: &mut SimRng,
    ) -> Vec<(DeviceId, PhysicalStatus)> {
        candidates
            .iter()
            .filter_map(|&id| match self.probe(registry, id, now, rng) {
                ProbeOutcome::Available { status, .. } => Some((id, status)),
                _ => None,
            })
            .collect()
    }
}

/// One probe attempt, classified into success or exactly one failure kind.
fn attempt_once(
    registry: &mut DeviceRegistry,
    id: DeviceId,
    timeout: SimDuration,
    channel: &Channel,
    at: SimTime,
    rng: &mut SimRng,
) -> Result<(PhysicalStatus, SimDuration), AttemptFailure> {
    let entry = registry.get_mut(id).ok_or(AttemptFailure::Offline)?;
    if !entry.online {
        return Err(AttemptFailure::Offline);
    }
    // Device-level availability (radio hops, coverage, connect loss).
    let status = entry
        .sim
        .probe(at, rng)
        .ok_or(AttemptFailure::Unreachable)?;
    // Wire-level exchange. A lost message and an over-TIMEOUT reply are
    // distinct failure modes and counted separately.
    match channel.exchange(&Message::Probe, rng, || endpoint::probe_reply(&status)) {
        Exchange::Reply { rtt, .. } if rtt <= timeout => Ok((status, rtt)),
        Exchange::Reply { .. } => Err(AttemptFailure::SlowReply),
        Exchange::Lost => Err(AttemptFailure::WireLost),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aorta_data::Location;
    use aorta_device::{Camera, CameraFailureModel, DeviceKind, Mote, PervasiveLab};
    use aorta_sim::LinkModel;

    fn reliable_registry() -> DeviceRegistry {
        let mut reg = DeviceRegistry::from_lab(PervasiveLab::standard().with_reliable_cameras());
        // Deterministic wire for the camera tests.
        reg.set_link(DeviceKind::Camera, LinkModel::ideal());
        reg
    }

    #[test]
    fn probing_reliable_camera_yields_status() {
        let mut reg = reliable_registry();
        let mut prober = Prober::new();
        let mut rng = SimRng::seed(1);
        let outcome = prober.probe(&mut reg, DeviceId::camera(0), SimTime::ZERO, &mut rng);
        assert!(outcome.is_available());
        assert!(outcome.status().unwrap().as_camera_head().is_some());
        assert_eq!(prober.probes_sent(), 1);
        assert_eq!(prober.timeouts(), 0);
    }

    #[test]
    fn unknown_device() {
        let mut reg = DeviceRegistry::new();
        let mut prober = Prober::new();
        let mut rng = SimRng::seed(2);
        assert_eq!(
            prober.probe(&mut reg, DeviceId::camera(9), SimTime::ZERO, &mut rng),
            ProbeOutcome::Unknown
        );
        assert_eq!(prober.probes_sent(), 0);
    }

    #[test]
    fn offline_device_times_out() {
        let mut reg = reliable_registry();
        reg.set_online(DeviceId::camera(0), false);
        let mut prober = Prober::new();
        let mut rng = SimRng::seed(3);
        assert_eq!(
            prober.probe(&mut reg, DeviceId::camera(0), SimTime::ZERO, &mut rng),
            ProbeOutcome::TimedOut
        );
        assert_eq!(prober.timeouts(), 1);
        assert_eq!(prober.offline_failures(), 1);
    }

    #[test]
    fn unreachable_camera_times_out() {
        let mut reg = reliable_registry();
        let dead = Camera::ceiling_mounted(5, Location::ORIGIN).with_failure(CameraFailureModel {
            connect_loss: 1.0,
            ..CameraFailureModel::reliable()
        });
        reg.register(dead.into(), SimTime::ZERO);
        let mut prober = Prober::new();
        let mut rng = SimRng::seed(4);
        assert_eq!(
            prober.probe(&mut reg, DeviceId::camera(5), SimTime::ZERO, &mut rng),
            ProbeOutcome::TimedOut
        );
        assert_eq!(prober.unreachable_failures(), 1);
    }

    #[test]
    fn deep_lossy_mote_often_times_out() {
        let mut reg = DeviceRegistry::new();
        let mote = Mote::new(0, Location::ORIGIN, 5).with_per_hop_loss(0.15);
        reg.register(mote.into(), SimTime::ZERO);
        let mut prober = Prober::new();
        let mut rng = SimRng::seed(5);
        for _ in 0..200 {
            let _ = prober.probe(&mut reg, DeviceId::sensor(0), SimTime::ZERO, &mut rng);
        }
        // (0.85)^10 ≈ 0.197 survive the radio path, so most probes fail.
        let rate = prober.timeouts() as f64 / prober.probes_sent() as f64;
        assert!(rate > 0.6, "timeout rate {rate}");
    }

    #[test]
    fn slow_link_exceeds_timeout() {
        let mut reg = reliable_registry();
        reg.set_link(
            DeviceKind::Camera,
            LinkModel::new(SimDuration::from_secs(10), SimDuration::ZERO, 0.0),
        );
        let mut prober = Prober::new();
        let mut rng = SimRng::seed(6);
        assert_eq!(
            prober.probe(&mut reg, DeviceId::camera(0), SimTime::ZERO, &mut rng),
            ProbeOutcome::TimedOut
        );
        assert_eq!(prober.slow_replies(), 1);
        assert_eq!(prober.wire_lost(), 0);
    }

    #[test]
    fn probe_all_filters_unavailable() {
        let mut reg = reliable_registry();
        reg.set_online(DeviceId::camera(1), false);
        let mut prober = Prober::new();
        let mut rng = SimRng::seed(7);
        let candidates = [DeviceId::camera(0), DeviceId::camera(1)];
        let available = prober.probe_all(&mut reg, &candidates, SimTime::ZERO, &mut rng);
        assert_eq!(available.len(), 1);
        assert_eq!(available[0].0, DeviceId::camera(0));
    }

    /// Regression: a lost reply and an over-TIMEOUT reply used to fall into
    /// one undifferentiated `timeouts` bucket. They are separate failure
    /// modes and must be counted exactly once each, mutually exclusively.
    #[test]
    fn failure_counters_are_mutually_exclusive() {
        let mut prober = Prober::new();
        let mut rng = SimRng::seed(8);

        // Arm 1: total wire loss → wire_lost, nothing else.
        let mut reg = reliable_registry();
        reg.set_link(
            DeviceKind::Camera,
            LinkModel::new(SimDuration::ZERO, SimDuration::ZERO, 1.0),
        );
        let out = prober.probe(&mut reg, DeviceId::camera(0), SimTime::ZERO, &mut rng);
        assert_eq!(out, ProbeOutcome::TimedOut);
        assert_eq!(
            (prober.wire_lost(), prober.slow_replies()),
            (1, 0),
            "wire loss misclassified"
        );

        // Arm 2: reply arrives but too slow → slow_replies, wire_lost
        // unchanged.
        let mut reg = reliable_registry();
        reg.set_link(
            DeviceKind::Camera,
            LinkModel::new(SimDuration::from_secs(10), SimDuration::ZERO, 0.0),
        );
        let out = prober.probe(&mut reg, DeviceId::camera(0), SimTime::ZERO, &mut rng);
        assert_eq!(out, ProbeOutcome::TimedOut);
        assert_eq!((prober.wire_lost(), prober.slow_replies()), (1, 1));

        // Arm 3: offline → offline_failures only.
        let mut reg = reliable_registry();
        reg.set_online(DeviceId::camera(0), false);
        let _ = prober.probe(&mut reg, DeviceId::camera(0), SimTime::ZERO, &mut rng);

        // Every failed attempt classified exactly once.
        let failed_attempts = prober.offline_failures()
            + prober.unreachable_failures()
            + prober.wire_lost()
            + prober.slow_replies();
        assert_eq!(failed_attempts, 3);
        assert_eq!(prober.probes_sent(), 3);
        assert_eq!(prober.timeouts(), 3);
    }

    #[test]
    fn retry_recovers_from_transient_wire_loss() {
        let mut reg = reliable_registry();
        // Half the messages vanish in each direction, so one attempt
        // succeeds only 25% of the time — but sixteen attempts almost
        // never all fail (0.75^16 ≈ 1%).
        reg.set_link(
            DeviceKind::Camera,
            LinkModel::new(SimDuration::ZERO, SimDuration::ZERO, 0.5),
        );
        reg.set_retry_policy(
            DeviceKind::Camera,
            RetryPolicy::new(
                16,
                SimDuration::from_millis(10),
                SimDuration::from_millis(2),
            ),
        );
        let mut prober = Prober::new();
        let mut rng = SimRng::seed(9);
        let mut available = 0;
        for _ in 0..100 {
            if prober
                .probe(&mut reg, DeviceId::camera(0), SimTime::ZERO, &mut rng)
                .is_available()
            {
                available += 1;
            }
        }
        assert!(available >= 90, "only {available}/100 probes recovered");
        assert!(prober.retries() > 0, "no retries were attempted");
        assert!(
            prober.recovered_by_retry() > 0,
            "retries never recovered a probe"
        );
        // Attempt accounting: attempts = logical probes + retries.
        assert_eq!(prober.probes_sent(), 100 + prober.retries());
    }

    #[test]
    fn probe_time_includes_backoff_schedule() {
        let mut reg = reliable_registry();
        reg.set_link(
            DeviceKind::Camera,
            LinkModel::new(SimDuration::ZERO, SimDuration::ZERO, 1.0),
        );
        let policy = RetryPolicy::new(3, SimDuration::from_millis(100), SimDuration::ZERO);
        reg.set_retry_policy(DeviceKind::Camera, policy);
        let mut prober = Prober::new();
        let mut rng = SimRng::seed(10);
        let (out, elapsed) =
            prober.probe_timed(&mut reg, DeviceId::camera(0), SimTime::ZERO, &mut rng);
        assert_eq!(out, ProbeOutcome::TimedOut);
        let timeout = reg.probe_timeout(DeviceKind::Camera);
        // 3 failed attempts at full TIMEOUT + backoffs of 100ms and 200ms.
        let expected = timeout + timeout + timeout + SimDuration::from_millis(300);
        assert_eq!(elapsed, expected);
        assert_eq!(policy.max_total_backoff(), SimDuration::from_millis(300));
    }

    #[test]
    fn retry_policy_validation_and_defaults() {
        assert_eq!(RetryPolicy::default(), RetryPolicy::none());
        assert_eq!(RetryPolicy::none().max_attempts(), 1);
        assert_eq!(RetryPolicy::none().max_total_backoff(), SimDuration::ZERO);
        let p = RetryPolicy::new(3, SimDuration::from_millis(10), SimDuration::from_millis(5));
        assert_eq!(p.backoff_after(1), SimDuration::from_millis(10));
        assert_eq!(p.backoff_after(2), SimDuration::from_millis(20));
        // Sum of backoffs (10 + 20) plus jitter cap on both waits.
        assert_eq!(p.max_total_backoff(), SimDuration::from_millis(40));
    }

    #[test]
    #[should_panic(expected = "at least one attempt")]
    fn zero_attempt_policy_rejected() {
        let _ = RetryPolicy::new(0, SimDuration::ZERO, SimDuration::ZERO);
    }
}
