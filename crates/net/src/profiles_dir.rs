//! On-disk profile management.
//!
//! The paper's profiles are XML *files* "generated and registered to the
//! system and … updated dynamically by the system administrator" (§3.1),
//! laid out as `profiles/<kind>/device_catalog.xml` and
//! `profiles/<kind>/atomic_operation_cost.xml`. This module exports the
//! registry's live profiles to such a directory and loads them back —
//! the administrator's round trip.

use std::fs;
use std::io;
use std::path::Path;

use aorta_device::{DeviceKind, OpCostTable};

use crate::DeviceRegistry;

/// Writes every kind's catalog and cost table under `dir`.
///
/// Layout: `dir/<kind>/device_catalog.xml` and
/// `dir/<kind>/atomic_operation_cost.xml`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn export_profiles(registry: &DeviceRegistry, dir: &Path) -> io::Result<()> {
    for kind in DeviceKind::ALL {
        let kind_dir = dir.join(kind.table_name());
        fs::create_dir_all(&kind_dir)?;
        fs::write(
            kind_dir.join("device_catalog.xml"),
            aorta_device::catalog_for(kind),
        )?;
        fs::write(
            kind_dir.join("atomic_operation_cost.xml"),
            registry.cost_table(kind).to_xml(),
        )?;
    }
    Ok(())
}

/// Loads cost tables from a profile directory into the registry,
/// replacing the in-memory ones — the "updated dynamically by the system
/// administrator" path.
///
/// Kinds whose files are absent keep their current tables.
///
/// # Errors
///
/// Returns a message on filesystem errors or malformed XML.
pub fn import_cost_tables(registry: &mut DeviceRegistry, dir: &Path) -> Result<usize, String> {
    let mut loaded = 0;
    for kind in DeviceKind::ALL {
        let path = dir
            .join(kind.table_name())
            .join("atomic_operation_cost.xml");
        if !path.exists() {
            continue;
        }
        let xml = fs::read_to_string(&path)
            .map_err(|e| format!("failed to read {}: {e}", path.display()))?;
        let table = OpCostTable::from_xml(&xml).map_err(|e| format!("{}: {e}", path.display()))?;
        if table.kind() != kind {
            return Err(format!(
                "{} declares device kind '{}' but lives in the '{}' directory",
                path.display(),
                table.kind(),
                kind
            ));
        }
        registry.set_cost_table(kind, table);
        loaded += 1;
    }
    Ok(loaded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aorta_device::AtomicCost;
    use aorta_sim::SimDuration;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("aorta-profiles-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn export_creates_all_profile_files() {
        let registry = DeviceRegistry::new();
        let dir = temp_dir("export");
        export_profiles(&registry, &dir).unwrap();
        for kind in DeviceKind::ALL {
            assert!(dir
                .join(kind.table_name())
                .join("device_catalog.xml")
                .exists());
            assert!(dir
                .join(kind.table_name())
                .join("atomic_operation_cost.xml")
                .exists());
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn administrator_edit_round_trips() {
        let mut registry = DeviceRegistry::new();
        let dir = temp_dir("edit");
        export_profiles(&registry, &dir).unwrap();
        // The administrator re-measures the camera connect cost.
        let path = dir.join("camera").join("atomic_operation_cost.xml");
        let xml = fs::read_to_string(&path).unwrap();
        fs::write(&path, xml.replace("cost_us=\"50000\"", "cost_us=\"75000\"")).unwrap();
        let loaded = import_cost_tables(&mut registry, &dir).unwrap();
        assert_eq!(loaded, DeviceKind::ALL.len());
        assert_eq!(
            registry.cost_table(DeviceKind::Camera).get("connect"),
            Some(AtomicCost::Fixed(SimDuration::from_millis(75)))
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_files_are_skipped() {
        let mut registry = DeviceRegistry::new();
        let dir = temp_dir("missing");
        fs::create_dir_all(&dir).unwrap();
        assert_eq!(import_cost_tables(&mut registry, &dir), Ok(0));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn kind_mismatch_is_rejected() {
        let mut registry = DeviceRegistry::new();
        let dir = temp_dir("mismatch");
        let phone_dir = dir.join("phone");
        fs::create_dir_all(&phone_dir).unwrap();
        fs::write(
            phone_dir.join("atomic_operation_cost.xml"),
            OpCostTable::defaults_for(DeviceKind::Camera).to_xml(),
        )
        .unwrap();
        let err = import_cost_tables(&mut registry, &dir).unwrap_err();
        assert!(err.contains("declares device kind"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }
}
