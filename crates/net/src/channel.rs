//! The basic communication methods: `connect / send / receive / close`.
//!
//! A [`Channel`] wraps a per-device-type [`LinkModel`] and speaks the
//! [`Message`] wire format. "Each type of devices inherits this interface in
//! its own communication module" (§3.3) — here the per-type behaviour is the
//! link parameters plus the [`endpoint`](crate::endpoint) request handler.

use aorta_sim::{LinkModel, SimDuration, SimRng};

use crate::Message;

/// A request/response exchange result.
#[derive(Debug, Clone, PartialEq)]
pub enum Exchange {
    /// The reply arrived after the total round-trip latency.
    Reply {
        /// The reply message.
        message: Message,
        /// Round-trip time including serialization.
        rtt: SimDuration,
    },
    /// Either direction lost the message; the caller times out.
    Lost,
}

/// A connectionless request/response channel to one device type's network.
///
/// # Example
///
/// ```
/// use aorta_net::{Channel, Message};
/// use aorta_sim::{LinkModel, SimRng};
///
/// let channel = Channel::new(LinkModel::ideal());
/// let mut rng = SimRng::seed(1);
/// let sent = channel.send(&Message::Probe, &mut rng);
/// assert!(sent.is_some());
/// ```
#[derive(Debug, Clone)]
pub struct Channel {
    link: LinkModel,
}

impl Channel {
    /// Creates a channel over the given link.
    pub fn new(link: LinkModel) -> Self {
        Channel { link }
    }

    /// The underlying link model.
    pub fn link(&self) -> &LinkModel {
        &self.link
    }

    /// Sends one message; returns the one-way latency, or `None` on loss.
    pub fn send(&self, message: &Message, rng: &mut SimRng) -> Option<SimDuration> {
        self.link.transmit(message.wire_len(), rng).latency()
    }

    /// Performs a request/response exchange, computing the reply with
    /// `respond` (the device endpoint).
    pub fn exchange(
        &self,
        request: &Message,
        rng: &mut SimRng,
        respond: impl FnOnce() -> Message,
    ) -> Exchange {
        let out = match self.send(request, rng) {
            Some(d) => d,
            None => return Exchange::Lost,
        };
        let reply = respond();
        match self.send(&reply, rng) {
            Some(back) => Exchange::Reply {
                message: reply,
                rtt: out + back,
            },
            None => Exchange::Lost,
        }
    }

    /// Connect handshake: `Connect` out, `ConnectAck` back.
    ///
    /// Returns the handshake RTT, or `None` on loss.
    pub fn connect(&self, rng: &mut SimRng) -> Option<SimDuration> {
        match self.exchange(&Message::Connect, rng, || Message::ConnectAck) {
            Exchange::Reply { rtt, .. } => Some(rtt),
            Exchange::Lost => None,
        }
    }

    /// Close notification (fire and forget, as in the paper's `close()`).
    pub fn close(&self, rng: &mut SimRng) {
        let _ = self.send(&Message::Close, rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aorta_sim::SimDuration;

    #[test]
    fn exchange_over_ideal_link() {
        let ch = Channel::new(LinkModel::ideal());
        let mut rng = SimRng::seed(1);
        let ex = ch.exchange(&Message::Probe, &mut rng, || Message::ProbeReply {
            fields: vec![1.0],
        });
        match ex {
            Exchange::Reply { message, rtt } => {
                assert_eq!(message, Message::ProbeReply { fields: vec![1.0] });
                assert_eq!(rtt, SimDuration::ZERO);
            }
            Exchange::Lost => panic!("ideal link lost a message"),
        }
    }

    #[test]
    fn lossy_link_loses_exchanges() {
        let ch = Channel::new(LinkModel::new(SimDuration::ZERO, SimDuration::ZERO, 1.0));
        let mut rng = SimRng::seed(2);
        assert_eq!(
            ch.exchange(&Message::Probe, &mut rng, || Message::ConnectAck),
            Exchange::Lost
        );
        assert!(ch.connect(&mut rng).is_none());
    }

    #[test]
    fn rtt_includes_serialization_both_ways() {
        let ch = Channel::new(LinkModel::ideal().with_bytes_per_sec(1_000));
        let mut rng = SimRng::seed(3);
        // Connect = 1 byte out, ConnectAck = 1 byte back → 2ms at 1kB/s.
        let rtt = ch.connect(&mut rng).unwrap();
        assert_eq!(rtt, SimDuration::from_millis(2));
    }

    #[test]
    fn connect_round_trips() {
        let link = LinkModel::new(SimDuration::from_millis(5), SimDuration::ZERO, 0.0);
        let ch = Channel::new(link);
        let mut rng = SimRng::seed(4);
        assert_eq!(ch.connect(&mut rng), Some(SimDuration::from_millis(10)));
        ch.close(&mut rng); // must not panic
    }
}
