//! Wire-format properties: encode∘decode is the identity on arbitrary
//! messages, and decode never panics on arbitrary bytes.

use bytes::Bytes;
use proptest::prelude::*;

use aorta_data::{Location, Value};
use aorta_device::{PhotoSize, PtzPosition};
use aorta_net::Message;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        // Finite floats only: NaN breaks PartialEq-based round-trip checks.
        (-1e12..1e12f64).prop_map(Value::Float),
        ".{0,24}".prop_map(Value::Str),
        (-1e6..1e6f64, -1e6..1e6f64, -1e3..1e3f64)
            .prop_map(|(x, y, z)| Value::Location(Location::new(x, y, z))),
    ]
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        Just(Message::Connect),
        Just(Message::ConnectAck),
        Just(Message::Probe),
        proptest::collection::vec(-1e9..1e9f64, 0..6)
            .prop_map(|fields| Message::ProbeReply { fields }),
        proptest::collection::vec("[a-z_]{1,12}", 0..6)
            .prop_map(|names| Message::ReadAttrs { names }),
        proptest::collection::vec(arb_value(), 0..6)
            .prop_map(|values| Message::AttrReply { values }),
        (
            -170.0..170.0f64,
            -90.0..10.0f64,
            0.0..1.0f64,
            prop_oneof![
                Just(PhotoSize::Small),
                Just(PhotoSize::Medium),
                Just(PhotoSize::Large)
            ],
        )
            .prop_map(|(pan, tilt, zoom, size)| Message::Photo {
                target: PtzPosition::new(pan, tilt, zoom),
                size,
            }),
        any::<u64>().prop_map(|duration_us| Message::PhotoAck { duration_us }),
        (any::<bool>(), ".{0,40}").prop_map(|(mms, body)| Message::SendMessage { mms, body }),
        Just(Message::MessageAck),
        Just(Message::Close),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn prop_encode_decode_identity(msg in arb_message()) {
        let bytes = msg.encode();
        let back = Message::decode(bytes).expect("own encoding decodes");
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn prop_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Message::decode(Bytes::from(bytes));
    }

    /// Truncating a valid encoding yields an error (never panics, never a
    /// silent partial decode that equals the original).
    #[test]
    fn prop_truncation_detected(msg in arb_message(), cut_frac in 0.0..1.0f64) {
        let bytes = msg.encode();
        if bytes.len() > 1 {
            let cut = ((bytes.len() as f64) * cut_frac) as usize;
            let cut = cut.clamp(0, bytes.len() - 1);
            let truncated = bytes.slice(0..cut);
            match Message::decode(truncated) {
                Err(_) => {} // expected
                Ok(partial) => prop_assert_ne!(partial, msg, "truncated decode equal?!"),
            }
        }
    }
}
