//! Wire-format properties: encode∘decode is the identity on arbitrary
//! messages, and decode never panics on arbitrary bytes. Plus retry/backoff
//! properties of the prober: total probe time is bounded by the backoff
//! schedule, attempts are conserved across the counters, and enough retries
//! always ride out bounded wire loss.

use bytes::Bytes;
use proptest::prelude::*;

use aorta_data::{Location, Value};
use aorta_device::{DeviceId, DeviceKind, PervasiveLab, PhotoSize, PtzPosition};
use aorta_net::{DeviceRegistry, Message, ProbeOutcome, Prober, RetryPolicy};
use aorta_sim::{LinkModel, SimDuration, SimRng, SimTime};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        // Finite floats only: NaN breaks PartialEq-based round-trip checks.
        (-1e12..1e12f64).prop_map(Value::Float),
        ".{0,24}".prop_map(Value::Str),
        (-1e6..1e6f64, -1e6..1e6f64, -1e3..1e3f64)
            .prop_map(|(x, y, z)| Value::Location(Location::new(x, y, z))),
    ]
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        Just(Message::Connect),
        Just(Message::ConnectAck),
        Just(Message::Probe),
        proptest::collection::vec(-1e9..1e9f64, 0..6)
            .prop_map(|fields| Message::ProbeReply { fields }),
        proptest::collection::vec("[a-z_]{1,12}", 0..6)
            .prop_map(|names| Message::ReadAttrs { names }),
        proptest::collection::vec(arb_value(), 0..6)
            .prop_map(|values| Message::AttrReply { values }),
        (
            -170.0..170.0f64,
            -90.0..10.0f64,
            0.0..1.0f64,
            prop_oneof![
                Just(PhotoSize::Small),
                Just(PhotoSize::Medium),
                Just(PhotoSize::Large)
            ],
        )
            .prop_map(|(pan, tilt, zoom, size)| Message::Photo {
                target: PtzPosition::new(pan, tilt, zoom),
                size,
            }),
        any::<u64>().prop_map(|duration_us| Message::PhotoAck { duration_us }),
        (any::<bool>(), ".{0,40}").prop_map(|(mms, body)| Message::SendMessage { mms, body }),
        Just(Message::MessageAck),
        Just(Message::Close),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn prop_encode_decode_identity(msg in arb_message()) {
        let bytes = msg.encode();
        let back = Message::decode(bytes).expect("own encoding decodes");
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn prop_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Message::decode(Bytes::from(bytes));
    }

    /// Truncating a valid encoding yields an error (never panics, never a
    /// silent partial decode that equals the original).
    #[test]
    fn prop_truncation_detected(msg in arb_message(), cut_frac in 0.0..1.0f64) {
        let bytes = msg.encode();
        if bytes.len() > 1 {
            let cut = ((bytes.len() as f64) * cut_frac) as usize;
            let cut = cut.clamp(0, bytes.len() - 1);
            let truncated = bytes.slice(0..cut);
            match Message::decode(truncated) {
                Err(_) => {} // expected
                Ok(partial) => prop_assert_ne!(partial, msg, "truncated decode equal?!"),
            }
        }
    }
}

// --- probe retry / backoff properties ---------------------------------------

/// A registry with reliable cameras over a deterministic wire; `loss` is the
/// per-message loss on the camera link.
fn camera_registry(loss: f64) -> DeviceRegistry {
    let mut reg = DeviceRegistry::from_lab(PervasiveLab::standard().with_reliable_cameras());
    reg.set_link(
        DeviceKind::Camera,
        LinkModel::new(SimDuration::ZERO, SimDuration::ZERO, loss),
    );
    reg
}

fn arb_policy() -> impl Strategy<Value = RetryPolicy> {
    (1u32..6, 0u64..50_000, 0u64..10_000).prop_map(|(attempts, base_us, jitter_us)| {
        RetryPolicy::new(
            attempts,
            SimDuration::from_micros(base_us),
            SimDuration::from_micros(jitter_us),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The virtual time a fully failed probe consumes is bounded by one
    /// TIMEOUT per attempt plus the policy's worst-case backoff schedule.
    #[test]
    fn prop_total_probe_time_bounded(policy in arb_policy(), seed in 1u64..10_000) {
        let mut reg = camera_registry(1.0); // every message lost
        reg.set_retry_policy(DeviceKind::Camera, policy);
        let mut prober = Prober::new();
        let mut rng = SimRng::seed(seed);
        let (out, elapsed) =
            prober.probe_timed(&mut reg, DeviceId::camera(0), SimTime::ZERO, &mut rng);
        prop_assert_eq!(out, ProbeOutcome::TimedOut);
        let timeout = reg.probe_timeout(DeviceKind::Camera);
        let bound = timeout.mul_f64(policy.max_attempts() as f64) + policy.max_total_backoff();
        prop_assert!(
            elapsed <= bound,
            "elapsed {elapsed} exceeds schedule bound {bound}"
        );
        // And at least the timeouts themselves were waited out.
        prop_assert!(elapsed >= timeout.mul_f64(policy.max_attempts() as f64));
    }

    /// Attempt conservation across a batch of logical probes:
    /// `probes_sent == logical + retries`, every failed attempt is
    /// classified exactly once, and `timeouts` counts exactly the logical
    /// probes that returned TimedOut.
    #[test]
    fn prop_attempt_accounting(
        policy in arb_policy(),
        loss in 0.0..0.9f64,
        seed in 1u64..10_000,
        n in 1u64..40,
    ) {
        let mut reg = camera_registry(loss);
        reg.set_retry_policy(DeviceKind::Camera, policy);
        let mut prober = Prober::new();
        let mut rng = SimRng::seed(seed);
        let mut available = 0u64;
        for _ in 0..n {
            if prober
                .probe(&mut reg, DeviceId::camera(0), SimTime::ZERO, &mut rng)
                .is_available()
            {
                available += 1;
            }
        }
        prop_assert_eq!(prober.probes_sent(), n + prober.retries());
        prop_assert_eq!(prober.timeouts(), n - available);
        let classified = prober.offline_failures()
            + prober.unreachable_failures()
            + prober.wire_lost()
            + prober.slow_replies();
        // Failed attempts = all attempts minus the successful ones (one
        // success per available logical probe).
        prop_assert_eq!(classified, prober.probes_sent() - available);
        prop_assert!(prober.recovered_by_retry() <= available);
    }

    /// A device whose wire recovers within the attempt budget is always
    /// classified Available: with loss ≤ 0.5 and 64 attempts the chance of
    /// total failure is ≤ 0.75^64 ≈ 1e-8 per probe — treat it as never.
    #[test]
    fn prop_generous_retry_rides_out_bounded_loss(
        loss in 0.0..=0.5f64,
        seed in 1u64..10_000,
    ) {
        let mut reg = camera_registry(loss);
        reg.set_retry_policy(
            DeviceKind::Camera,
            RetryPolicy::new(64, SimDuration::from_millis(1), SimDuration::ZERO),
        );
        let mut prober = Prober::new();
        let mut rng = SimRng::seed(seed);
        let out = prober.probe(&mut reg, DeviceId::camera(0), SimTime::ZERO, &mut rng);
        prop_assert!(
            out.is_available(),
            "loss {loss} defeated 64 attempts (seed {seed})"
        );
    }
}
