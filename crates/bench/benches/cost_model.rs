//! E6 (§2.3) — cost-model microbenchmarks: the profile-driven estimate the
//! optimizer computes per (request, candidate) pair, and the camera
//! kinematics it approximates. Accuracy numbers via `repro -- e6`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use aorta_core::{estimate_action_cost, ActionProfile, CostContext};
use aorta_device::{CameraSpec, DeviceKind, OpCostTable, PhotoSize, PtzPosition};

fn bench_cost(c: &mut Criterion) {
    let profile = ActionProfile::photo();
    let table = OpCostTable::defaults_for(DeviceKind::Camera);
    let spec = CameraSpec::axis_2130();
    let from = PtzPosition::new(-120.0, 5.0, 0.2);
    let to = PtzPosition::new(85.0, -40.0, 0.7);

    let mut group = c.benchmark_group("cost_model_e6");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    group.bench_function("profile_estimate", |b| {
        let ctx = CostContext::camera(from, to);
        b.iter(|| estimate_action_cost(&profile, &table, &ctx).expect("valid profile"));
    });
    group.bench_function("kinematic_ground_truth", |b| {
        b.iter(|| spec.photo_time(&from, &to, PhotoSize::Medium));
    });
    group.bench_function("profile_xml_round_trip", |b| {
        let xml = profile.to_xml();
        b.iter(|| ActionProfile::from_xml(&xml).expect("round trip"));
    });
    group.finish();
}

criterion_group!(benches, bench_cost);
criterion_main!(benches);
