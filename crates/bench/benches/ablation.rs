//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * sequence-dependent vs table costs (what SRFE's reordering exploits),
//! * scheduled batch dispatch vs independent min-cost inside the engine.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use aorta_core::{Aorta, DispatchPolicy, EngineConfig};
use aorta_device::PervasiveLab;
use aorta_sched::{run_algorithm, workload, Algorithm};
use aorta_sim::{CpuModel, SimDuration, SimRng};

fn bench_sequence_dependence(c: &mut Criterion) {
    let cpu = CpuModel::instant();
    let mut group = c.benchmark_group("ablation_sequence_dependence");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    let (kin_inst, kin_model) = workload::uniform_targets(20, 10, &mut SimRng::seed(7000));
    group.bench_function("lerfa_srfe_kinematic", |b| {
        let mut rng = SimRng::seed(1);
        b.iter(|| run_algorithm(&Algorithm::LerfaSrfe, &kin_inst, &kin_model, &cpu, &mut rng));
    });
    let (tab_inst, tab_model) = workload::uniform_table(20, 10, &mut SimRng::seed(7000));
    group.bench_function("lerfa_srfe_table", |b| {
        let mut rng = SimRng::seed(1);
        b.iter(|| run_algorithm(&Algorithm::LerfaSrfe, &tab_inst, &tab_model, &cpu, &mut rng));
    });
    group.finish();
}

fn bench_dispatch_policy(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_dispatch_policy");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for (name, policy) in [
        ("scheduled", DispatchPolicy::Scheduled),
        ("min_cost", DispatchPolicy::MinCost),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let lab = PervasiveLab::standard()
                    .with_periodic_events(SimDuration::from_mins(1), SimDuration::ZERO);
                let mut aorta = Aorta::with_lab(EngineConfig::seeded(7).with_dispatch(policy), lab);
                for i in 0..10 {
                    aorta
                        .execute_sql(&format!(
                            r#"CREATE AQ q{i} AS
                               SELECT photo(c.ip, s.loc, "p")
                               FROM sensor s, camera c
                               WHERE s.accel_x > 500 AND s.id = {i} AND coverage(c.id, s.loc)"#
                        ))
                        .expect("valid query");
                }
                aorta.run_for(SimDuration::from_mins(1));
                aorta.stats()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sequence_dependence, bench_dispatch_policy);
criterion_main!(benches);
