//! Microbenchmarks of the substrates: SQL parsing, XML parsing, wire
//! message round trips, scan operators, probing.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use aorta_device::{DeviceId, DeviceKind, PervasiveLab};
use aorta_net::{DeviceRegistry, Message, Prober, ScanOperator};
use aorta_sim::{SimRng, SimTime};

const SNAPSHOT: &str = r#"CREATE AQ snapshot AS
    SELECT photo(c.ip, s.loc, "photos/admin")
    FROM sensor s, camera c
    WHERE s.accel_x > 500 AND coverage(c.id, s.loc)"#;

fn bench_micro(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    group.bench_function("sql_parse_snapshot", |b| {
        b.iter(|| aorta_sql::parse(SNAPSHOT).expect("valid SQL"));
    });

    let catalog_xml = aorta_device::catalog_for(DeviceKind::Sensor);
    group.bench_function("xml_parse_catalog", |b| {
        b.iter(|| aorta_device::parse_catalog(&catalog_xml).expect("valid catalog"));
    });

    let msg = Message::ReadAttrs {
        names: vec!["accel_x".into(), "accel_y".into(), "temp".into()],
    };
    group.bench_function("wire_encode_decode", |b| {
        b.iter(|| Message::decode(msg.encode()).expect("round trip"));
    });

    group.bench_function("sensor_scan_10_motes", |b| {
        let mut registry = DeviceRegistry::from_lab(PervasiveLab::standard());
        let scan = ScanOperator::new(DeviceKind::Sensor);
        let mut rng = SimRng::seed(11);
        b.iter(|| scan.run(&mut registry, SimTime::ZERO, &mut rng));
    });

    group.bench_function("probe_camera", |b| {
        let mut registry =
            DeviceRegistry::from_lab(PervasiveLab::standard().with_reliable_cameras());
        let mut prober = Prober::new();
        let mut rng = SimRng::seed(12);
        b.iter(|| prober.probe(&mut registry, DeviceId::camera(0), SimTime::ZERO, &mut rng));
    });

    group.finish();
}

criterion_group!(benches, bench_micro);
criterion_main!(benches);
