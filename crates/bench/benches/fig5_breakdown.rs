//! Figure 5 — the scheduling-time side of the breakdown at 20 requests /
//! 10 cameras: wall-clock cost of each algorithm's *assignment phase* in
//! isolation (the service side is virtual time; see `repro -- fig5`).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use aorta_sched::{workload, Algorithm};
use aorta_sim::{OpCounter, SimRng};

fn bench_fig5(c: &mut Criterion) {
    let (inst, model) = workload::uniform_targets(20, 10, &mut SimRng::seed(2000));
    let mut group = c.benchmark_group("fig5_scheduling_phase");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for alg in Algorithm::paper_lineup() {
        group.bench_function(alg.name().replace(' ', ""), |b| {
            let mut rng = SimRng::seed(8);
            b.iter(|| {
                let mut ops = OpCounter::new();
                alg.schedule(&inst, &model, &mut ops, &mut rng)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
