//! # aorta-bench — the reproduction harness
//!
//! One function per table/figure of the paper's §6, each returning
//! structured rows that the `repro` binary prints and the criterion benches
//! wrap. See `DESIGN.md` (experiment index) and `EXPERIMENTS.md`
//! (paper-vs-measured) at the repository root.

#![warn(missing_docs)]

pub mod experiments;
pub mod table;
