//! Tiny fixed-width table printer for experiment output.

use std::fmt::Write as _;

/// A printable results table.
///
/// # Example
///
/// ```
/// use aorta_bench::table::Table;
///
/// let mut t = Table::new(vec!["algorithm".into(), "makespan".into()]);
/// t.row(vec!["LS".into(), "8.21".into()]);
/// let s = t.render();
/// assert!(s.contains("LS"));
/// assert!(s.contains("makespan"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: Vec<String>) -> Self {
        Table {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics when the row width does not match the header.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<w$}");
            }
            // Trim trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        line(&self.header, &mut out);
        let sep: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
        line(&sep, &mut out);
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a".into(), "bb".into()]);
        t.row(vec!["xxxx".into(), "1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a     bb"));
        assert!(lines[1].starts_with("----  --"));
        assert!(lines[2].starts_with("xxxx  1"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(vec!["a".into()]);
        t.row(vec!["1".into(), "2".into()]);
    }
}
