//! Regenerates every table and figure of the paper's evaluation (§6).
//!
//! ```text
//! repro                 # all experiments
//! repro fig4            # one: e1 | fig4 | fig5 | fig6 | e5 | e6 | e7 | ablation
//! repro --runs 10       # runs averaged per point (default 10, like the paper)
//! repro --csv results/  # also write per-figure CSV series for plotting
//! ```

use std::env;
use std::path::PathBuf;

use aorta_bench::experiments::{self, MakespanPoint};
use aorta_bench::table::Table;

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let mut runs = experiments::RUNS_PER_POINT;
    let mut which: Vec<String> = Vec::new();
    let mut csv_dir: Option<PathBuf> = None;
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--runs" => {
                runs = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--runs needs a positive integer"));
            }
            "--csv" => {
                csv_dir = Some(PathBuf::from(
                    iter.next()
                        .unwrap_or_else(|| die("--csv needs a directory")),
                ));
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--runs N] [--csv DIR] [e1|fig4|fig5|fig6|e5|e6|e7|e8|e9|e10|e10-smoke|e11|e11-smoke|e12|e12-smoke|e13|e13-smoke|e14|e14-smoke|ablation|metrics]..."
                );
                return;
            }
            other => which.push(other.to_string()),
        }
    }
    if let Some(dir) = &csv_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            die(&format!("cannot create {}: {e}", dir.display()));
        }
    }
    CSV_DIR.with(|slot| *slot.borrow_mut() = csv_dir);
    if which.is_empty() {
        which = [
            "e1", "fig4", "fig5", "fig6", "e5", "e6", "e7", "e8", "e9", "ablation",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    for name in which {
        match name.as_str() {
            "e1" => e1(),
            "fig4" => fig4(runs),
            "fig5" => fig5(runs),
            "fig6" => fig6(runs),
            "e5" => e5(runs),
            "e6" => e6(),
            "e7" => e7(runs),
            "e8" => e8(),
            "e9" => e9(),
            "e10" => e10(true),
            "e10-smoke" => e10(false),
            "e11" => e11(true),
            "e11-smoke" => e11(false),
            "e12" => e12(true),
            "e12-smoke" => e12(false),
            "e13" => e13(true),
            "e13-smoke" => e13(false),
            "e14" => e14(true),
            "e14-smoke" => e14(false),
            "metrics" => metrics(),
            "ablation" => ablation(runs),
            other => die(&format!("unknown experiment '{other}'")),
        }
    }
    write_bench_sched_json();
}

/// `repro metrics`: the deterministic observability demo. Prints the JSON
/// snapshot and the Prometheus rendering of a fixed-seed two-shard cluster
/// run (see `aorta_cluster::metrics_demo`); byte-identical across
/// invocations on any platform, as asserted in `tests/determinism.rs`.
/// Deliberately *not* part of the default experiment list: the seed
/// experiments run with observability off.
fn metrics() {
    let (json, prom) = aorta_cluster::metrics_demo(42);
    println!("== metrics: deterministic observability snapshot (seed 42) ==");
    println!("{json}");
    println!();
    println!("{prom}");
}

/// `repro e10` (full sweep, writes BENCH_detect.json) or `repro e10-smoke`
/// (the 10³-AQ CI arm, no file). Deliberately *not* part of the default
/// experiment list: the rows carry wall-clock throughput, which is
/// machine-dependent — unlike every seed experiment, whose outputs are
/// deterministic virtual-time quantities.
fn e10(full: bool) {
    let report = experiments::e10_detect(0xE10, full);
    println!(
        "== E10 (extension): vectorized detection, {}-template palette, {} motes ==",
        experiments::E10_PALETTE,
        experiments::E10_MOTES
    );
    let mut t = Table::new(vec![
        "mode".into(),
        "AQs".into(),
        "epochs".into(),
        "register(s)".into(),
        "detect(s)".into(),
        "tuples/s".into(),
        "cmps".into(),
        "groups".into(),
    ]);
    for r in &report.rows {
        t.row(vec![
            r.mode.into(),
            r.queries.to_string(),
            r.epochs.to_string(),
            format!("{:.3}", r.register_secs),
            format!("{:.3}", r.detect_secs),
            format!("{:.0}", r.tuples_per_sec),
            r.index_cmps.to_string(),
            r.index_groups.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "vectorized/scalar speedup at {} AQs: {:.1}x (claim: >= 5x)",
        report.speedup_queries, report.speedup
    );
    if !report.sublinear_ratios.is_empty() {
        println!(
            "per-epoch cost growth / query growth between vectorized scales: {} ({})",
            report
                .sublinear_ratios
                .iter()
                .map(|r| format!("{r:.4}"))
                .collect::<Vec<_>>()
                .join(", "),
            if report.sublinear_ok {
                "sub-linear OK"
            } else {
                "NOT SUB-LINEAR"
            },
        );
    }
    println!(
        "oracle equivalence (stats + trace bytes, both modes): {}\n",
        if report.oracle_match {
            "OK"
        } else {
            "DIVERGED"
        },
    );
    if full {
        write_bench_detect_json(&report);
    }
    // CI runs the smoke arm: a divergence must fail the process, not just
    // print DIVERGED.
    assert!(
        report.oracle_match,
        "vectorized detection diverged from the scalar oracle"
    );
}

/// Hand-formats `BENCH_detect.json` (the repo has no JSON dependency).
fn write_bench_detect_json(report: &experiments::E10Report) {
    let mut body = String::from("{\n");
    body.push_str("  \"experiment\": \"e10\",\n");
    body.push_str(&format!(
        "  \"palette\": {},\n  \"batch_tuples\": {},\n  \"speedup_at_queries\": {},\n  \
         \"speedup\": {:.2},\n  \"sublinear_ratios\": [{}],\n  \"sublinear_ok\": {},\n  \
         \"oracle_match\": {},\n",
        experiments::E10_PALETTE,
        experiments::E10_MOTES,
        report.speedup_queries,
        report.speedup,
        report
            .sublinear_ratios
            .iter()
            .map(|r| format!("{r:.6}"))
            .collect::<Vec<_>>()
            .join(", "),
        report.sublinear_ok,
        report.oracle_match,
    ));
    body.push_str("  \"rows\": [\n");
    for (i, r) in report.rows.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"mode\": \"{}\", \"queries\": {}, \"epochs\": {}, \"register_s\": {:.4}, \
             \"detect_s\": {:.4}, \"tuples_per_s\": {:.1}, \"index_cmps\": {}, \
             \"index_groups\": {}}}{}\n",
            r.mode,
            r.queries,
            r.epochs,
            r.register_secs,
            r.detect_secs,
            r.tuples_per_sec,
            r.index_cmps,
            r.index_groups,
            if i + 1 < report.rows.len() { "," } else { "" }
        ));
    }
    body.push_str("  ]\n}\n");
    match std::fs::write("BENCH_detect.json", body) {
        Ok(()) => println!("(wrote BENCH_detect.json)"),
        Err(e) => eprintln!("repro: failed to write BENCH_detect.json: {e}"),
    }
}

/// `repro e11` (full sweep, writes BENCH_wal.json) or `repro e11-smoke`
/// (one-arm CI gate, no file): kill shards mid-wave at seeded points,
/// rebuild each from its write-ahead log, and require the recovered run to
/// be byte-identical to a never-interrupted reference. Not part of the
/// default list: `recovery_ms` is host wall-clock and machine-dependent;
/// every identity/conservation verdict is deterministic.
fn e11(full: bool) {
    let report = experiments::e11_wal(0xE11, full);
    println!(
        "== E11 (extension): durable control plane, kill-and-recover, {} cameras / {} motes ==",
        experiments::E11_CAMERAS,
        experiments::E11_MOTES
    );
    let mut t = Table::new(vec![
        "shards".into(),
        "crashes".into(),
        "cadence".into(),
        "store".into(),
        "requests".into(),
        "recovered".into(),
        "replayed".into(),
        "snapshots".into(),
        "wal KiB".into(),
        "recovery ms".into(),
        "conserved".into(),
        "identical".into(),
    ]);
    for r in &report.rows {
        t.row(vec![
            r.shards.to_string(),
            r.crashes.to_string(),
            r.snapshot_every.to_string(),
            if r.durable { "file" } else { "mem" }.into(),
            r.requests.to_string(),
            r.recoveries.to_string(),
            r.records_replayed.to_string(),
            r.snapshots.to_string(),
            format!("{:.1}", r.wal_bytes as f64 / 1024.0),
            r.recovery_wall_ms
                .iter()
                .map(|ms| ms.to_string())
                .collect::<Vec<_>>()
                .join("+"),
            if r.conservation_ok { "OK" } else { "VIOLATED" }.into(),
            if r.identical_to_reference {
                "OK"
            } else {
                "DIVERGED"
            }
            .into(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "determinism: {} (trace digest {:#018x})\n",
        if report.deterministic {
            "byte-identical across reruns"
        } else {
            "DIVERGED"
        },
        report.trace_digest,
    );
    if full {
        write_bench_wal_json(&report);
    }
    // CI runs the smoke arm: a broken ledger or a visible recovery must
    // fail the process, not just print a verdict.
    assert!(report.all_conserved, "conservation violated after recovery");
    assert!(
        report.all_identical,
        "recovered run diverged from the uninterrupted reference"
    );
    assert!(report.deterministic, "kill-and-recover runs diverged");
}

/// Hand-formats `BENCH_wal.json` (the repo has no JSON dependency).
fn write_bench_wal_json(report: &experiments::E11Report) {
    let mut body = String::from("{\n");
    body.push_str("  \"experiment\": \"e11\",\n");
    body.push_str(&format!(
        "  \"cameras\": {},\n  \"motes\": {},\n  \"all_conserved\": {},\n  \
         \"all_identical\": {},\n  \"deterministic\": {},\n  \"trace_fnv1a\": \"{:#018x}\",\n",
        experiments::E11_CAMERAS,
        experiments::E11_MOTES,
        report.all_conserved,
        report.all_identical,
        report.deterministic,
        report.trace_digest,
    ));
    body.push_str("  \"arms\": [\n");
    for (i, r) in report.rows.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"shards\": {}, \"crashes\": {}, \"snapshot_every\": {}, \"store\": \"{}\", \
             \"requests\": {}, \"executed\": {}, \"recoveries\": {}, \"records_replayed\": {}, \
             \"wal_appends\": {}, \"wal_bytes\": {}, \"snapshots\": {}, \"recovery_ms\": [{}], \
             \"conservation_ok\": {}, \"identical_to_reference\": {}}}{}\n",
            r.shards,
            r.crashes,
            r.snapshot_every,
            if r.durable { "file" } else { "mem" },
            r.requests,
            r.executed,
            r.recoveries,
            r.records_replayed,
            r.wal_appends,
            r.wal_bytes,
            r.snapshots,
            r.recovery_wall_ms
                .iter()
                .map(|ms| ms.to_string())
                .collect::<Vec<_>>()
                .join(", "),
            r.conservation_ok,
            r.identical_to_reference,
            if i + 1 < report.rows.len() { "," } else { "" }
        ));
    }
    body.push_str("  ]\n}\n");
    match std::fs::write("BENCH_wal.json", body) {
        Ok(()) => println!("(wrote BENCH_wal.json)"),
        Err(e) => eprintln!("repro: failed to write BENCH_wal.json: {e}"),
    }
}

/// `repro e12` (full sweep, writes BENCH_failover.json) or `repro
/// e12-smoke` (one-arm CI gate, no file): kill shards mid-wave under an
/// asymmetric partition, ship a CRC-framed snapshot image over the lossy
/// simulated network, rebuild each victim on a *fresh* host under a bumped
/// epoch, and require zero lost or double-executed requests, zero
/// late-epoch successes, and loud refusal of any corrupted image byte.
fn e12(full: bool) {
    let report = experiments::e12_failover(0xE12, full);
    println!(
        "== E12 (extension): cross-host failover under partition, {} cameras / {} motes ==",
        experiments::E11_CAMERAS,
        experiments::E11_MOTES
    );
    let mut t = Table::new(vec![
        "shards".into(),
        "crashes".into(),
        "ship loss".into(),
        "requests".into(),
        "executed".into(),
        "rerouted".into(),
        "failovers".into(),
        "window ms".into(),
        "shipped KiB".into(),
        "rounds".into(),
        "replayed".into(),
        "new hosts".into(),
        "fenced".into(),
        "conserved".into(),
    ]);
    for r in &report.rows {
        t.row(vec![
            r.shards.to_string(),
            r.crashes.to_string(),
            format!("{:.0}%", r.ship_loss * 100.0),
            r.requests.to_string(),
            r.executed.to_string(),
            r.rerouted.to_string(),
            r.failovers.to_string(),
            r.degraded_window_us
                .iter()
                .map(|us| format!("{:.0}", *us as f64 / 1000.0))
                .collect::<Vec<_>>()
                .join("+"),
            format!("{:.1}", r.bytes_shipped as f64 / 1024.0),
            r.ship_rounds.to_string(),
            r.records_replayed.to_string(),
            r.new_hosts
                .iter()
                .map(|h| format!("h{h}"))
                .collect::<Vec<_>>()
                .join("+"),
            if r.zombie_probe_rejected && r.late_successes == 0 {
                "OK"
            } else {
                "LEAKED"
            }
            .into(),
            if r.conservation_ok { "OK" } else { "VIOLATED" }.into(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "corruption sweep: {}; determinism: {} (trace digest {:#018x})\n",
        if report.corruption_detected {
            "every flipped byte refused"
        } else {
            "CORRUPT IMAGE ACCEPTED"
        },
        if report.deterministic {
            "byte-identical across reruns"
        } else {
            "DIVERGED"
        },
        report.trace_digest,
    );
    if full {
        write_bench_failover_json(&report);
    }
    // CI runs the smoke arm: a lost request, an applied zombie, or an
    // accepted corrupt image must fail the process, not just print.
    assert!(report.all_conserved, "conservation violated under failover");
    assert!(report.all_fenced, "stale-epoch traffic was not fenced");
    assert!(report.no_late_successes, "a zombie completion was applied");
    assert!(report.corruption_detected, "corrupt image went undetected");
    assert!(report.deterministic, "failover runs diverged");
}

/// Hand-formats `BENCH_failover.json` (the repo has no JSON dependency).
fn write_bench_failover_json(report: &experiments::E12Report) {
    let mut body = String::from("{\n");
    body.push_str("  \"experiment\": \"e12\",\n");
    body.push_str(&format!(
        "  \"cameras\": {},\n  \"motes\": {},\n  \"all_conserved\": {},\n  \
         \"all_fenced\": {},\n  \"no_late_successes\": {},\n  \
         \"corruption_detected\": {},\n  \"deterministic\": {},\n  \
         \"trace_fnv1a\": \"{:#018x}\",\n",
        experiments::E11_CAMERAS,
        experiments::E11_MOTES,
        report.all_conserved,
        report.all_fenced,
        report.no_late_successes,
        report.corruption_detected,
        report.deterministic,
        report.trace_digest,
    ));
    body.push_str("  \"arms\": [\n");
    for (i, r) in report.rows.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"shards\": {}, \"crashes\": {}, \"ship_loss\": {}, \"requests\": {}, \
             \"executed\": {}, \"degraded\": {}, \"shed\": {}, \"rerouted\": {}, \
             \"gateway_dropped\": {}, \"gateway_expired\": {}, \"failovers\": {}, \
             \"degraded_window_us\": [{}], \"bytes_shipped\": {}, \"ship_rounds\": {}, \
             \"records_replayed\": {}, \"new_hosts\": [{}], \"zombie_probe_rejected\": {}, \
             \"late_successes\": {}, \"conservation_ok\": {}}}{}\n",
            r.shards,
            r.crashes,
            r.ship_loss,
            r.requests,
            r.executed,
            r.degraded,
            r.shed,
            r.rerouted,
            r.gateway_dropped,
            r.gateway_expired,
            r.failovers,
            r.degraded_window_us
                .iter()
                .map(|us| us.to_string())
                .collect::<Vec<_>>()
                .join(", "),
            r.bytes_shipped,
            r.ship_rounds,
            r.records_replayed,
            r.new_hosts
                .iter()
                .map(|h| h.to_string())
                .collect::<Vec<_>>()
                .join(", "),
            r.zombie_probe_rejected,
            r.late_successes,
            r.conservation_ok,
            if i + 1 < report.rows.len() { "," } else { "" }
        ));
    }
    body.push_str("  ]\n}\n");
    match std::fs::write("BENCH_failover.json", body) {
        Ok(()) => println!("(wrote BENCH_failover.json)"),
        Err(e) => eprintln!("repro: failed to write BENCH_failover.json: {e}"),
    }
}

/// `repro e13` (full shards × threads ∈ {1,2,4,8}² sweep, writes
/// BENCH_parallel.json) or `repro e13-smoke` (one shard arm, threads
/// {1,4}, no file): the E8 live wave scaled to 2000 cameras, stepped on a
/// worker pool, every threaded arm's trace digest checked against the
/// 1-thread oracle. Like e10, not in the default experiment list: the rows
/// carry wall-clock times, which are machine-dependent — the digests are
/// the deterministic part.
fn e13(full: bool) {
    let report = experiments::e13_parallel(0xE13, full);
    println!(
        "== E13 (extension): parallel shard stepping, {} cameras / {} motes / {} AQs, {} host core(s) ==",
        report.cameras, report.motes, report.queries, report.host_cores
    );
    let mut t = Table::new(vec![
        "shards".into(),
        "threads".into(),
        "wall(s)".into(),
        "requests".into(),
        "executed".into(),
        "trace fnv".into(),
        "oracle".into(),
    ]);
    for r in &report.rows {
        t.row(vec![
            r.shards.to_string(),
            r.threads.to_string(),
            format!("{:.3}", r.wall_secs),
            r.requests.to_string(),
            r.executed.to_string(),
            format!("{:016x}", r.trace_fnv),
            if r.matches_oracle { "OK" } else { "DIVERGED" }.into(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "wall-clock speedup, 4 threads vs 1 at the largest shard arm: {:.2}x \
         (bounded by {} host core(s))\n",
        report.speedup_4t, report.host_cores
    );
    if full {
        write_bench_parallel_json(&report);
    }
    // CI runs the smoke arm: a byte of divergence between a threaded arm
    // and the sequential oracle must fail the process, not just print.
    assert!(
        report.all_match,
        "a threaded arm diverged from the 1-thread oracle"
    );
}

/// `repro e14` (the full three-workload sweep, writes BENCH_pushdown.json)
/// or `repro e14-smoke` (the threshold arm only, no file): in-network
/// operator pushdown — windowed aggregates and indexable filters evaluated
/// on the sensor side, suppressed samples shipping a 1-byte marker. Every
/// quantity is a deterministic virtual-time count (bytes, tuples, digests),
/// so unlike e10/e13 the committed artifact is bit-for-bit reproducible on
/// any machine. Every arm is byte-checked against a pushdown-off oracle.
fn e14(full: bool) {
    let report = experiments::e14_pushdown(0xE14, full);
    println!("== E14 (extension): in-network operator pushdown, hop-weighted wire bytes ==");
    let mut t = Table::new(vec![
        "workload".into(),
        "mins".into(),
        "AQs".into(),
        "shipped".into(),
        "suppressed".into(),
        "supp%".into(),
        "baseline(B)".into(),
        "wire(B)".into(),
        "saved%".into(),
        "oracle".into(),
    ]);
    for r in &report.rows {
        t.row(vec![
            r.workload.to_string(),
            r.minutes.to_string(),
            r.queries.to_string(),
            r.shipped.to_string(),
            r.suppressed.to_string(),
            format!("{:.1}", r.suppression_pct),
            r.baseline_bytes.to_string(),
            r.wire_bytes.to_string(),
            format!("{:.1}", r.saved_pct),
            if r.identical_to_oracle {
                "OK"
            } else {
                "DIVERGED"
            }
            .into(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "best savings {:.1}% of baseline bytes; deterministic: {}\n",
        report.best_saved_pct, report.deterministic
    );
    if full {
        write_bench_pushdown_json(&report);
    }
    // CI runs the smoke arm: a pushdown run that detects even one byte
    // differently from its oracle must fail the process, not just print.
    assert!(
        report.all_identical,
        "a pushdown arm diverged from its pushdown-off oracle"
    );
    assert!(report.deterministic, "e14 is not repetition-stable");
}

/// Hand-formats `BENCH_pushdown.json` (the repo has no JSON dependency).
fn write_bench_pushdown_json(report: &experiments::E14Report) {
    let mut body = String::from("{\n");
    body.push_str("  \"experiment\": \"e14\",\n");
    body.push_str(&format!(
        "  \"best_saved_pct\": {:.1},\n  \"all_identical\": {},\n  \"deterministic\": {},\n",
        report.best_saved_pct, report.all_identical, report.deterministic,
    ));
    body.push_str("  \"rows\": [\n");
    for (i, r) in report.rows.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"workload\": \"{}\", \"minutes\": {}, \"queries\": {}, \"shipped\": {}, \
             \"suppressed\": {}, \"suppression_pct\": {:.1}, \"baseline_bytes\": {}, \
             \"wire_bytes\": {}, \"saved_bytes\": {}, \"saved_pct\": {:.1}, \
             \"trace_fnv1a\": \"{:#018x}\", \"identical_to_oracle\": {}}}{}\n",
            r.workload,
            r.minutes,
            r.queries,
            r.shipped,
            r.suppressed,
            r.suppression_pct,
            r.baseline_bytes,
            r.wire_bytes,
            r.saved_bytes,
            r.saved_pct,
            r.trace_fnv,
            r.identical_to_oracle,
            if i + 1 < report.rows.len() { "," } else { "" }
        ));
    }
    body.push_str("  ]\n}\n");
    match std::fs::write("BENCH_pushdown.json", body) {
        Ok(()) => println!("(wrote BENCH_pushdown.json)"),
        Err(e) => eprintln!("repro: failed to write BENCH_pushdown.json: {e}"),
    }
}

/// Hand-formats `BENCH_parallel.json` (the repo has no JSON dependency).
fn write_bench_parallel_json(report: &experiments::E13Report) {
    let mut body = String::from("{\n");
    body.push_str("  \"experiment\": \"e13\",\n");
    body.push_str(&format!(
        "  \"cameras\": {},\n  \"motes\": {},\n  \"queries\": {},\n  \
         \"virtual_secs\": {},\n  \"host_cores\": {},\n  \
         \"speedup_4t_at_max_shards\": {:.2},\n  \"all_match\": {},\n",
        report.cameras,
        report.motes,
        report.queries,
        report.virtual_secs,
        report.host_cores,
        report.speedup_4t,
        report.all_match,
    ));
    body.push_str("  \"rows\": [\n");
    for (i, r) in report.rows.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"shards\": {}, \"threads\": {}, \"wall_s\": {:.4}, \"requests\": {}, \
             \"executed\": {}, \"trace_fnv1a\": \"{:#018x}\", \"matches_oracle\": {}}}{}\n",
            r.shards,
            r.threads,
            r.wall_secs,
            r.requests,
            r.executed,
            r.trace_fnv,
            r.matches_oracle,
            if i + 1 < report.rows.len() { "," } else { "" }
        ));
    }
    body.push_str("  ]\n}\n");
    match std::fs::write("BENCH_parallel.json", body) {
        Ok(()) => println!("(wrote BENCH_parallel.json)"),
        Err(e) => eprintln!("repro: failed to write BENCH_parallel.json: {e}"),
    }
}

fn e7(runs: u64) {
    let rows = experiments::e7_scale(runs.min(3), 7200);
    println!("== E7 (extension): scheduling at scale, ratio n/m = 4 ==");
    let mut t = Table::new(vec![
        "algorithm".into(),
        "n".into(),
        "m".into(),
        "makespan(s)".into(),
    ]);
    for r in &rows {
        t.row(vec![
            r.algorithm.to_string(),
            r.n.to_string(),
            r.m.to_string(),
            format!("{:.2}", r.service_secs),
        ]);
    }
    println!("{}", t.render());
    E7_ROWS.with(|slot| *slot.borrow_mut() = Some(rows));
}

fn e8() {
    let report = experiments::e8_cluster(0xE8);
    println!(
        "== E8 (extension): sharded cluster, {} requests / {} cameras ==",
        experiments::E8_REQUESTS,
        experiments::E8_CAMERAS
    );
    let mut t = Table::new(vec![
        "arm".into(),
        "shards".into(),
        "makespan(s)".into(),
        "rerouted".into(),
        "balanced".into(),
        "dropped".into(),
    ]);
    for r in &report.batch {
        let arm = if r.crashed_cameras == 0 {
            "uniform"
        } else {
            "crash storm"
        };
        t.row(vec![
            arm.into(),
            r.shards.to_string(),
            format!("{:.3}", r.makespan_secs),
            r.rerouted.to_string(),
            r.balanced.to_string(),
            r.dropped.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "uniform 1->8 shard speedup: {:.3}x (claim: >= 1.5x)",
        report.speedup_1_to_8
    );
    let live = &report.live;
    println!(
        "live {}-shard engine: {} requests, {} executed, {} rerouted, {} migrations, \
         mean latency {}, conservation {}",
        live.shards,
        live.requests,
        live.executed,
        live.rerouted,
        live.migrations,
        live.mean_latency_secs
            .map(|s| format!("{s:.2}s"))
            .unwrap_or_else(|| "n/a".into()),
        if live.conservation_ok {
            "OK"
        } else {
            "VIOLATED"
        },
    );
    println!(
        "determinism: {} (trace digest {:#018x})\n",
        if report.deterministic {
            "byte-identical across reruns"
        } else {
            "DIVERGED"
        },
        report.trace_digest,
    );
    write_bench_cluster_json(&report);
}

fn e9() {
    let report = experiments::e9_overload(0x0E9);
    println!(
        "== E9 (extension): overload sweep, arrival rate x fault rate, 4-shard cluster ==\n\
         deadline budget {:.0}s, admission SLO 2s, brownout at 0.5x / shed at 2x backlog",
        report.deadline_secs
    );
    let mut t = Table::new(vec![
        "period(s)".into(),
        "crash rate".into(),
        "requests".into(),
        "executed".into(),
        "degraded".into(),
        "shed".into(),
        "expired".into(),
        "trips".into(),
        "p99(s)".into(),
        "late".into(),
        "conserved".into(),
    ]);
    for r in &report.rows {
        t.row(vec![
            r.period_secs.to_string(),
            format!("{:.1}", r.crash_rate),
            r.requests.to_string(),
            r.executed.to_string(),
            r.degraded.to_string(),
            r.shed.to_string(),
            r.expired.to_string(),
            r.breaker_trips.to_string(),
            format!("{:.3}", r.p99_latency_secs),
            r.late_successes.to_string(),
            if r.conservation_ok { "OK" } else { "VIOLATED" }.into(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "max p99 {:.3}s <= deadline {:.0}s: {}; late successes: {}",
        report.max_p99_secs,
        report.deadline_secs,
        if report.max_p99_secs <= report.deadline_secs {
            "OK"
        } else {
            "VIOLATED"
        },
        if report.zero_late_successes {
            "none (OK)"
        } else {
            "PRESENT (VIOLATED)"
        },
    );
    println!(
        "determinism: {} (trace digest {:#018x})\n",
        if report.deterministic {
            "byte-identical across reruns"
        } else {
            "DIVERGED"
        },
        report.trace_digest,
    );
    write_bench_overload_json(&report);
}

/// Hand-formats `BENCH_overload.json` (the repo has no JSON dependency).
fn write_bench_overload_json(report: &experiments::E9Report) {
    let mut body = String::from("{\n");
    body.push_str("  \"experiment\": \"e9\",\n");
    body.push_str(&format!(
        "  \"deadline_s\": {:.1},\n  \"max_p99_s\": {:.4},\n  \"zero_late_successes\": {},\n  \
         \"deterministic\": {},\n  \"trace_fnv1a\": \"{:#018x}\",\n",
        report.deadline_secs,
        report.max_p99_secs,
        report.zero_late_successes,
        report.deterministic,
        report.trace_digest
    ));
    body.push_str("  \"sweep\": [\n");
    for (i, r) in report.rows.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"period_s\": {}, \"crash_rate\": {:.2}, \"requests\": {}, \"executed\": {}, \
             \"degraded\": {}, \"shed\": {}, \"expired\": {}, \"breaker_trips\": {}, \
             \"p99_latency_s\": {:.4}, \"late_successes\": {}, \"conservation_ok\": {}}}{}\n",
            r.period_secs,
            r.crash_rate,
            r.requests,
            r.executed,
            r.degraded,
            r.shed,
            r.expired,
            r.breaker_trips,
            r.p99_latency_secs,
            r.late_successes,
            r.conservation_ok,
            if i + 1 < report.rows.len() { "," } else { "" }
        ));
    }
    body.push_str("  ]\n}\n");
    match std::fs::write("BENCH_overload.json", body) {
        Ok(()) => println!("(wrote BENCH_overload.json)"),
        Err(e) => eprintln!("repro: failed to write BENCH_overload.json: {e}"),
    }
}

/// Hand-formats `BENCH_cluster.json` (the repo has no JSON dependency).
fn write_bench_cluster_json(report: &experiments::E8Report) {
    let mut body = String::from("{\n");
    body.push_str("  \"experiment\": \"e8\",\n");
    body.push_str(&format!(
        "  \"requests\": {},\n  \"cameras\": {},\n",
        experiments::E8_REQUESTS,
        experiments::E8_CAMERAS
    ));
    body.push_str(&format!(
        "  \"speedup_1_to_8\": {:.4},\n  \"deterministic\": {},\n  \"trace_fnv1a\": \"{:#018x}\",\n",
        report.speedup_1_to_8, report.deterministic, report.trace_digest
    ));
    body.push_str("  \"batch\": [\n");
    for (i, r) in report.batch.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"shards\": {}, \"crashed_cameras\": {}, \"makespan_s\": {:.4}, \
             \"rerouted\": {}, \"balanced\": {}, \"dropped\": {}}}{}\n",
            r.shards,
            r.crashed_cameras,
            r.makespan_secs,
            r.rerouted,
            r.balanced,
            r.dropped,
            if i + 1 < report.batch.len() { "," } else { "" }
        ));
    }
    body.push_str("  ],\n");
    let live = &report.live;
    body.push_str(&format!(
        "  \"live\": {{\"shards\": {}, \"requests\": {}, \"executed\": {}, \"rerouted\": {}, \
         \"migrations\": {}, \"mean_latency_s\": {}, \"conservation_ok\": {}}}\n",
        live.shards,
        live.requests,
        live.executed,
        live.rerouted,
        live.migrations,
        live.mean_latency_secs
            .map(|s| format!("{s:.4}"))
            .unwrap_or_else(|| "null".into()),
        live.conservation_ok,
    ));
    body.push_str("}\n");
    match std::fs::write("BENCH_cluster.json", body) {
        Ok(()) => println!("(wrote BENCH_cluster.json)"),
        Err(e) => eprintln!("repro: failed to write BENCH_cluster.json: {e}"),
    }
}

/// Hand-formats `BENCH_sched.json` from the Figure-4 (E2) and E7 rows, when
/// both experiments ran in this invocation.
fn write_bench_sched_json() {
    let fig4 = FIG4_POINTS.with(|slot| slot.borrow_mut().take());
    let e7 = E7_ROWS.with(|slot| slot.borrow_mut().take());
    let (Some(fig4), Some(e7)) = (fig4, e7) else {
        return;
    };
    let mut body = String::from("{\n  \"fig4\": [\n");
    for (i, p) in fig4.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"algorithm\": \"{}\", \"requests\": {}, \"makespan_s\": {:.4}, \
             \"sched_s\": {:.4}, \"service_s\": {:.4}}}{}\n",
            p.algorithm,
            p.x,
            p.makespan_secs,
            p.sched_secs,
            p.service_secs,
            if i + 1 < fig4.len() { "," } else { "" }
        ));
    }
    body.push_str("  ],\n  \"e7\": [\n");
    for (i, r) in e7.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"algorithm\": \"{}\", \"n\": {}, \"m\": {}, \"makespan_s\": {:.4}}}{}\n",
            r.algorithm,
            r.n,
            r.m,
            r.service_secs,
            if i + 1 < e7.len() { "," } else { "" }
        ));
    }
    body.push_str("  ]\n}\n");
    match std::fs::write("BENCH_sched.json", body) {
        Ok(()) => println!("(wrote BENCH_sched.json)"),
        Err(e) => eprintln!("repro: failed to write BENCH_sched.json: {e}"),
    }
}

thread_local! {
    static FIG4_POINTS: std::cell::RefCell<Option<Vec<MakespanPoint>>> =
        const { std::cell::RefCell::new(None) };
    static E7_ROWS: std::cell::RefCell<Option<Vec<experiments::RatioPoint>>> =
        const { std::cell::RefCell::new(None) };
}

fn ablation(runs: u64) {
    println!("== A1 (ablation): sequence-dependence is what SRFE exploits ==");
    let mut t = Table::new(vec!["configuration".into(), "service makespan(s)".into()]);
    for r in experiments::ablation_sequence_dependence(runs, 7000) {
        t.row(vec![r.label.clone(), format!("{:.2}", r.service_secs)]);
    }
    println!("{}", t.render());

    println!("== A2 (ablation): batch dispatch vs independent min-cost ==");
    let mut t = Table::new(vec!["configuration".into(), "mean latency(s)".into()]);
    for r in experiments::ablation_dispatch_policy(10, 7100) {
        t.row(vec![r.label.clone(), format!("{:.2}", r.service_secs)]);
    }
    println!("{}", t.render());
}

fn die(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    std::process::exit(2)
}

thread_local! {
    static CSV_DIR: std::cell::RefCell<Option<PathBuf>> = const { std::cell::RefCell::new(None) };
}

/// Writes one CSV series when `--csv` was given.
fn write_csv(name: &str, header: &str, rows: &[String]) {
    CSV_DIR.with(|slot| {
        if let Some(dir) = slot.borrow().as_ref() {
            let mut body = String::from(header);
            body.push('\n');
            for r in rows {
                body.push_str(r);
                body.push('\n');
            }
            let path = dir.join(format!("{name}.csv"));
            if let Err(e) = std::fs::write(&path, body) {
                eprintln!("repro: failed to write {}: {e}", path.display());
            } else {
                println!("(wrote {})", path.display());
            }
        }
    });
}

fn print_points(title: &str, x_label: &str, points: &[MakespanPoint]) {
    println!("== {title} ==");
    let slug: String = title
        .chars()
        .take_while(|c| *c != ':')
        .filter(|c| c.is_ascii_alphanumeric())
        .collect::<String>()
        .to_ascii_lowercase();
    write_csv(
        &slug,
        "algorithm,x,makespan_s,sched_s,service_s",
        &points
            .iter()
            .map(|p| {
                format!(
                    "{},{},{:.4},{:.4},{:.4}",
                    p.algorithm, p.x, p.makespan_secs, p.sched_secs, p.service_secs
                )
            })
            .collect::<Vec<_>>(),
    );
    let mut t = Table::new(vec![
        "algorithm".into(),
        x_label.into(),
        "makespan(s)".into(),
        "sched(s)".into(),
        "service(s)".into(),
    ]);
    for p in points {
        t.row(vec![
            p.algorithm.to_string(),
            p.x.to_string(),
            format!("{:.2}", p.makespan_secs),
            format!("{:.3}", p.sched_secs),
            format!("{:.2}", p.service_secs),
        ]);
    }
    println!("{}", t.render());
}

fn fig4(runs: u64) {
    let points = experiments::fig4(runs, 1000);
    print_points(
        "Figure 4: makespan vs #requests (10 cameras, uniform workload)",
        "#requests",
        &points,
    );
    FIG4_POINTS.with(|slot| *slot.borrow_mut() = Some(points.clone()));
    let violations = experiments::check_fig4_shape(&points);
    if violations.is_empty() {
        println!("shape check: OK (RANDOM worst; proposed beat LS/SA; sub-linear scaling)\n");
    } else {
        println!("shape check VIOLATIONS: {violations:#?}\n");
    }
}

fn fig5(runs: u64) {
    let points = experiments::fig5(runs, 2000);
    print_points(
        "Figure 5: time breakdown at 20 requests, 10 cameras",
        "#requests",
        &points,
    );
}

fn fig6(runs: u64) {
    let points = experiments::fig6(runs, 3000);
    print_points(
        "Figure 6: makespan vs skewness (10 cameras, 20 requests)",
        "skew(%)",
        &points,
    );
}

fn e5(runs: u64) {
    let points = experiments::e5(runs, 4000);
    println!("== E5: makespan depends only on #requests/#devices (uniform workload) ==");
    let mut t = Table::new(vec![
        "algorithm".into(),
        "n".into(),
        "m".into(),
        "n/m".into(),
        "service(s)".into(),
    ]);
    for p in &points {
        t.row(vec![
            p.algorithm.to_string(),
            p.n.to_string(),
            p.m.to_string(),
            format!("{:.1}", p.n as f64 / p.m as f64),
            format!("{:.2}", p.service_secs),
        ]);
    }
    println!("{}", t.render());
}

fn e1() {
    let report = aorta_bench::experiments::e1(10, 500);
    println!("== E1 (§6.2): action failure rate, 10 queries / 2 cameras / 10 min ==");
    let mut t = Table::new(vec![
        "synchronization".into(),
        "requests".into(),
        "failures".into(),
        "failure rate".into(),
    ]);
    for row in &report {
        t.row(vec![
            row.label.clone(),
            row.requests.to_string(),
            row.failures.to_string(),
            format!("{:.1}%", row.failure_rate * 100.0),
        ]);
    }
    println!("{}", t.render());
}

fn e6() {
    let rows = aorta_bench::experiments::e6(2000, 600);
    println!("== E6 (§2.3): cost model accuracy, estimated vs actual photo() time ==");
    let mut t = Table::new(vec!["metric".into(), "value".into()]);
    for (k, v) in rows {
        t.row(vec![k, v]);
    }
    println!("{}", t.render());
}
