//! The experiment functions, one per table/figure of §6.
//!
//! Each returns structured rows; `repro` prints them and `EXPERIMENTS.md`
//! records paper-vs-measured values. All experiments are deterministic given
//! their seed.

use aorta_sched::{run_algorithm, workload, Algorithm, SaConfig};
use aorta_sim::{CpuModel, SimRng};

/// Default number of independent runs averaged per point ("each point in the
/// figure is the average of results from ten independent runs", §6.3).
pub const RUNS_PER_POINT: u64 = 10;

/// One (algorithm, point) measurement averaged over seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct MakespanPoint {
    /// Algorithm display name.
    pub algorithm: &'static str,
    /// The x-axis value (number of requests, or skewness ×100).
    pub x: u64,
    /// Mean total makespan (scheduling + service), seconds.
    pub makespan_secs: f64,
    /// Mean scheduling time, seconds.
    pub sched_secs: f64,
    /// Mean service makespan, seconds.
    pub service_secs: f64,
}

fn algorithms() -> Vec<Algorithm> {
    Algorithm::paper_lineup()
}

/// A smaller SA budget for quick (smoke/bench) runs; scales the figure-5
/// shape down proportionally.
pub fn quick_lineup() -> Vec<Algorithm> {
    vec![
        Algorithm::LerfaSrfe,
        Algorithm::Srfae,
        Algorithm::Ls,
        Algorithm::Sa(SaConfig::quick()),
        Algorithm::Random,
    ]
}

fn average_runs(
    alg: &Algorithm,
    x: u64,
    runs: u64,
    base_seed: u64,
    mut make: impl FnMut(u64) -> (aorta_sched::Instance, aorta_sched::CameraPhotoModel),
) -> MakespanPoint {
    let cpu = CpuModel::paper_notebook();
    let mut tot = 0.0;
    let mut sched = 0.0;
    let mut service = 0.0;
    for run in 0..runs {
        let seed = base_seed + run;
        let (inst, model) = make(seed);
        let mut rng = SimRng::seed(seed ^ 0xA0A0_A0A0);
        let r = run_algorithm(alg, &inst, &model, &cpu, &mut rng);
        tot += r.total().as_secs_f64();
        sched += r.sched_time.as_secs_f64();
        service += r.service_makespan.as_secs_f64();
    }
    MakespanPoint {
        algorithm: alg.name(),
        x,
        makespan_secs: tot / runs as f64,
        sched_secs: sched / runs as f64,
        service_secs: service / runs as f64,
    }
}

/// **Figure 4** — makespan vs number of requests (10, 20, 30) with 10
/// cameras and a uniform workload, five algorithms, averaged over
/// `runs` seeded runs.
pub fn fig4(runs: u64, base_seed: u64) -> Vec<MakespanPoint> {
    let mut out = Vec::new();
    for &n in &[10usize, 20, 30] {
        for alg in algorithms() {
            out.push(average_runs(&alg, n as u64, runs, base_seed, |seed| {
                workload::uniform_targets(n, 10, &mut SimRng::seed(seed))
            }));
        }
    }
    out
}

/// **Figure 5** — scheduling-time / service-time breakdown at 20 requests,
/// 10 cameras (the n=20 column of Figure 4 decomposed).
pub fn fig5(runs: u64, base_seed: u64) -> Vec<MakespanPoint> {
    algorithms()
        .iter()
        .map(|alg| {
            average_runs(alg, 20, runs, base_seed, |seed| {
                workload::uniform_targets(20, 10, &mut SimRng::seed(seed))
            })
        })
        .collect()
}

/// **Figure 6** — makespan vs workload skewness (0.2, 0.3, 0.4) with 10
/// cameras, 20 requests.
pub fn fig6(runs: u64, base_seed: u64) -> Vec<MakespanPoint> {
    let mut out = Vec::new();
    for &skew in &[0.2f64, 0.3, 0.4] {
        for alg in algorithms() {
            out.push(average_runs(
                &alg,
                (skew * 100.0).round() as u64,
                runs,
                base_seed,
                |seed| workload::skewed_targets(20, 10, skew, &mut SimRng::seed(seed)),
            ));
        }
    }
    out
}

/// One row of the **E5** ratio experiment (§6.3 prose): with a uniform
/// workload, the four non-RANDOM algorithms' makespans depend only on
/// #requests / #devices.
#[derive(Debug, Clone, PartialEq)]
pub struct RatioPoint {
    /// Algorithm display name.
    pub algorithm: &'static str,
    /// Number of requests.
    pub n: usize,
    /// Number of devices.
    pub m: usize,
    /// Mean service makespan, seconds (scheduling time excluded to isolate
    /// the ratio effect).
    pub service_secs: f64,
}

/// **E5** — sweeps (n, m) pairs sharing the ratio n/m = 2 plus contrasting
/// ratios, reporting mean service makespans.
pub fn e5(runs: u64, base_seed: u64) -> Vec<RatioPoint> {
    let cpu = CpuModel::instant();
    let mut out = Vec::new();
    for &(n, m) in &[(10usize, 5usize), (20, 10), (40, 20), (10, 10), (40, 10)] {
        for alg in quick_lineup() {
            if alg.name() == "RANDOM" {
                continue;
            }
            let mut service = 0.0;
            for run in 0..runs {
                let seed = base_seed + run;
                let (inst, model) = workload::uniform_targets(n, m, &mut SimRng::seed(seed));
                let mut rng = SimRng::seed(seed ^ 0x5E5E_5E5E);
                let r = run_algorithm(&alg, &inst, &model, &cpu, &mut rng);
                service += r.service_makespan.as_secs_f64();
            }
            out.push(RatioPoint {
                algorithm: alg.name(),
                n,
                m,
                service_secs: service / runs as f64,
            });
        }
    }
    out
}

/// Looks up a point by algorithm and x value.
pub fn find<'a>(points: &'a [MakespanPoint], algorithm: &str, x: u64) -> &'a MakespanPoint {
    points
        .iter()
        .find(|p| p.algorithm == algorithm && p.x == x)
        .unwrap_or_else(|| panic!("no point for {algorithm} at x={x}"))
}

/// The paper's headline Figure 4 shape claims, as a checkable predicate.
///
/// Returns a list of violated claims (empty = all shape claims hold):
/// 1. RANDOM is worst at every point,
/// 2. both proposed algorithms beat LS and SA at n=20 and n=30,
/// 3. the proposed algorithms scale sub-linearly from n=10 to n=30 while
///    LS grows at least proportionally faster.
pub fn check_fig4_shape(points: &[MakespanPoint]) -> Vec<String> {
    let mut violations = Vec::new();
    for &n in &[10u64, 20, 30] {
        let random = find(points, "RANDOM", n).makespan_secs;
        for alg in ["LERFA + SRFE", "SRFAE", "LS", "SA"] {
            let v = find(points, alg, n).makespan_secs;
            if v >= random {
                violations.push(format!(
                    "{alg} ({v:.2}s) not better than RANDOM ({random:.2}s) at n={n}"
                ));
            }
        }
    }
    for &n in &[20u64, 30] {
        for ours in ["LERFA + SRFE", "SRFAE"] {
            let v = find(points, ours, n).makespan_secs;
            for theirs in ["LS", "SA"] {
                let w = find(points, theirs, n).makespan_secs;
                if v >= w {
                    violations.push(format!(
                        "{ours} ({v:.2}s) not better than {theirs} ({w:.2}s) at n={n}"
                    ));
                }
            }
        }
    }
    for ours in ["LERFA + SRFE", "SRFAE"] {
        let at10 = find(points, ours, 10).makespan_secs;
        let at30 = find(points, ours, 30).makespan_secs;
        if at30 >= 3.0 * at10 {
            violations.push(format!(
                "{ours} scales linearly or worse: {at10:.2}s → {at30:.2}s"
            ));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_shape_claims_hold() {
        let points = fig4(RUNS_PER_POINT, 1000);
        let violations = check_fig4_shape(&points);
        assert!(violations.is_empty(), "{violations:#?}");
    }

    #[test]
    fn fig5_sa_scheduling_dominates() {
        let points = fig5(3, 2000);
        let sa = find(&points, "SA", 20);
        assert!(
            sa.sched_secs > 1.0,
            "SA scheduling time should be seconds, got {:.3}s",
            sa.sched_secs
        );
        for alg in ["LERFA + SRFE", "SRFAE", "LS", "RANDOM"] {
            let p = find(&points, alg, 20);
            assert!(
                p.sched_secs < 0.2,
                "{alg} scheduling time should be negligible, got {:.3}s",
                p.sched_secs
            );
            assert!(p.sched_secs < p.service_secs / 5.0, "{alg} breakdown off");
        }
    }

    #[test]
    fn fig6_makespan_decreases_with_skewness_for_greedy() {
        let points = fig6(RUNS_PER_POINT, 3000);
        for alg in ["LERFA + SRFE", "SRFAE", "LS"] {
            let at20 = find(&points, alg, 20).makespan_secs;
            let at40 = find(&points, alg, 40).makespan_secs;
            assert!(
                at40 <= at20 * 1.05,
                "{alg}: makespan should not grow with skewness ({at20:.2} → {at40:.2})"
            );
        }
        // SA is the worst algorithm under skew (scheduling time dominates).
        for &skew in &[20u64, 30, 40] {
            let sa = find(&points, "SA", skew).makespan_secs;
            for alg in ["LERFA + SRFE", "SRFAE", "LS"] {
                let v = find(&points, alg, skew).makespan_secs;
                assert!(
                    sa > v,
                    "SA ({sa:.2}) should be worst at skew {skew}, {alg} is {v:.2}"
                );
            }
        }
    }

    #[test]
    fn e5_ratio_invariance() {
        let points = e5(5, 4000);
        // Same ratio n/m = 2: service makespans within a modest band.
        for alg in ["LERFA + SRFE", "SRFAE", "LS"] {
            let vals: Vec<f64> = points
                .iter()
                .filter(|p| p.algorithm == alg && p.n == 2 * p.m)
                .map(|p| p.service_secs)
                .collect();
            assert!(vals.len() >= 3, "{alg}");
            let min = vals.iter().cloned().fold(f64::MAX, f64::min);
            let max = vals.iter().cloned().fold(0.0, f64::max);
            assert!(
                max / min < 1.6,
                "{alg}: same-ratio makespans spread too far: {vals:?}"
            );
            // Contrast: ratio 4 (40,10) should be clearly above ratio 1 (10,10).
            let r4 = points
                .iter()
                .find(|p| p.algorithm == alg && p.n == 40 && p.m == 10)
                .unwrap()
                .service_secs;
            let r1 = points
                .iter()
                .find(|p| p.algorithm == alg && p.n == 10 && p.m == 10)
                .unwrap()
                .service_secs;
            assert!(r4 > r1, "{alg}: ratio 4 ({r4:.2}) vs ratio 1 ({r1:.2})");
        }
    }
}

/// One row of the E1 synchronization experiment report.
#[derive(Debug, Clone, PartialEq)]
pub struct E1Row {
    /// "without locking" / "with locking".
    pub label: String,
    /// Total photo requests issued.
    pub requests: u64,
    /// Requests that failed or produced ruined photos.
    pub failures: u64,
    /// failures / requests.
    pub failure_rate: f64,
}

/// **E1** (§6.2) — the device-synchronization experiment: "We generated 10
/// queries embedded with the photo() action … a photo of Mote i's location
/// was required to be taken by the i-th query every minute", on the standard
/// 2-camera lab, with and without the locking mechanism.
pub fn e1(minutes: u64, seed: u64) -> Vec<E1Row> {
    use aorta_core::{Aorta, EngineConfig};
    use aorta_device::PervasiveLab;
    use aorta_sim::SimDuration;

    let mut rows = Vec::new();
    for (label, sync) in [("without locking", false), ("with locking", true)] {
        let lab = PervasiveLab::standard()
            .with_periodic_events(SimDuration::from_mins(1), SimDuration::ZERO);
        let config = if sync {
            EngineConfig::seeded(seed)
        } else {
            EngineConfig::seeded(seed).without_sync()
        };
        let mut aorta = Aorta::with_lab(config, lab);
        for i in 0..10 {
            aorta
                .execute_sql(&format!(
                    r#"CREATE AQ snapshot_{i} AS
                       SELECT photo(c.ip, s.loc, "photos/admin")
                       FROM sensor s, camera c
                       WHERE s.accel_x > 500 AND s.id = {i} AND coverage(c.id, s.loc)"#
                ))
                .expect("the §6.2 queries are valid");
        }
        aorta.run_for(SimDuration::from_mins(minutes));
        // Let in-flight photos settle so outcomes are final.
        aorta.run_for(SimDuration::from_secs(30));
        let stats = aorta.stats();
        rows.push(E1Row {
            label: label.to_string(),
            requests: stats.requests,
            failures: stats.failures(),
            failure_rate: stats.failure_rate().unwrap_or(0.0),
        });
    }
    rows
}

/// **E6** (§2.3) — cost-model accuracy: profile-composed estimates vs the
/// (jittered) simulated camera's actual `photo()` execution times.
pub fn e6(samples: u64, seed: u64) -> Vec<(String, String)> {
    use aorta_core::{estimate_action_cost, ActionProfile, CostContext};
    use aorta_data::Location;
    use aorta_device::{
        Camera, CameraFailureModel, CameraSpec, DeviceKind, OpCostTable, PhotoSize, PtzPosition,
    };
    use aorta_sim::{SimDuration, SimTime};

    let spec = CameraSpec::axis_2130().with_move_jitter(0.03);
    let mut cam = Camera::new(
        0,
        spec,
        Location::new(4.0, 3.0, 3.0),
        90.0,
        CameraFailureModel::reliable(),
    );
    let profile = ActionProfile::photo();
    let table = OpCostTable::defaults_for(DeviceKind::Camera);
    let mut rng = SimRng::seed(seed);
    let mut rel_errors: Vec<f64> = Vec::with_capacity(samples as usize);
    let mut t = SimTime::ZERO;
    for _ in 0..samples {
        let from = PtzPosition::new(rng.range(-170.0..170.0), rng.range(-90.0..10.0), rng.unit());
        let to = PtzPosition::new(rng.range(-170.0..170.0), rng.range(-90.0..10.0), rng.unit());
        cam.force_position(from);
        let est = estimate_action_cost(&profile, &table, &CostContext::camera(from, to))
            .expect("photo profile always estimates");
        let rec = cam
            .begin_photo(t, to, PhotoSize::Medium, &mut rng)
            .expect("reliable camera accepts photos");
        let actual = rec.completes_at - t;
        let err = (est.as_secs_f64() - actual.as_secs_f64()).abs() / actual.as_secs_f64();
        rel_errors.push(err);
        t = rec.completes_at + SimDuration::from_secs(1);
    }
    rel_errors.sort_by(|a, b| a.partial_cmp(b).expect("errors are finite"));
    let mean = rel_errors.iter().sum::<f64>() / rel_errors.len() as f64;
    let p95 = rel_errors[(rel_errors.len() * 95 / 100).min(rel_errors.len() - 1)];
    let max = *rel_errors.last().expect("samples > 0");
    vec![
        ("samples".into(), samples.to_string()),
        (
            "mean |relative error|".into(),
            format!("{:.2}%", mean * 100.0),
        ),
        (
            "p95 |relative error|".into(),
            format!("{:.2}%", p95 * 100.0),
        ),
        (
            "max |relative error|".into(),
            format!("{:.2}%", max * 100.0),
        ),
        (
            "paper claim".into(),
            "\"our cost model is reasonably accurate\"".into(),
        ),
    ]
}

#[cfg(test)]
mod engine_experiment_tests {
    use super::*;

    #[test]
    fn e1_sync_contrast_matches_paper() {
        let rows = e1(10, 500);
        assert_eq!(rows.len(), 2);
        let without = &rows[0];
        let with = &rows[1];
        assert!(
            without.failure_rate > 0.5,
            "paper: >50% failures without locking, got {:.1}%",
            without.failure_rate * 100.0
        );
        assert!(
            with.failure_rate < 0.25,
            "paper: ~10% failures with locking, got {:.1}%",
            with.failure_rate * 100.0
        );
        assert!(with.failure_rate < without.failure_rate / 2.0);
        // Roughly 10 queries x 10 minutes of requests in both arms.
        assert!(without.requests >= 80, "{without:?}");
        assert!(with.requests >= 80, "{with:?}");
    }

    #[test]
    fn e6_cost_model_reasonably_accurate() {
        let rows = e6(500, 600);
        let mean: f64 = rows[1].1.trim_end_matches('%').parse().unwrap();
        assert!(mean < 5.0, "mean relative error {mean}% too large");
        let max: f64 = rows[3].1.trim_end_matches('%').parse().unwrap();
        assert!(max < 15.0, "max relative error {max}% too large");
    }
}

/// One row of the A1 ablation: what sequence-dependence awareness buys.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Which configuration the row describes.
    pub label: String,
    /// Mean service makespan, seconds.
    pub service_secs: f64,
}

/// **A1 (ablation)** — sequence-dependence: the same 20-request / 10-camera
/// workload under (a) the kinematic cost model, where SRFE's nearest-target
/// sequencing can shorten head travel, and (b) a sequence-independent cost
/// table drawn from the same `[0.36, 5.36]` s range, where reordering buys
/// nothing. The gap between LERFA+SRFE and LS collapses in (b).
pub fn ablation_sequence_dependence(runs: u64, base_seed: u64) -> Vec<AblationRow> {
    let cpu = CpuModel::instant();
    let mut out = Vec::new();
    for (label, kinematic) in [
        ("kinematic (sequence-dependent)", true),
        ("table (independent)", false),
    ] {
        for alg in [Algorithm::LerfaSrfe, Algorithm::Ls] {
            let mut service = 0.0;
            for run in 0..runs {
                let seed = base_seed + run;
                let s = if kinematic {
                    let (inst, model) = workload::uniform_targets(20, 10, &mut SimRng::seed(seed));
                    let mut rng = SimRng::seed(seed ^ 0xAB1);
                    run_algorithm(&alg, &inst, &model, &cpu, &mut rng)
                        .service_makespan
                        .as_secs_f64()
                } else {
                    let (inst, model) = workload::uniform_table(20, 10, &mut SimRng::seed(seed));
                    let mut rng = SimRng::seed(seed ^ 0xAB1);
                    run_algorithm(&alg, &inst, &model, &cpu, &mut rng)
                        .service_makespan
                        .as_secs_f64()
                };
                service += s;
            }
            out.push(AblationRow {
                label: format!("{label} / {}", alg.name()),
                service_secs: service / runs as f64,
            });
        }
    }
    out
}

/// **A2 (ablation)** — dispatch policy: the engine's batch scheduling
/// (`DispatchPolicy::Scheduled`, LERFA-style with SRFE ordering) against
/// independent per-request min-cost selection, on a bursty workload where
/// all ten motes fire simultaneously. Scheduling the batch balances the two
/// cameras and sequences for short head travel.
pub fn ablation_dispatch_policy(minutes: u64, seed: u64) -> Vec<AblationRow> {
    use aorta_core::{Aorta, DispatchPolicy, EngineConfig};
    use aorta_device::PervasiveLab;
    use aorta_sim::SimDuration;

    let mut out = Vec::new();
    for (label, policy) in [
        ("scheduled batch dispatch", DispatchPolicy::Scheduled),
        ("independent min-cost", DispatchPolicy::MinCost),
    ] {
        let lab = PervasiveLab::standard()
            .with_periodic_events(SimDuration::from_mins(1), SimDuration::ZERO);
        let config = EngineConfig::seeded(seed).with_dispatch(policy);
        let mut aorta = Aorta::with_lab(config, lab);
        for i in 0..10 {
            aorta
                .execute_sql(&format!(
                    r#"CREATE AQ q{i} AS
                       SELECT photo(c.ip, s.loc, "p")
                       FROM sensor s, camera c
                       WHERE s.accel_x > 500 AND s.id = {i} AND coverage(c.id, s.loc)"#
                ))
                .expect("valid query");
        }
        aorta.run_for(SimDuration::from_mins(minutes));
        aorta.run_for(SimDuration::from_secs(30));
        let stats = aorta.stats();
        let latency = stats
            .mean_action_latency
            .map(|d| d.as_secs_f64())
            .unwrap_or(0.0);
        out.push(AblationRow {
            label: format!(
                "{label}: {} ok / {} requests, mean latency {latency:.2}s",
                stats.photos_ok, stats.requests,
            ),
            service_secs: latency,
        });
    }
    out
}

/// **E7 (extension, §8 future work)** — scheduling at scale: makespan and
/// wall-clock scheduling cost for large device fleets, the "large number of
/// heterogeneous devices" regime the paper leaves open.
pub fn e7_scale(runs: u64, base_seed: u64) -> Vec<RatioPoint> {
    let cpu = CpuModel::paper_notebook();
    let mut out = Vec::new();
    for &(n, m) in &[(100usize, 25usize), (200, 50), (400, 100)] {
        for alg in [Algorithm::LerfaSrfe, Algorithm::Srfae, Algorithm::Ls] {
            let mut service = 0.0;
            for run in 0..runs {
                let seed = base_seed + run;
                let (inst, model) = workload::uniform_targets(n, m, &mut SimRng::seed(seed));
                let mut rng = SimRng::seed(seed ^ 0xE7);
                let r = run_algorithm(&alg, &inst, &model, &cpu, &mut rng);
                service += r.total().as_secs_f64();
            }
            out.push(RatioPoint {
                algorithm: alg.name(),
                n,
                m,
                service_secs: service / runs as f64,
            });
        }
    }
    out
}

/// One batch row of the **E8** cluster sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct E8Row {
    /// Shard count *k*.
    pub shards: usize,
    /// Cameras down for the whole round (0 = the uniform arm; a non-zero
    /// block is a shard-local crash storm under stripe partitioning).
    pub crashed_cameras: usize,
    /// Cluster makespan (slowest shard), seconds.
    pub makespan_secs: f64,
    /// Requests re-routed to a sibling after candidate-set exhaustion.
    pub rerouted: usize,
    /// Requests moved at admission by queue-depth saturation routing.
    pub balanced: usize,
    /// Requests no shard could serve.
    pub dropped: usize,
}

/// The live-engine arm of E8: a [`aorta_cluster::ShardManager`] run with
/// periodic events, reporting event→completion latency and the cluster
/// conservation verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct E8LiveRow {
    /// Shard count.
    pub shards: usize,
    /// Requests admitted cluster-wide.
    pub requests: u64,
    /// Requests executed cluster-wide.
    pub executed: u64,
    /// Gateway reroutes.
    pub rerouted: u64,
    /// Device ownership migrations.
    pub migrations: u64,
    /// Mean event→completion latency, seconds.
    pub mean_latency_secs: Option<f64>,
    /// Whether [`aorta_cluster::ClusterStats::check_conservation`] held.
    pub conservation_ok: bool,
}

/// The full **E8** report: batch sweep, live arm, and determinism check.
#[derive(Debug, Clone, PartialEq)]
pub struct E8Report {
    /// Batch rows: shards ∈ {1, 2, 4, 8} × {uniform, crash storm}.
    pub batch: Vec<E8Row>,
    /// The live-engine arm.
    pub live: E8LiveRow,
    /// Uniform-arm makespan ratio, 1 shard over 8 shards.
    pub speedup_1_to_8: f64,
    /// Whether two identically-seeded 8-shard runs rendered byte-identical
    /// outcomes (batch) and traces (live).
    pub deterministic: bool,
    /// FNV-1a digest of the uniform 8-shard batch rendering.
    pub trace_digest: u64,
}

/// E8 workload scale: the request count,
pub const E8_REQUESTS: usize = 800;
/// … the camera fleet size,
pub const E8_CAMERAS: usize = 200;
/// … and the storm arm's crashed block (exactly stripe 0 at 8 shards).
pub const E8_STORM_CRASHED: usize = 25;

fn e8_batch(seed: u64, shards: usize, crashed: usize) -> aorta_cluster::BatchOutcome {
    aorta_cluster::run_photo_batch(&aorta_cluster::BatchConfig {
        requests: E8_REQUESTS,
        cameras: E8_CAMERAS,
        shards,
        seed,
        crashed_cameras: crashed,
    })
}

/// Uniform-arm makespan ratio of 1 shard over 8 shards — the headline
/// cluster claim (≥ 1.5× at the E8 scale).
pub fn e8_speedup(seed: u64) -> f64 {
    let one = e8_batch(seed, 1, 0);
    let eight = e8_batch(seed, 8, 0);
    one.makespan.as_secs_f64() / eight.makespan.as_secs_f64()
}

/// 64-bit FNV-1a over a string, for compact trace fingerprints.
pub fn fnv1a64(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// **E8 (extension)** — sharded multi-engine execution: cluster makespan vs
/// shard count at 800 requests / 200 cameras, with and without a
/// shard-local crash storm, plus a live two-shard engine run and a
/// byte-identical determinism check. See `DESIGN.md` §7.
pub fn e8_cluster(seed: u64) -> E8Report {
    use aorta_cluster::{ClusterConfig, ShardManager};
    use aorta_device::PervasiveLab;
    use aorta_sim::SimDuration;

    let mut batch = Vec::new();
    for &crashed in &[0usize, E8_STORM_CRASHED] {
        for &k in &[1usize, 2, 4, 8] {
            let out = e8_batch(seed, k, crashed);
            batch.push(E8Row {
                shards: k,
                crashed_cameras: crashed,
                makespan_secs: out.makespan.as_secs_f64(),
                rerouted: out.rerouted,
                balanced: out.balanced,
                dropped: out.dropped,
            });
        }
    }
    let speedup_1_to_8 = {
        let one = batch
            .iter()
            .find(|r| r.shards == 1 && r.crashed_cameras == 0);
        let eight = batch
            .iter()
            .find(|r| r.shards == 8 && r.crashed_cameras == 0);
        one.unwrap().makespan_secs / eight.unwrap().makespan_secs
    };

    let live_run = |seed: u64| {
        let lab = PervasiveLab::with_sizes(12, 16, 0)
            .with_periodic_events(SimDuration::from_mins(1), SimDuration::ZERO);
        let mut cluster = ShardManager::new(ClusterConfig::seeded(seed, 2), lab);
        for i in 0..10 {
            cluster
                .execute_sql(&format!(
                    r#"CREATE AQ q{i} AS
                       SELECT photo(c.ip, s.loc, "p")
                       FROM sensor s, camera c
                       WHERE s.accel_x > 500 AND s.id = {i} AND coverage(c.id, s.loc)"#
                ))
                .expect("valid query");
        }
        cluster.run_for(SimDuration::from_mins(10));
        cluster.run_for(SimDuration::from_secs(30));
        cluster
    };
    let live_a = live_run(seed);
    let live_b = live_run(seed);
    let stats = live_a.stats();
    let live = E8LiveRow {
        shards: live_a.shard_count(),
        requests: stats.requests(),
        executed: stats.executed(),
        rerouted: stats.rerouted,
        migrations: stats.migrations,
        mean_latency_secs: stats.mean_latency_secs(),
        conservation_ok: stats.check_conservation().is_ok(),
    };

    let render_a = e8_batch(seed, 8, 0).render();
    let render_b = e8_batch(seed, 8, 0).render();
    let deterministic = render_a == render_b && live_a.render_trace() == live_b.render_trace();

    E8Report {
        batch,
        live,
        speedup_1_to_8,
        deterministic,
        trace_digest: fnv1a64(&render_a),
    }
}

/// One cell of the **E9** overload sweep: one arrival-rate × fault-rate
/// combination run on a 4-shard cluster with the full overload stack on
/// (deadlines, admission control, brownout, breakers).
#[derive(Debug, Clone, PartialEq)]
pub struct E9Row {
    /// Event period, seconds (smaller = higher arrival rate).
    pub period_secs: u64,
    /// Crash rate per device per fault period.
    pub crash_rate: f64,
    /// Requests admitted cluster-wide.
    pub requests: u64,
    /// Full-quality completions.
    pub executed: u64,
    /// Brownout (lo-res) completions.
    pub degraded: u64,
    /// Requests shed by admission or deadline rejection.
    pub shed: u64,
    /// Requests cancelled at execution past their deadline, plus
    /// escalations expired at the gateway.
    pub expired: u64,
    /// Circuit-breaker trips across shards.
    pub breaker_trips: u64,
    /// p99 event→completion latency over all completions, seconds.
    pub p99_latency_secs: f64,
    /// Successes that completed after their deadline (must be 0).
    pub late_successes: u64,
    /// Whether cluster conservation (with overload terms) held.
    pub conservation_ok: bool,
}

/// The full **E9** report.
#[derive(Debug, Clone, PartialEq)]
pub struct E9Report {
    /// Sweep cells: period ∈ {30, 15, 5}s × crash rate ∈ {0, 0.3}.
    pub rows: Vec<E9Row>,
    /// Deadline budget every request carries, seconds.
    pub deadline_secs: f64,
    /// Largest p99 across the sweep — bounded by the deadline.
    pub max_p99_secs: f64,
    /// Whether every cell had zero post-deadline successes.
    pub zero_late_successes: bool,
    /// Whether two identically-seeded saturated runs rendered
    /// byte-identical traces.
    pub deterministic: bool,
    /// FNV-1a digest of the saturated cell's trace.
    pub trace_digest: u64,
}

/// The E9 deadline budget (also the p99 bound successes cannot exceed).
pub const E9_DEADLINE: aorta_sim::SimDuration = aorta_sim::SimDuration::from_secs(3);

fn e9_cluster_run(seed: u64, period_secs: u64, crash_rate: f64) -> aorta_cluster::ShardManager {
    use aorta_cluster::{ClusterConfig, ShardManager};
    use aorta_core::AdmissionConfig;
    use aorta_device::{DeviceId, PervasiveLab};
    use aorta_net::BreakerConfig;
    use aorta_sim::{FaultConfig, FaultPlan, SimDuration};

    let lab = PervasiveLab::with_sizes(12, 16, 0).with_periodic_events(
        SimDuration::from_secs(period_secs),
        SimDuration::from_secs(1),
    );
    let mut config = ClusterConfig::seeded(seed, 4);
    config.engine = config
        .engine
        .with_deadline(E9_DEADLINE)
        .with_admission(AdmissionConfig {
            rate_per_sec: 2.0,
            burst: 8.0,
            slo: SimDuration::from_secs(2),
            brownout_multiple: 0.5,
            shed_multiple: 2.0,
            protected_queries: 2,
        })
        .with_breakers(BreakerConfig::default());
    let mut cluster = ShardManager::new(config, lab);
    for i in 0..10 {
        cluster
            .execute_sql(&format!(
                r#"CREATE AQ q{i} AS
                   SELECT photo(c.ip, s.loc, "p")
                   FROM sensor s, camera c
                   WHERE s.accel_x > 500 AND s.id = {i} AND coverage(c.id, s.loc)"#
            ))
            .expect("valid query");
    }
    if crash_rate > 0.0 {
        let devices: Vec<DeviceId> = (0..12)
            .map(DeviceId::camera)
            .chain((0..16).map(DeviceId::sensor))
            .collect();
        let fc = FaultConfig {
            crash_rate,
            ..FaultConfig::default()
        };
        let plan = FaultPlan::generate(seed ^ 0x0E9, SimDuration::from_mins(3), &devices, &fc);
        cluster.inject_faults(plan);
    }
    cluster.run_for(SimDuration::from_mins(3));
    cluster.run_for(SimDuration::from_secs(30));
    cluster
}

/// **E9 (extension)** — overload sweep: arrival rate × fault rate on a
/// 4-shard cluster with deadlines, admission control, brownout and
/// breakers all enabled. The two headline claims: p99 completion latency
/// stays bounded by the deadline at every point of the sweep, and no
/// success ever lands past its deadline. See `DESIGN.md` §8.
pub fn e9_overload(seed: u64) -> E9Report {
    use aorta_sim::metrics::DurationStats;

    let mut rows = Vec::new();
    for &period_secs in &[30u64, 15, 5] {
        for &crash_rate in &[0.0f64, 0.3] {
            let cluster = e9_cluster_run(seed, period_secs, crash_rate);
            let stats = cluster.stats();
            let mut latencies = DurationStats::new();
            for s in 0..cluster.shard_count() {
                latencies.extend(cluster.shard(s).latency_stats().iter().copied());
            }
            // An empty sample set must not silently report p99 = 0.0: that
            // would vacuously pass the headline `p99 ≤ deadline` check even
            // if completions had gone unmeasured. Zero is only legitimate
            // when nothing completed at all.
            let p99 = match latencies.quantile(0.99) {
                Some(d) => d.as_secs_f64(),
                None => {
                    assert_eq!(
                        stats.executed() + stats.degraded(),
                        0,
                        "completions exist but no latency sample was recorded"
                    );
                    0.0
                }
            };
            rows.push(E9Row {
                period_secs,
                crash_rate,
                requests: stats.requests(),
                executed: stats.executed(),
                degraded: stats.degraded(),
                shed: stats.shed(),
                expired: stats.expired() + stats.gateway_expired,
                breaker_trips: stats.per_shard.iter().map(|s| s.breaker_trips).sum(),
                p99_latency_secs: p99,
                late_successes: stats.late_successes(),
                conservation_ok: stats.check_conservation().is_ok(),
            });
        }
    }
    let max_p99_secs = rows.iter().map(|r| r.p99_latency_secs).fold(0.0, f64::max);
    let zero_late_successes = rows.iter().all(|r| r.late_successes == 0);

    // Determinism witness: the most saturated cell, run twice.
    let trace_a = e9_cluster_run(seed, 5, 0.3).render_trace();
    let trace_b = e9_cluster_run(seed, 5, 0.3).render_trace();

    E9Report {
        rows,
        deadline_secs: E9_DEADLINE.as_secs_f64(),
        max_p99_secs,
        zero_late_successes,
        deterministic: trace_a == trace_b,
        trace_digest: fnv1a64(&trace_a),
    }
}

// ---------------------------------------------------------------------------
// E10 (extension): vectorized event detection with a shared predicate index

/// Number of distinct predicate templates in the E10 palette. Scales of
/// 10³–10⁶ registered AQs all draw from this fixed palette, so the number of
/// *distinct* comparisons — what vectorized detection's cost follows — stays
/// constant while the query count grows three orders of magnitude.
pub const E10_PALETTE: usize = 256;

/// Motes in the E10 lab (= sensor tuples per scan batch epoch).
pub const E10_MOTES: usize = 64;

/// One E10 measurement arm: one detection mode at one registered-AQ scale.
#[derive(Debug, Clone)]
pub struct E10Row {
    /// `"scalar"` or `"vectorized"`.
    pub mode: &'static str,
    /// Registered AQs.
    pub queries: u64,
    /// Detection epochs in the timed window (virtual seconds run).
    pub epochs: u64,
    /// Wall-clock seconds to register all AQs (bulk plan path).
    pub register_secs: f64,
    /// Wall-clock seconds of the timed detection window.
    pub detect_secs: f64,
    /// Detection throughput: scanned sensor tuples per wall-clock second.
    pub tuples_per_sec: f64,
    /// Live distinct comparisons in the predicate index after registration.
    pub index_cmps: u64,
    /// Live query groups in the predicate index after registration.
    pub index_groups: u64,
}

/// The E10 report: throughput rows plus the derived claims.
#[derive(Debug, Clone)]
pub struct E10Report {
    /// One row per (mode, scale) arm.
    pub rows: Vec<E10Row>,
    /// Vectorized over scalar tuples/sec at the largest scale both ran.
    pub speedup: f64,
    /// The scale `speedup` was computed at.
    pub speedup_queries: u64,
    /// Per-epoch wall-cost growth divided by query-count growth for each
    /// consecutive pair of vectorized scales — 1.0 would be exactly linear
    /// in the query count, so sub-linear means every ratio is below 1.0.
    pub sublinear_ratios: Vec<f64>,
    /// Whether every consecutive vectorized scale pair grew sub-linearly.
    pub sublinear_ok: bool,
    /// Whether a mixed firing workload (rising edges, eval errors, fallback
    /// conjuncts, duplicate predicates) produced equal stats and
    /// byte-identical traces under both detection modes.
    pub oracle_match: bool,
}

/// The palette of E10 predicate templates. All are built never to match any
/// sensor tuple (thresholds far outside physical ranges), so throughput
/// measures pure detection, not action dispatch; matching behaviour is
/// covered by the oracle workload and the differential harness. The mix
/// covers single comparisons across operators and attributes, short-circuit
/// two-conjunct chains, heavily shared duplicate comparisons, and
/// non-indexable fallback conjuncts.
fn e10_palette() -> Vec<String> {
    let attrs = ["accel_x", "accel_y", "light", "battery", "temp"];
    (0..E10_PALETTE)
        .map(|k| {
            let attr = attrs[k % attrs.len()];
            let attr2 = attrs[(k + 2) % attrs.len()];
            let hi = 1_000_000 + k;
            match k % 8 {
                0 | 1 => format!("s.{attr} > {hi}"),
                2 | 3 => format!("s.{attr} >= {hi}"),
                4 => format!("s.{attr} = {}", hi + 1_000_000),
                5 => format!("s.{attr} > {hi} AND s.{attr2} >= {}", hi + 2_000_000),
                // Motes report depth >= 1 and temp ~22 °C: indexable `<`
                // comparisons that never match, shared by many queries.
                6 => {
                    if k % 16 == 6 {
                        "s.depth < 1".to_string()
                    } else {
                        "s.temp <= 0".to_string()
                    }
                }
                // distance(x, x) = 0: a guaranteed-false call conjunct that
                // cannot be indexed — exercises the per-group fallback path.
                _ => format!("distance(s.loc, s.loc) >= 1.5 AND s.{attr} > {hi}"),
            }
        })
        .collect()
}

/// Parses and plans one `beep`-on-sensor AQ per palette predicate. The
/// caller clones a template per registered query and renames it; planning
/// happens once per *distinct* predicate, mirroring a real deployment where
/// many users register the same alert shapes.
fn e10_templates(preds: &[String]) -> Vec<aorta_core::AqPlan> {
    use aorta_sql::ast::Statement;
    let catalog = aorta_core::Catalog::with_builtins();
    preds
        .iter()
        .map(|pred| {
            let sql = format!("SELECT beep(t.id) FROM sensor t, sensor s WHERE {pred}");
            let stmts = aorta_sql::parse(&sql).expect("palette SQL parses");
            let Statement::Select(select) = stmts.into_iter().next().expect("one statement") else {
                panic!("palette statements are SELECTs");
            };
            aorta_core::AqPlan::plan("template", &select, &catalog).expect("palette plans")
        })
        .collect()
}

/// Runs one E10 arm and measures registration and detection wall cost.
fn e10_run(
    seed: u64,
    vectorized: bool,
    queries: u64,
    epochs: u64,
    templates: &[aorta_core::AqPlan],
) -> E10Row {
    use aorta_core::{Aorta, EngineConfig};
    use aorta_device::PervasiveLab;
    use aorta_sim::SimDuration;
    use std::time::Instant;

    let lab = PervasiveLab::with_sizes(2, E10_MOTES, 1);
    let config = if vectorized {
        EngineConfig::seeded(seed)
    } else {
        EngineConfig::seeded(seed).with_scalar_detect()
    };
    let mut aorta = Aorta::with_lab(config, lab);
    aorta.disable_trace();
    let t0 = Instant::now();
    for i in 0..queries {
        let mut plan = templates[(i % templates.len() as u64) as usize].clone();
        plan.name = format!("aq{i:07}");
        aorta
            .register_query_plan(plan)
            .expect("bench plans register");
    }
    let register_secs = t0.elapsed().as_secs_f64();
    // One untimed warm-up epoch fills lazy caches (scan-kind list).
    aorta.run_for(SimDuration::from_secs(1));
    let t0 = Instant::now();
    aorta.run_for(SimDuration::from_secs(epochs));
    let detect_secs = t0.elapsed().as_secs_f64().max(1e-9);
    E10Row {
        mode: if vectorized { "vectorized" } else { "scalar" },
        queries,
        epochs,
        register_secs,
        detect_secs,
        tuples_per_sec: (epochs * E10_MOTES as u64) as f64 / detect_secs,
        index_cmps: aorta.predicate_index().cmp_count() as u64,
        index_groups: aorta.predicate_index().group_count() as u64,
    }
}

/// The E10 oracle workload: firing predicates, duplicates (group sharing),
/// a permanent eval-error predicate, non-indexable fallback conjuncts, and
/// never-matching thresholds — everything that distinguishes the two
/// detection paths observably.
fn e10_oracle_templates() -> Vec<aorta_core::AqPlan> {
    let preds: Vec<String> = [
        "s.accel_x > 450",
        "s.accel_x >= 500",
        "s.accel_x > 500",
        "s.accel_x > 500 AND s.temp > 0",
        "distance(s.loc, s.loc) < 1.0 AND s.accel_x > 480",
        "s.loc > 500",
        "s.temp > 1000",
        "s.accel_x <> 0",
        "s.battery >= 0 AND s.accel_x > 520",
        "s.light >= 0 AND s.light <= 100000 AND s.accel_x > 460",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    e10_templates(&preds)
}

/// Runs the oracle workload under both detection modes with identical seeds
/// and compares every observable: stats and trace bytes.
fn e10_oracle_match(seed: u64) -> bool {
    use aorta_core::{Aorta, EngineConfig};
    use aorta_device::PervasiveLab;
    use aorta_sim::SimDuration;

    let templates = e10_oracle_templates();
    let run = |vectorized: bool| {
        let lab = PervasiveLab::standard()
            .with_periodic_events(SimDuration::from_mins(1), SimDuration::from_secs(2));
        let config = if vectorized {
            EngineConfig::seeded(seed)
        } else {
            EngineConfig::seeded(seed).with_scalar_detect()
        };
        let mut aorta = Aorta::with_lab(config, lab);
        // Three copies of each template so groups have several members.
        for copy in 0..3 {
            for (i, t) in templates.iter().enumerate() {
                let mut plan = t.clone();
                plan.name = format!("oq{copy}_{i:02}");
                aorta.register_query_plan(plan).expect("oracle plans");
            }
        }
        aorta.run_for(SimDuration::from_mins(5));
        (aorta.stats(), aorta.trace().render())
    };
    let (vec_stats, vec_trace) = run(true);
    let (sca_stats, sca_trace) = run(false);
    vec_stats == sca_stats && vec_trace == sca_trace
}

/// **E10** — vectorized detection throughput and scaling. `full` runs the
/// committed 10³ → 10⁵ → 10⁶ sweep; otherwise only the 10³ smoke arms run
/// (the CI configuration). The scalar oracle is measured at every scale up
/// to 10⁵ — at 10⁶ its per-query scan loop is impractically slow, which is
/// the point of the experiment.
pub fn e10_detect(seed: u64, full: bool) -> E10Report {
    let templates = e10_templates(&e10_palette());
    let (vec_scales, scalar_scales): (&[u64], &[u64]) = if full {
        (&[1_000, 100_000, 1_000_000], &[1_000, 100_000])
    } else {
        (&[1_000], &[1_000])
    };
    let mut rows = Vec::new();
    for &q in scalar_scales {
        // The scalar loop's epoch cost is linear in the query count; keep
        // large-scale arms short and normalise per epoch.
        let epochs = if q >= 100_000 { 5 } else { 30 };
        rows.push(e10_run(seed, false, q, epochs, &templates));
    }
    for &q in vec_scales {
        rows.push(e10_run(seed, true, q, 30, &templates));
    }
    let common = scalar_scales.iter().copied().max().unwrap_or(0);
    let tps = |mode: &str, q: u64| {
        rows.iter()
            .find(|r| r.mode == mode && r.queries == q)
            .map(|r| r.tuples_per_sec)
            .unwrap_or(0.0)
    };
    let scalar_tps = tps("scalar", common);
    let speedup = if scalar_tps > 0.0 {
        tps("vectorized", common) / scalar_tps
    } else {
        0.0
    };
    let vec_rows: Vec<&E10Row> = vec_scales
        .iter()
        .map(|q| {
            rows.iter()
                .find(|r| r.mode == "vectorized" && r.queries == *q)
                .expect("every vectorized scale ran")
        })
        .collect();
    let sublinear_ratios: Vec<f64> = vec_rows
        .windows(2)
        .map(|w| {
            let per_epoch_a = w[0].detect_secs / w[0].epochs as f64;
            let per_epoch_b = w[1].detect_secs / w[1].epochs as f64;
            (per_epoch_b / per_epoch_a) / (w[1].queries as f64 / w[0].queries as f64)
        })
        .collect();
    let sublinear_ok = sublinear_ratios.iter().all(|r| *r < 1.0);
    E10Report {
        rows,
        speedup,
        speedup_queries: common,
        sublinear_ratios,
        sublinear_ok,
        oracle_match: e10_oracle_match(seed ^ 0xE10),
    }
}

/// One arm of the **E11** kill-and-recover experiment: a WAL-logged
/// cluster where one or more shards process-crash mid-wave and are rebuilt
/// from their logs, compared record-for-record against a crash-immune
/// reference run of the same seed.
#[derive(Debug, Clone, PartialEq)]
pub struct E11Row {
    /// Shard count.
    pub shards: usize,
    /// Shards crashed (each on its own seeded instant).
    pub crashes: usize,
    /// Snapshot cadence in log frames (a huge value forces genesis replay).
    pub snapshot_every: usize,
    /// True when the log lived in files on disk rather than memory.
    pub durable: bool,
    /// Requests admitted cluster-wide.
    pub requests: u64,
    /// Requests executed at full quality.
    pub executed: u64,
    /// Crash recoveries performed (must equal `crashes`).
    pub recoveries: u64,
    /// Log records replayed across all recoveries.
    pub records_replayed: u64,
    /// Host wall-clock milliseconds per recovery (machine-dependent).
    pub recovery_wall_ms: Vec<u64>,
    /// Records appended across all shard logs.
    pub wal_appends: u64,
    /// Live bytes across all shard logs.
    pub wal_bytes: u64,
    /// Snapshots vaulted across all shards.
    pub snapshots: u64,
    /// Whether the cluster ledger closed.
    pub conservation_ok: bool,
    /// Whether stats + trace matched the uninterrupted reference exactly.
    pub identical_to_reference: bool,
}

/// The **E11** report: per-arm rows plus the cross-cutting verdicts.
#[derive(Debug, Clone, PartialEq)]
pub struct E11Report {
    /// One row per (shards, crashes, cadence, store) arm.
    pub rows: Vec<E11Row>,
    /// Every arm's ledger closed.
    pub all_conserved: bool,
    /// Every arm matched its reference byte-for-byte.
    pub all_identical: bool,
    /// Two repetitions of the first arm rendered byte-identical traces.
    pub deterministic: bool,
    /// FNV-1a digest of the first arm's recovered trace.
    pub trace_digest: u64,
}

/// E11 fleet: the camera block …
pub const E11_CAMERAS: usize = 12;
/// … and the mote block.
pub const E11_MOTES: usize = 16;

/// One seeded kill-and-recover cluster run. `wal` is `(cadence, dir)` —
/// `None` runs without logging; `immune` absorbs the crashes instead
/// (the uninterrupted reference).
fn e11_cluster(
    seed: u64,
    shards: usize,
    crashes: usize,
    wal: Option<(usize, Option<std::path::PathBuf>)>,
    immune: bool,
) -> aorta_cluster::ShardManager {
    use aorta_cluster::{ClusterConfig, ShardManager};
    use aorta_device::{DeviceId, PervasiveLab};
    use aorta_sim::{FaultEvent, FaultPlan, SimDuration, SimTime};

    let lab = PervasiveLab::with_sizes(E11_CAMERAS, E11_MOTES, 0)
        .with_periodic_events(SimDuration::from_mins(1), SimDuration::ZERO);
    let mut config = ClusterConfig::seeded(seed, shards).with_imbalance_threshold(u64::MAX);
    if let Some((every, dir)) = wal {
        config = match dir {
            Some(d) => config.with_wal_dir(every, d),
            None => config.with_wal(every),
        };
    }
    let mut cluster = ShardManager::new(config, lab);
    for i in 0..10 {
        cluster
            .execute_sql(&format!(
                r#"CREATE AQ q{i} AS
                   SELECT photo(c.ip, s.loc, "p")
                   FROM sensor s, camera c
                   WHERE s.accel_x > 500 AND s.id = {i} AND coverage(c.id, s.loc)"#
            ))
            .expect("valid query");
    }
    // Victim cameras on `crashes` distinct shards, chosen deterministically.
    let mut victims: Vec<(usize, DeviceId)> = Vec::new();
    for c in 0..E11_CAMERAS as u32 {
        let id = DeviceId::camera(c);
        let owner = cluster.shard_owning(id).expect("camera owned");
        if !victims.iter().any(|(s, _)| *s == owner) {
            victims.push((owner, id));
        }
        if victims.len() == crashes {
            break;
        }
    }
    assert_eq!(victims.len(), crashes, "need {crashes} distinct shards");
    let mut plan = FaultPlan::new();
    for (i, (owner, id)) in victims.iter().enumerate() {
        if immune {
            cluster.shard_mut(*owner).grant_crash_immunity(1);
        }
        plan.schedule(
            SimTime::ZERO + SimDuration::from_secs(100 + 37 * i as u64),
            FaultEvent::ProcessCrash(*id),
        );
    }
    cluster.inject_faults(plan);
    cluster.run_for(SimDuration::from_mins(5));
    cluster.run_for(SimDuration::from_secs(30));
    cluster
}

/// **E11 (extension)** — durable control plane: kill shards mid-wave at
/// seeded points, rebuild each from its write-ahead log (snapshot + replay
/// suffix), and prove the recovered run is *indistinguishable* from one
/// that was never interrupted: conservation holds and stats + trace are
/// byte-identical to a crash-immune reference. See `DESIGN.md` §11.
pub fn e11_wal(seed: u64, full: bool) -> E11Report {
    // (shards, crashes, snapshot cadence, durable file store)
    let mut arms: Vec<(usize, usize, usize, bool)> = vec![(2, 1, 64, true)];
    if full {
        arms.push((4, 2, 256, false));
        // Cadence beyond the log length: recovery replays from genesis.
        arms.push((4, 2, 1_000_000, false));
    }

    let mut rows = Vec::new();
    for (i, &(shards, crashes, snapshot_every, durable)) in arms.iter().enumerate() {
        let arm_seed = seed ^ (i as u64) << 8;
        let dir = durable.then(|| {
            let d = std::env::temp_dir().join(format!("aorta-e11-{arm_seed:08x}"));
            let _ = std::fs::remove_dir_all(&d);
            d
        });
        let live = e11_cluster(
            arm_seed,
            shards,
            crashes,
            Some((snapshot_every, dir.clone())),
            false,
        );
        let reference = e11_cluster(arm_seed, shards, crashes, None, true);
        let stats = live.stats();
        let report = live.wal_report().expect("wal is on");
        let identical =
            stats == reference.stats() && live.render_trace() == reference.render_trace();
        rows.push(E11Row {
            shards,
            crashes,
            snapshot_every,
            durable,
            requests: stats.requests(),
            executed: stats.executed(),
            recoveries: report.recoveries,
            records_replayed: report.records_replayed,
            recovery_wall_ms: report.recovery_wall_ms.clone(),
            wal_appends: report.per_shard.iter().map(|s| s.appends).sum(),
            wal_bytes: report.per_shard.iter().map(|s| s.bytes).sum(),
            snapshots: report.snapshots.iter().sum(),
            conservation_ok: stats.check_conservation().is_ok(),
            identical_to_reference: identical,
        });
        drop(live);
        if let Some(d) = dir {
            let _ = std::fs::remove_dir_all(&d);
        }
    }

    // Determinism: two repetitions of the first arm, traces compared raw.
    let (shards, crashes, every, _) = arms[0];
    let rep_a = e11_cluster(seed, shards, crashes, Some((every, None)), false);
    let rep_b = e11_cluster(seed, shards, crashes, Some((every, None)), false);
    let trace_a = rep_a.render_trace();
    let deterministic = trace_a == rep_b.render_trace() && rep_a.stats() == rep_b.stats();

    E11Report {
        all_conserved: rows.iter().all(|r| r.conservation_ok),
        all_identical: rows.iter().all(|r| r.identical_to_reference),
        rows,
        deterministic,
        trace_digest: fnv1a64(&trace_a),
    }
}

/// One arm of the **E12** cross-host failover experiment: a WAL-logged,
/// failover-enabled cluster where shards process-crash mid-wave inside
/// asymmetric partition windows and are rebuilt on fresh hosts from
/// shipped snapshot images.
#[derive(Debug, Clone, PartialEq)]
pub struct E12Row {
    /// Shard count.
    pub shards: usize,
    /// Shards crashed (each on its own seeded instant, under a partition).
    pub crashes: usize,
    /// Per-chunk loss probability on the image transfer path.
    pub ship_loss: f64,
    /// Requests admitted cluster-wide.
    pub requests: u64,
    /// Requests executed at full quality.
    pub executed: u64,
    /// Requests completed at degraded (brownout) quality.
    pub degraded: u64,
    /// Requests shed by admission or deadline rejection.
    pub shed: u64,
    /// Escalations the gateway delivered to a sibling.
    pub rerouted: u64,
    /// Escalations terminally dropped at the gateway.
    pub gateway_dropped: u64,
    /// Escalations whose deadline lapsed at the gateway.
    pub gateway_expired: u64,
    /// Cross-host failovers completed (must equal `crashes`).
    pub failovers: u64,
    /// Degraded-window length per failover, in virtual microseconds
    /// (crash detection to adoption of the rebuilt shard).
    pub degraded_window_us: Vec<u64>,
    /// Snapshot-image bytes shipped across all failovers.
    pub bytes_shipped: u64,
    /// Transfer rounds across all failovers (loss forces retransmission).
    pub ship_rounds: u64,
    /// Log records the adopting hosts replayed.
    pub records_replayed: u64,
    /// The fresh host ids the shards were rebuilt on.
    pub new_hosts: Vec<u32>,
    /// The post-run zombie probe: a message stamped with the fenced-off
    /// epoch was rejected and counted, not applied.
    pub zombie_probe_rejected: bool,
    /// Successes past their deadline (must be zero).
    pub late_successes: u64,
    /// Whether the cluster ledger closed.
    pub conservation_ok: bool,
}

/// The **E12** report: per-arm rows plus the cross-cutting verdicts.
#[derive(Debug, Clone, PartialEq)]
pub struct E12Report {
    /// One row per (shards, crashes, ship loss) arm.
    pub rows: Vec<E12Row>,
    /// Every arm's ledger closed.
    pub all_conserved: bool,
    /// Every arm's zombie probe was fenced.
    pub all_fenced: bool,
    /// No arm completed a success past its deadline.
    pub no_late_successes: bool,
    /// Flipping any single byte of an encoded snapshot image made the
    /// receiver refuse it (the integrity gate swept every offset).
    pub corruption_detected: bool,
    /// Two repetitions of the first arm were byte-identical (trace, stats,
    /// and failover report).
    pub deterministic: bool,
    /// FNV-1a digest of the first arm's trace.
    pub trace_digest: u64,
}

/// One seeded kill-under-partition cluster run with cross-host failover.
/// Each victim shard process-crashes mid-wave inside a pair of asymmetric
/// partition windows (both directions of its gateway path to the next
/// shard blacked out around the crash instant).
fn e12_cluster(seed: u64, shards: usize, crashes: usize, loss: f64) -> aorta_cluster::ShardManager {
    use aorta_cluster::{ClusterConfig, FailoverConfig, ShardManager};
    use aorta_device::{DeviceId, PervasiveLab};
    use aorta_net::ShipConfig;
    use aorta_sim::{FaultEvent, FaultPlan, SimDuration, SimTime};

    let lab = PervasiveLab::with_sizes(E11_CAMERAS, E11_MOTES, 0)
        .with_periodic_events(SimDuration::from_mins(1), SimDuration::ZERO);
    let config = ClusterConfig::seeded(seed, shards)
        .with_imbalance_threshold(u64::MAX)
        .with_wal(128)
        .with_failover(FailoverConfig {
            ship: ShipConfig {
                loss,
                ..ShipConfig::default()
            },
            ..FailoverConfig::default()
        });
    let mut cluster = ShardManager::new(config, lab);
    for i in 0..10 {
        cluster
            .execute_sql(&format!(
                r#"CREATE AQ q{i} AS
                   SELECT photo(c.ip, s.loc, "p")
                   FROM sensor s, camera c
                   WHERE s.accel_x > 500 AND s.id = {i} AND coverage(c.id, s.loc)"#
            ))
            .expect("valid query");
    }
    let mut victims: Vec<(usize, DeviceId)> = Vec::new();
    for c in 0..E11_CAMERAS as u32 {
        let id = DeviceId::camera(c);
        let owner = cluster.shard_owning(id).expect("camera owned");
        if !victims.iter().any(|(s, _)| *s == owner) {
            victims.push((owner, id));
        }
        if victims.len() == crashes {
            break;
        }
    }
    assert_eq!(victims.len(), crashes, "need {crashes} distinct shards");
    let mut plan = FaultPlan::new();
    for (i, (owner, id)) in victims.iter().enumerate() {
        let crash_at = SimTime::ZERO + SimDuration::from_secs(100 + 37 * i as u64);
        let sibling = ((*owner + 1) % shards) as u32;
        let window = SimDuration::from_secs(20);
        let blackout_from = crash_at - SimDuration::from_secs(5);
        plan.schedule(
            blackout_from,
            FaultEvent::Partition {
                a: *owner as u32,
                b: sibling,
                window,
            },
        );
        plan.schedule(
            blackout_from,
            FaultEvent::Partition {
                a: sibling,
                b: *owner as u32,
                window,
            },
        );
        plan.schedule(crash_at, FaultEvent::ProcessCrash(*id));
    }
    cluster.inject_faults(plan);
    cluster.run_for(SimDuration::from_mins(5));
    cluster.run_for(SimDuration::from_secs(30));
    cluster
}

/// A minimal escalation message for the post-run zombie probe (the fence
/// inspects the epoch stamp, not the payload).
fn e12_probe_request() -> aorta_core::ActionRequest {
    aorta_core::ActionRequest {
        query_id: u32::MAX,
        action: "photo".into(),
        event_tuple: aorta_data::Tuple::empty(),
        event_binding: "s".into(),
        event_kind: aorta_device::DeviceKind::Sensor,
        device_binding: None,
        args: Vec::new(),
        candidates: Vec::new(),
        created_at: aorta_sim::SimTime::ZERO,
        deadline: aorta_sim::SimTime::MAX,
        degraded: false,
        attempts: 0,
        hops: 0,
    }
}

/// Every single-byte corruption of an encoded snapshot image must be
/// refused by the receiver's decode gate — manifest, checksum slot, and
/// payload alike.
fn e12_corruption_sweep() -> bool {
    use aorta_sim::SimTime;
    use aorta_wal::{SnapshotImage, WalRecord};

    let image = SnapshotImage {
        shard: 3,
        epoch: 7,
        fingerprint: 0xFEED_F00D_DEAD_BEEF,
        prefix: vec![WalRecord::Genesis {
            fingerprint: 0xFEED_F00D_DEAD_BEEF,
        }],
        suffix: vec![WalRecord::RunUntil {
            deadline: SimTime::from_micros(123_456),
        }],
    };
    let bytes = image.encode();
    (0..bytes.len()).all(|i| {
        let mut corrupt = bytes.clone();
        corrupt[i] ^= 0x01;
        SnapshotImage::decode(&corrupt).is_err()
    })
}

/// **E12 (extension)** — cross-host shard failover: kill shards mid-wave
/// under asymmetric partition windows, rebuild each on a *fresh host* from
/// a CRC-framed snapshot image shipped over a lossy link, and prove the
/// degraded window loses nothing: conservation holds, no success lands
/// past its deadline, a stale-epoch zombie message is fenced, and the whole
/// scenario is byte-identical across repetitions. See `DESIGN.md` §12.
pub fn e12_failover(seed: u64, full: bool) -> E12Report {
    // (shards, crashes, image-transfer loss rate)
    let mut arms: Vec<(usize, usize, f64)> = vec![(2, 1, 0.0)];
    if full {
        arms.push((4, 2, 0.05));
        arms.push((4, 1, 0.25));
    }

    let mut rows = Vec::new();
    for (i, &(shards, crashes, loss)) in arms.iter().enumerate() {
        let arm_seed = seed ^ (i as u64) << 8;
        let mut cluster = e12_cluster(arm_seed, shards, crashes, loss);
        let stats = cluster.stats();
        let events = cluster.failover_report();
        // Zombie probe: replay a message from the fenced-off incarnation.
        let zombie_probe_rejected = events.first().is_some_and(|ev| {
            let rejected = !cluster.inject_escalation(ev.shard, ev.epoch - 1, e12_probe_request());
            rejected && cluster.zombie_rejects() == 1
        });
        rows.push(E12Row {
            shards,
            crashes,
            ship_loss: loss,
            requests: stats.requests(),
            executed: stats.executed(),
            degraded: stats.degraded(),
            shed: stats.shed(),
            rerouted: stats.rerouted,
            gateway_dropped: stats.gateway_dropped,
            gateway_expired: stats.gateway_expired,
            failovers: stats.failovers,
            degraded_window_us: events
                .iter()
                .map(|ev| ev.degraded_window().as_micros())
                .collect(),
            bytes_shipped: events.iter().map(|ev| ev.bytes_shipped).sum(),
            ship_rounds: events.iter().map(|ev| u64::from(ev.ship_rounds)).sum(),
            records_replayed: events.iter().map(|ev| ev.records_replayed).sum(),
            new_hosts: events.iter().map(|ev| ev.new_host).collect(),
            zombie_probe_rejected,
            late_successes: stats.late_successes(),
            conservation_ok: stats.check_conservation().is_ok(),
        });
    }

    // Determinism: two repetitions of the first arm, compared raw.
    let (shards, crashes, loss) = arms[0];
    let rep_a = e12_cluster(seed, shards, crashes, loss);
    let rep_b = e12_cluster(seed, shards, crashes, loss);
    let trace_a = rep_a.render_trace();
    let deterministic = trace_a == rep_b.render_trace()
        && rep_a.stats() == rep_b.stats()
        && rep_a.failover_report() == rep_b.failover_report();

    E12Report {
        all_conserved: rows.iter().all(|r| r.conservation_ok),
        all_fenced: rows
            .iter()
            .all(|r| r.failovers == r.crashes as u64 && r.zombie_probe_rejected),
        no_late_successes: rows.iter().all(|r| r.late_successes == 0),
        corruption_detected: e12_corruption_sweep(),
        rows,
        deterministic,
        trace_digest: fnv1a64(&trace_a),
    }
}

/// One arm of the **E13** multicore sweep: one `(shards, threads)` cell of
/// the scaled-up live wave.
#[derive(Debug, Clone, PartialEq)]
pub struct E13Row {
    /// Shard count *k*.
    pub shards: usize,
    /// Worker threads stepping shards between synchronization windows.
    pub threads: usize,
    /// Wall-clock time of the wave, seconds (machine-dependent).
    pub wall_secs: f64,
    /// Requests admitted cluster-wide.
    pub requests: u64,
    /// Requests executed cluster-wide.
    pub executed: u64,
    /// FNV-1a digest of the full trace + stats rendering.
    pub trace_fnv: u64,
    /// Whether this arm's digest equals the 1-thread oracle's at the same
    /// shard count (trivially true for the oracle itself).
    pub matches_oracle: bool,
}

/// The full **E13** report: wall-clock (not virtual-makespan) scaling of
/// parallel shard stepping, with every threaded arm byte-checked against
/// the sequential oracle.
#[derive(Debug, Clone, PartialEq)]
pub struct E13Report {
    /// Camera fleet size.
    pub cameras: usize,
    /// Mote fleet size (each mote spikes every 30 virtual seconds).
    pub motes: usize,
    /// Registered AQ count.
    pub queries: usize,
    /// Virtual wave length per arm, seconds (plus a 30 s drain).
    pub virtual_secs: u64,
    /// Host logical core count (`std::thread::available_parallelism`) —
    /// recorded because wall-clock speedup is bounded by it.
    pub host_cores: usize,
    /// One row per `(shards, threads)` cell.
    pub rows: Vec<E13Row>,
    /// Every threaded arm matched its 1-thread oracle's digest.
    pub all_match: bool,
    /// Wall-clock ratio of 1 thread over 4 threads at the largest shard
    /// count in the sweep (8 in the full run). ≤ 1 on a single-core host.
    pub speedup_4t: f64,
}

/// E13 workload scale: the camera fleet (10× the E8 wave),
pub const E13_CAMERAS: usize = 2000;
/// … the mote fleet driving the periodic event load,
pub const E13_MOTES: usize = 240;
/// … and the registered-query count (coverage-only predicates, so every
/// mote's spike fans out to all of them and every shard stays busy).
pub const E13_QUERIES: usize = 8;

/// Runs one E13 cell and returns `(wall_secs, requests, executed, digest)`.
/// Only the wave itself is timed; lab construction and AQ registration are
/// setup. The digest covers the full trace *and* the stats snapshot, so a
/// single flipped byte anywhere in the run changes it.
fn e13_arm(seed: u64, shards: usize, threads: usize, virtual_secs: u64) -> (f64, u64, u64, u64) {
    use aorta_cluster::{ClusterConfig, ShardManager};
    use aorta_device::PervasiveLab;
    use aorta_sim::SimDuration;
    use std::time::Instant;

    // Reliable cameras keep the wave escalation-free: probe failures would
    // otherwise escalate ~7% of requests to the gateway, and every
    // cross-shard escalation is a synchronization point that trips the
    // parallel window back to the sequential oracle (see DESIGN.md §13).
    // E13 measures the scaling of the clean-wave fast path; the storm
    // proptests in tests/determinism.rs cover the escalating case.
    let lab = PervasiveLab::with_sizes(E13_CAMERAS, E13_MOTES, 0)
        .with_reliable_cameras()
        .with_periodic_events(SimDuration::from_secs(30), SimDuration::ZERO);
    let config = ClusterConfig::seeded(seed, shards)
        .with_imbalance_threshold(u64::MAX)
        .with_threads(threads);
    let mut cluster = ShardManager::new(config, lab);
    for i in 0..E13_QUERIES {
        cluster
            .execute_sql(&format!(
                r#"CREATE AQ q{i} AS
                   SELECT photo(c.ip, s.loc, "p")
                   FROM sensor s, camera c
                   WHERE s.accel_x > 500 AND coverage(c.id, s.loc)"#
            ))
            .expect("valid query");
    }
    let start = Instant::now();
    cluster.run_for(SimDuration::from_secs(virtual_secs));
    cluster.run_for(SimDuration::from_secs(30));
    let wall = start.elapsed().as_secs_f64();
    let stats = cluster.stats();
    stats.check_conservation().expect("e13 ledger");
    let digest = fnv1a64(&format!("{}\n{:?}", cluster.render_trace(), stats));
    (wall, stats.requests(), stats.executed(), digest)
}

/// **E13 (extension)** — true multicore execution: the E8 live wave scaled
/// to 2000 cameras / 240 motes, swept over shards × threads ∈ {1,2,4,8}²
/// (full) or one smoke cell (4 shards, threads {1,4}). Each threaded arm's
/// trace digest is checked against the 1-thread oracle at the same shard
/// count. See `DESIGN.md` §13.
pub fn e13_parallel(seed: u64, full: bool) -> E13Report {
    let virtual_secs: u64 = if full { 120 } else { 60 };
    let shard_arms: &[usize] = if full { &[1, 2, 4, 8] } else { &[4] };
    let thread_arms: &[usize] = if full { &[1, 2, 4, 8] } else { &[1, 4] };
    let host_cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    // Untimed warm-up: without it the first measured arm alone pays the
    // process's heap growth and page-fault warm-up, which skews the very
    // 1-thread oracle every other arm is compared against.
    let _ = e13_arm(seed ^ 1, shard_arms[0], 1, 30);

    let mut rows = Vec::new();
    for &k in shard_arms {
        let mut oracle_fnv = 0u64;
        for &t in thread_arms {
            let (wall_secs, requests, executed, trace_fnv) = e13_arm(seed, k, t, virtual_secs);
            if t == 1 {
                oracle_fnv = trace_fnv;
            }
            rows.push(E13Row {
                shards: k,
                threads: t,
                wall_secs,
                requests,
                executed,
                trace_fnv,
                matches_oracle: trace_fnv == oracle_fnv,
            });
        }
    }
    let all_match = rows.iter().all(|r| r.matches_oracle);
    let k_max = *shard_arms.last().expect("non-empty sweep");
    let wall = |t: usize| {
        rows.iter()
            .find(|r| r.shards == k_max && r.threads == t)
            .map(|r| r.wall_secs)
    };
    let speedup_4t = match (wall(1), wall(4)) {
        (Some(one), Some(four)) if four > 0.0 => one / four,
        _ => 1.0,
    };
    E13Report {
        cameras: E13_CAMERAS,
        motes: E13_MOTES,
        queries: E13_QUERIES,
        virtual_secs,
        host_cores,
        rows,
        all_match,
        speedup_4t,
    }
}

/// One arm of the **E14** in-network pushdown experiment: one workload,
/// run with pushdown accounting on, byte-checked against the same seed
/// with pushdown off.
#[derive(Debug, Clone, PartialEq)]
pub struct E14Row {
    /// Workload label.
    pub workload: &'static str,
    /// Simulated minutes.
    pub minutes: u64,
    /// Registered AQ count.
    pub queries: usize,
    /// Tuples that shipped their full payload (hop-weighted units are
    /// bytes; tuple counts are raw).
    pub shipped: u64,
    /// Tuples suppressed at the device (a 1-byte marker shipped instead).
    pub suppressed: u64,
    /// Share of scanned tuples suppressed, percent.
    pub suppression_pct: f64,
    /// Hop-weighted bytes the same run would ship with pushdown off.
    pub baseline_bytes: u64,
    /// Hop-weighted bytes actually on the wire (replies + markers).
    pub wire_bytes: u64,
    /// `baseline - wire`.
    pub saved_bytes: u64,
    /// Savings as a share of the baseline, percent.
    pub saved_pct: f64,
    /// FNV-1a digest of the pushdown run's trace + stats.
    pub trace_fnv: u64,
    /// Whether the pushdown-off oracle produced the identical digest —
    /// detections must be byte-for-byte unaffected by suppression.
    pub identical_to_oracle: bool,
}

/// The full **E14** report.
#[derive(Debug, Clone, PartialEq)]
pub struct E14Report {
    /// One row per workload arm.
    pub rows: Vec<E14Row>,
    /// Every arm's pushdown run matched its pushdown-off oracle exactly.
    pub all_identical: bool,
    /// Two repetitions of the first arm rendered identical digests.
    pub deterministic: bool,
    /// The best savings across arms, percent of baseline bytes.
    pub best_saved_pct: f64,
}

/// Parses and plans one photo-on-camera AQ per predicate: the event part
/// is the sensor fleet (suppressible — no query targets sensors as
/// devices), the device part the camera fleet (never suppressed: camera
/// tuples feed the candidate join).
fn e14_templates(preds: &[&str]) -> Vec<aorta_core::AqPlan> {
    use aorta_sql::ast::Statement;
    let catalog = aorta_core::Catalog::with_builtins();
    preds
        .iter()
        .map(|pred| {
            let sql = format!(
                r#"SELECT photo(c.ip, s.loc, "p")
                   FROM sensor s, camera c
                   WHERE {pred} AND coverage(c.id, s.loc)"#
            );
            let stmts = aorta_sql::parse(&sql).expect("e14 SQL parses");
            let Statement::Select(select) = stmts.into_iter().next().expect("one statement") else {
                panic!("e14 statements are SELECTs");
            };
            aorta_core::AqPlan::plan("template", &select, &catalog).expect("e14 plans")
        })
        .collect()
}

/// Runs one E14 arm and returns the pushdown ledger plus the trace + stats
/// digest. The digest covers every observable of the run, so a single
/// detection or counter perturbed by suppression would flip it.
fn e14_arm(
    seed: u64,
    preds: &[&str],
    minutes: u64,
    pushdown: bool,
) -> (aorta_core::PushdownStats, u64) {
    use aorta_core::{Aorta, EngineConfig};
    use aorta_device::PervasiveLab;
    use aorta_sim::SimDuration;

    let lab = PervasiveLab::standard()
        .with_periodic_events(SimDuration::from_secs(30), SimDuration::from_secs(3));
    let mut config = EngineConfig::seeded(seed);
    if pushdown {
        config = config.with_pushdown();
    }
    let mut aorta = Aorta::with_lab(config, lab);
    for (i, plan) in e14_templates(preds).into_iter().enumerate() {
        let mut plan = plan;
        plan.name = format!("pq{i:02}");
        aorta.register_query_plan(plan).expect("e14 plans register");
    }
    aorta.run_for(SimDuration::from_mins(minutes));
    let digest = fnv1a64(&format!("{}\n{:?}", aorta.trace().render(), aorta.stats()));
    (aorta.pushdown_stats(), digest)
}

/// **E14 (extension)** — in-network operator pushdown: sliding-window
/// aggregates and indexable filters are pushed onto the sensor side, and
/// samples that no watching query can use ship a 1-byte marker instead of
/// a full reply. Three workloads bound the savings: sparse thresholds
/// (most samples suppressed), windowed aggregates (device-resident
/// windows keep smoothing exact), and a mixed set whose erroring and
/// non-pushable predicates force conservative shipping. Every arm's
/// pushdown run is byte-checked against the same seed with pushdown off
/// — suppression is accounting, never behaviour. See `DESIGN.md` §14.
pub fn e14_pushdown(seed: u64, full: bool) -> E14Report {
    // Sparse alerts: spikes are ~1 scan in 30 per mote, so almost every
    // sample fails every prefix and ships a marker.
    let threshold: &[&str] = &["s.accel_x > 500", "s.accel_x >= 520", "s.light > 100000"];
    // Windowed smoothing: suppression must consult the device-resident
    // window, not just the current sample.
    let windowed: &[&str] = &[
        "AVG(s.accel_x) OVER LAST 4 > 450",
        "MAX(s.accel_x) OVER LAST 3 >= 500",
        "COUNT(s.temp) OVER LAST 8 < 1",
    ];
    // Adversarial mix: an erroring comparison (`s.loc > 500`) must ship
    // every tuple it cannot decide, and a leading call conjunct is not
    // pushable at all — savings should collapse, correctness must not.
    let mixed: &[&str] = &[
        "s.accel_x > 500",
        "AVG(s.accel_x) OVER LAST 4 > 450",
        "s.loc > 500",
        "distance(s.loc, s.loc) < 1.0 AND s.accel_x > 480",
    ];
    let arms: Vec<(&'static str, &[&str])> = if full {
        vec![
            ("threshold", threshold),
            ("windowed", windowed),
            ("mixed", mixed),
        ]
    } else {
        vec![("threshold", threshold)]
    };
    let minutes: u64 = if full { 10 } else { 3 };

    let mut rows = Vec::new();
    for (i, (workload, preds)) in arms.iter().enumerate() {
        let arm_seed = seed ^ (i as u64) << 8;
        let (push, on_fnv) = e14_arm(arm_seed, preds, minutes, true);
        let (off_push, off_fnv) = e14_arm(arm_seed, preds, minutes, false);
        assert_eq!(
            off_push,
            aorta_core::PushdownStats::default(),
            "oracle arm must not account"
        );
        let total = push.shipped_tuples + push.suppressed_tuples;
        let pct = |part: u64, whole: u64| {
            if whole == 0 {
                0.0
            } else {
                100.0 * part as f64 / whole as f64
            }
        };
        rows.push(E14Row {
            workload,
            minutes,
            queries: preds.len(),
            shipped: push.shipped_tuples,
            suppressed: push.suppressed_tuples,
            suppression_pct: pct(push.suppressed_tuples, total),
            baseline_bytes: push.baseline_bytes,
            wire_bytes: push.wire_bytes(),
            saved_bytes: push.saved_bytes(),
            saved_pct: pct(push.saved_bytes(), push.baseline_bytes),
            trace_fnv: on_fnv,
            identical_to_oracle: on_fnv == off_fnv,
        });
    }
    let (_, first_preds) = arms[0];
    let (_, repeat_fnv) = e14_arm(seed, first_preds, minutes, true);
    E14Report {
        all_identical: rows.iter().all(|r| r.identical_to_oracle),
        deterministic: repeat_fnv == rows[0].trace_fnv,
        best_saved_pct: rows.iter().map(|r| r.saved_pct).fold(0.0, f64::max),
        rows,
    }
}

#[cfg(test)]
mod pushdown_experiment_tests {
    use super::*;

    #[test]
    fn e14_smoke_saves_bytes_without_changing_a_byte() {
        let report = e14_pushdown(0xE14, false);
        assert!(report.all_identical, "{report:?}");
        assert!(report.deterministic, "{report:?}");
        let row = &report.rows[0];
        assert!(row.suppressed > 0, "nothing suppressed: {row:?}");
        assert!(row.shipped > 0, "nothing shipped: {row:?}");
        assert!(row.saved_bytes > 0, "no wire savings: {row:?}");
        assert!(row.wire_bytes <= row.baseline_bytes, "{row:?}");
    }
}

#[cfg(test)]
mod parallel_experiment_tests {
    use super::*;

    #[test]
    fn e13_smoke_threaded_arm_matches_oracle() {
        let report = e13_parallel(0xE13, false);
        assert!(report.all_match, "{report:?}");
        assert!(
            report.rows.iter().all(|r| r.requests > 0),
            "wave starved: {report:?}"
        );
        assert!(
            report.rows.iter().all(|r| r.executed > 0),
            "nothing executed: {report:?}"
        );
    }
}

#[cfg(test)]
mod failover_experiment_tests {
    use super::*;

    #[test]
    fn e12_smoke_fails_over_without_losing_work() {
        let report = e12_failover(0xE12, false);
        assert!(report.all_conserved, "{report:?}");
        assert!(report.all_fenced, "{report:?}");
        assert!(report.no_late_successes, "{report:?}");
        assert!(report.corruption_detected, "{report:?}");
        assert!(report.deterministic, "{report:?}");
        let row = &report.rows[0];
        assert_eq!(row.failovers, row.crashes as u64, "{row:?}");
        assert!(row.bytes_shipped > 0 && row.records_replayed > 0, "{row:?}");
        assert!(
            row.degraded_window_us.iter().all(|&w| w >= 100_000),
            "window shorter than the rebuild delay: {row:?}"
        );
        assert!(
            row.new_hosts.iter().all(|&h| h >= row.shards as u32),
            "adoption must land on a fresh host: {row:?}"
        );
    }
}

#[cfg(test)]
mod wal_experiment_tests {
    use super::*;

    #[test]
    fn e11_smoke_recovers_invisibly() {
        let report = e11_wal(0xE11, false);
        assert!(report.all_conserved, "{report:?}");
        assert!(report.all_identical, "{report:?}");
        assert!(report.deterministic, "{report:?}");
        let row = &report.rows[0];
        assert_eq!(row.recoveries, row.crashes as u64, "{row:?}");
        assert!(row.records_replayed > 0, "{row:?}");
        assert!(row.wal_appends > 0 && row.wal_bytes > 0, "{row:?}");
    }
}

#[cfg(test)]
mod detect_experiment_tests {
    use super::*;

    #[test]
    fn e10_smoke_oracle_matches_and_index_shares() {
        let report = e10_detect(0xE10, false);
        assert!(report.oracle_match, "detection modes diverged: {report:?}");
        let vec_row = report
            .rows
            .iter()
            .find(|r| r.mode == "vectorized")
            .expect("vectorized arm ran");
        // 1000 AQs drawn from a 256-template palette: the index must hold
        // at most one group per template and strictly fewer distinct
        // comparisons than registered queries.
        assert!(vec_row.index_groups <= E10_PALETTE as u64, "{vec_row:?}");
        assert!(vec_row.index_cmps < vec_row.queries, "{vec_row:?}");
    }
}

#[cfg(test)]
mod overload_experiment_tests {
    use super::*;

    #[test]
    fn e9_p99_is_bounded_and_nothing_succeeds_late() {
        let report = e9_overload(0x0E9);
        assert!(report.rows.iter().all(|r| r.conservation_ok), "{report:?}");
        assert!(report.zero_late_successes, "{report:?}");
        assert!(
            report.max_p99_secs <= report.deadline_secs,
            "p99 {:.3}s exceeds the {:.0}s deadline bound",
            report.max_p99_secs,
            report.deadline_secs
        );
        // The saturated cells really shed/degrade rather than queueing.
        let saturated = report
            .rows
            .iter()
            .find(|r| r.period_secs == 5 && r.crash_rate > 0.0)
            .expect("sweep covers the saturated cell");
        assert!(
            saturated.shed + saturated.expired + saturated.degraded > 0,
            "{saturated:?}"
        );
        assert!(report.deterministic, "{report:?}");
    }
}

#[cfg(test)]
mod cluster_experiment_tests {
    use super::*;

    #[test]
    fn e8_uniform_speedup_meets_the_cluster_claim() {
        let speedup = e8_speedup(0xE8);
        assert!(
            speedup >= 1.5,
            "1→8 shard speedup {speedup:.3}x fell below the 1.5x claim"
        );
    }
}

#[cfg(test)]
mod ablation_tests {
    use super::*;

    #[test]
    fn sequence_dependence_is_what_srfe_exploits() {
        let rows = ablation_sequence_dependence(8, 7000);
        let get = |label_prefix: &str, alg: &str| {
            rows.iter()
                .find(|r| r.label.starts_with(label_prefix) && r.label.ends_with(alg))
                .unwrap_or_else(|| panic!("missing {label_prefix}/{alg}"))
                .service_secs
        };
        let kin_gap = get("kinematic", "LERFA + SRFE") / get("kinematic", "LS");
        let tab_gap = get("table", "LERFA + SRFE") / get("table", "LS");
        // Under the kinematic model the proposed algorithm wins big; with
        // sequence-independent costs the reordering advantage shrinks.
        assert!(kin_gap < 0.75, "kinematic gap {kin_gap:.2}");
        assert!(
            tab_gap > kin_gap,
            "table gap {tab_gap:.2} should be closer to 1 than kinematic {kin_gap:.2}"
        );
    }

    #[test]
    fn batch_dispatch_beats_independent_min_cost() {
        let rows = ablation_dispatch_policy(10, 7100);
        assert_eq!(rows.len(), 2);
        // service_secs holds the mean event-to-completion latency here:
        // SRFE's nearest-target sequencing should shave it versus FIFO.
        assert!(
            rows[0].service_secs < rows[1].service_secs,
            "scheduled dispatch should reduce latency: {rows:?}"
        );
    }

    #[test]
    fn scale_sweep_stays_ratio_stable() {
        let rows = e7_scale(2, 7200);
        // Ratio n/m = 4 everywhere: LERFA+SRFE makespans stay in a band
        // across a 4x fleet-size range.
        let vals: Vec<f64> = rows
            .iter()
            .filter(|r| r.algorithm == "LERFA + SRFE")
            .map(|r| r.service_secs)
            .collect();
        assert_eq!(vals.len(), 3);
        let min = vals.iter().cloned().fold(f64::MAX, f64::min);
        let max = vals.iter().cloned().fold(0.0, f64::max);
        assert!(max / min < 1.5, "{vals:?}");
    }
}
