//! Property tests for the WAL frame codec (satellite of the durability
//! work): every record round-trips exactly, and damage — a flipped byte
//! anywhere in the frame, or a truncated tail — surfaces as an explicit
//! [`WalError`], never as a silently shorter or different log.

use aorta_data::{Location, Tuple, Value};
use aorta_device::{DeviceId, DeviceKind};
use aorta_sim::{FaultEvent, SimTime};
use aorta_wal::{
    decode_frame, encode_frame, FileStore, LogStore, WalError, WalRecord, WireRequest,
    FRAME_HEADER_LEN,
};
use proptest::prelude::*;

fn arb_time() -> impl Strategy<Value = SimTime> {
    (0u64..=u64::MAX / 2).prop_map(SimTime::from_micros)
}

fn arb_kind() -> impl Strategy<Value = DeviceKind> {
    prop_oneof![
        Just(DeviceKind::Camera),
        Just(DeviceKind::Sensor),
        Just(DeviceKind::Phone),
        Just(DeviceKind::Rfid),
    ]
}

fn arb_device() -> impl Strategy<Value = DeviceId> {
    (arb_kind(), 0u32..10_000).prop_map(|(k, i)| DeviceId::new(k, i))
}

// Floats are restricted to non-NaN so `PartialEq` equality is meaningful;
// the codec itself carries raw bits, so the restriction loses no coverage.
fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        (-1e12f64..1e12).prop_map(Value::Float),
        ".{0,24}".prop_map(Value::Str),
        (-1e6f64..1e6, -1e6f64..1e6, -1e6f64..1e6)
            .prop_map(|(x, y, z)| Value::Location(Location { x, y, z })),
    ]
}

fn arb_tuple() -> impl Strategy<Value = Tuple> {
    (
        proptest::collection::vec(arb_value(), 0..5),
        proptest::collection::vec(any::<u32>(), 0..3),
    )
        .prop_map(|(values, tags)| {
            let mut t = Tuple::new(values);
            for tag in tags {
                t.add_tag(tag);
            }
            t
        })
}

fn arb_fault() -> impl Strategy<Value = FaultEvent<DeviceId>> {
    prop_oneof![
        arb_device().prop_map(FaultEvent::Crash),
        arb_device().prop_map(FaultEvent::Recover),
        arb_device().prop_map(FaultEvent::ProcessCrash),
        (0.0f64..1.0).prop_map(|extra_loss| FaultEvent::LossBurstStart { extra_loss }),
        Just(FaultEvent::LossBurstEnd),
        (1.0f64..20.0).prop_map(|factor| FaultEvent::LatencySpikeStart { factor }),
        Just(FaultEvent::LatencySpikeEnd),
    ]
}

fn arb_request() -> impl Strategy<Value = WireRequest> {
    (
        (
            any::<u32>(),
            "[a-z]{1,10}",
            arb_tuple(),
            "[a-z]{1,4}",
            arb_kind(),
            proptest::option::of(("[a-z]{1,4}", arb_kind())),
        ),
        (
            proptest::collection::vec("[a-z0-9.]{0,16}", 0..4),
            proptest::collection::vec((arb_device(), arb_tuple()), 0..4),
            arb_time(),
            arb_time(),
            any::<bool>(),
            (0u32..10, 0u32..10),
        ),
    )
        .prop_map(
            |(
                (query_id, action, event_tuple, event_binding, event_kind, device_binding),
                (args, candidates, created_at, deadline, degraded, (attempts, hops)),
            )| WireRequest {
                query_id,
                action,
                event_tuple,
                event_binding,
                event_kind,
                device_binding,
                args,
                candidates,
                created_at,
                deadline,
                degraded,
                attempts,
                hops,
            },
        )
}

fn arb_stage() -> impl Strategy<Value = WalRecord> {
    use aorta_wal::LifecycleStage as L;
    let stages = [
        L::Admitted,
        L::Degraded,
        L::Shed,
        L::Dispatched,
        L::Executing,
        L::Completed,
        L::Failed,
        L::Expired,
        L::NoCandidate,
        L::TimedOut,
        L::Escalated,
        L::Orphaned,
        L::Retried,
    ];
    (any::<u32>(), 0usize..stages.len(), arb_time()).prop_map(move |(query_id, i, at)| {
        WalRecord::Lifecycle {
            query_id,
            stage: stages[i],
            at,
        }
    })
}

fn arb_record() -> impl Strategy<Value = WalRecord> {
    prop_oneof![
        any::<u64>().prop_map(|fingerprint| WalRecord::Genesis { fingerprint }),
        ".{0,80}".prop_map(|sql| WalRecord::SqlExec { sql }),
        proptest::collection::vec((arb_time(), arb_fault()), 0..6)
            .prop_map(|events| WalRecord::FaultsInjected { events }),
        arb_time().prop_map(|deadline| WalRecord::RunUntil { deadline }),
        arb_request().prop_map(|request| WalRecord::RequestInjected { request }),
        arb_request().prop_map(|request| WalRecord::RouteProbe { request }),
        Just(WalRecord::DrainEscalated),
        arb_device().prop_map(|device| WalRecord::MigrateOut { device }),
        arb_device().prop_map(|device| WalRecord::MigrateIn { device }),
        (any::<u32>(), "[a-z]{1,12}")
            .prop_map(|(query_id, name)| WalRecord::AqRegistered { query_id, name }),
        (any::<u32>(), "[a-z]{1,12}")
            .prop_map(|(query_id, name)| WalRecord::AqDropped { query_id, name }),
        (any::<u32>(), any::<i64>())
            .prop_map(|(query_id, source)| WalRecord::EdgeCommit { query_id, source }),
        arb_stage(),
        (arb_device(), 0u8..3, arb_time()).prop_map(|(device, state, at)| WalRecord::Breaker {
            device,
            state,
            at
        }),
        arb_time().prop_map(|at| WalRecord::CrashApplied { at }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Every record round-trips exactly through one frame: same record,
    /// same LSN, cursor advanced to the frame's end.
    #[test]
    fn prop_frame_roundtrip(record in arb_record(), lsn in any::<u64>()) {
        let frame = encode_frame(&record, lsn);
        let mut off = 0;
        let (got_lsn, got) = decode_frame(&frame, &mut off)
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
        prop_assert_eq!(got_lsn, lsn);
        prop_assert_eq!(got, record);
        prop_assert_eq!(off, frame.len());
    }

    /// Flipping any single byte anywhere in the frame — magic, length, LSN,
    /// checksum, or payload — is detected. A decode after damage never
    /// succeeds, and in particular never yields a *different* record.
    #[test]
    fn prop_any_byte_flip_is_detected(
        record in arb_record(),
        lsn in any::<u64>(),
        pos in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let mut frame = encode_frame(&record, lsn);
        let pos = (pos % frame.len() as u64) as usize;
        frame[pos] ^= flip;
        let mut off = 0;
        let result = decode_frame(&frame, &mut off);
        prop_assert!(result.is_err(), "corruption at byte {pos} went undetected");
        prop_assert_eq!(off, 0, "cursor must not advance past damage");
    }

    /// Every strict prefix of a frame is a torn append — an explicit
    /// [`WalError::TornFrame`], never a silently shorter log.
    #[test]
    fn prop_truncation_is_torn_never_silent(
        record in arb_record(),
        lsn in any::<u64>(),
        keep in any::<u64>(),
    ) {
        let frame = encode_frame(&record, lsn);
        let keep = (keep % frame.len() as u64) as usize; // always a strict prefix
        let mut off = 0;
        let result = decode_frame(&frame[..keep], &mut off);
        prop_assert!(
            matches!(result, Err(WalError::TornFrame { .. })),
            "truncation to {keep}/{} bytes gave {result:?}",
            frame.len()
        );
    }

    /// Back-to-back frames decode independently: damage confined to the
    /// second frame still leaves the first fully readable.
    #[test]
    fn prop_damage_is_localized(a in arb_record(), b in arb_record()) {
        let mut buf = encode_frame(&a, 0);
        let first_len = buf.len();
        buf.extend_from_slice(&encode_frame(&b, 1));
        let last = buf.len() - 1;
        buf[last] ^= 0xFF;
        let mut off = 0;
        let (lsn, got) = decode_frame(&buf, &mut off).expect("first frame intact");
        prop_assert_eq!(lsn, 0);
        prop_assert_eq!(got, a);
        prop_assert_eq!(off, first_len);
        prop_assert!(decode_frame(&buf, &mut off).is_err());
    }
}

/// A torn tail on disk (the classic crash-during-append) surfaces when the
/// file is reopened — the intact prefix is not silently accepted.
#[test]
fn file_store_reports_torn_tail_on_reopen() {
    let path = std::env::temp_dir().join(format!("aorta-wal-torn-{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&path);
    {
        let mut store = FileStore::create(&path).unwrap();
        store
            .append(&encode_frame(&WalRecord::DrainEscalated, 0))
            .unwrap();
        store
            .append(&encode_frame(
                &WalRecord::RunUntil {
                    deadline: SimTime::from_micros(5),
                },
                1,
            ))
            .unwrap();
    }
    // Cut the file mid-way through the second frame.
    let bytes = std::fs::read(&path).unwrap();
    let first = encode_frame(&WalRecord::DrainEscalated, 0).len();
    std::fs::write(&path, &bytes[..first + FRAME_HEADER_LEN / 2]).unwrap();

    let result = FileStore::open(&path).and_then(|mut s| s.read_all());
    assert!(
        matches!(result, Err(WalError::TornFrame { .. })),
        "torn tail must be loud: {result:?}"
    );
    let _ = std::fs::remove_file(&path);
}
