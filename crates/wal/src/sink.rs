//! The sink the engine writes records through. One handle, two modes:
//!
//! - **Record**: encode + append every record to a [`LogStore`], with
//!   `RunUntil` tail-coalescing and observability counters.
//! - **Verify**: recovery mode. The replaying engine's records are checked
//!   one-by-one against the logged suffix; the first disagreement is
//!   remembered as a divergence and surfaces as a loud
//!   [`RecoveryError`](crate::RecoveryError). Records emitted past the end
//!   of the log (the re-execution of the crash-truncated tail) accumulate
//!   as `appended`, to be written back to the store after recovery.

use std::sync::{Arc, Mutex};

use aorta_obs::SharedMetrics;

use crate::codec::encode_frame;
use crate::error::WalError;
use crate::record::WalRecord;
use crate::store::LogStore;

/// Counters describing one log stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WalStats {
    /// Records appended (coalesced tail rewrites count once).
    pub appends: u64,
    /// Live bytes in the store.
    pub bytes: u64,
    /// Live frames in the store.
    pub frames: u64,
}

enum SinkState {
    Record {
        store: Box<dyn LogStore>,
        next_lsn: u64,
        /// True when the tail frame is a `RunUntil` (the only coalescible
        /// record — anything else logged in between blocks coalescing and
        /// thereby preserves record order).
        tail_is_run_until: bool,
        appends: u64,
        obs: Option<SharedMetrics>,
        obs_label: String,
    },
    Verify {
        expected: Vec<WalRecord>,
        cursor: usize,
        appended: Vec<WalRecord>,
        divergence: Option<(usize, String, String)>,
    },
}

/// A cheaply clonable handle to one shard's log stream.
///
/// The engine, the cluster gateway, and the snapshot manager each hold a
/// clone; all record traffic funnels through the same state. The mutex is
/// uncontended (the simulation is single-threaded) and exists to keep the
/// handle `Send + Sync`.
#[derive(Clone)]
pub struct WalHandle(Arc<Mutex<SinkState>>);

impl std::fmt::Debug for WalHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &*self.0.lock().expect("wal lock") {
            SinkState::Record { next_lsn, .. } => {
                write!(f, "WalHandle::Record(next_lsn={next_lsn})")
            }
            SinkState::Verify {
                cursor, expected, ..
            } => write!(f, "WalHandle::Verify({cursor}/{})", expected.len()),
        }
    }
}

impl WalHandle {
    /// A recording handle over `store`. `obs_label` labels this stream's
    /// series (e.g. `s0`) in the optional metrics registry.
    pub fn record(
        store: Box<dyn LogStore>,
        obs: Option<SharedMetrics>,
        obs_label: impl Into<String>,
    ) -> Self {
        let next_lsn = store.base() + store.frame_count() as u64;
        let tail_is_run_until = false;
        WalHandle(Arc::new(Mutex::new(SinkState::Record {
            store,
            next_lsn,
            tail_is_run_until,
            appends: 0,
            obs,
            obs_label: obs_label.into(),
        })))
    }

    /// A verify-mode handle over the replay suffix.
    pub fn verify(expected: Vec<WalRecord>) -> Self {
        WalHandle(Arc::new(Mutex::new(SinkState::Verify {
            expected,
            cursor: 0,
            appended: Vec::new(),
            divergence: None,
        })))
    }

    /// Appends (record mode) or cross-checks (verify mode) one record.
    pub fn append(&self, record: WalRecord) {
        let mut state = self.0.lock().expect("wal lock");
        match &mut *state {
            SinkState::Record {
                store,
                next_lsn,
                tail_is_run_until,
                appends,
                obs,
                obs_label,
            } => {
                let is_run_until = matches!(record, WalRecord::RunUntil { .. });
                let result = if is_run_until && *tail_is_run_until {
                    // Coalesce: run_until(a); run_until(b) with nothing
                    // logged between is equivalent to run_until(b), so the
                    // tail frame is rewritten in place (same LSN).
                    let frame = encode_frame(&record, *next_lsn - 1);
                    store.replace_tail(&frame)
                } else {
                    let frame = encode_frame(&record, *next_lsn);
                    let r = store.append(&frame);
                    if r.is_ok() {
                        *next_lsn += 1;
                        *appends += 1;
                    }
                    r
                };
                // An unwritable log is a hard fault: continuing would let
                // the engine run ahead of its durability point.
                result.unwrap_or_else(|e| panic!("wal append failed: {e}"));
                *tail_is_run_until = is_run_until;
                if let Some(m) = obs {
                    let labels = &[("shard", obs_label.as_str())][..];
                    m.counter_set("aorta_wal_appends", labels, *appends);
                    m.counter_set("aorta_wal_bytes", labels, store.byte_len());
                }
            }
            SinkState::Verify {
                expected,
                cursor,
                appended,
                divergence,
            } => {
                if divergence.is_some() {
                    return; // first disagreement wins; the rest is noise
                }
                if *cursor < expected.len() {
                    if expected[*cursor] == record {
                        *cursor += 1;
                    } else {
                        *divergence =
                            Some((*cursor, expected[*cursor].describe(), record.describe()));
                    }
                } else {
                    // Past the log's end: the replay of the crash-truncated
                    // final clock slice produces genuinely new history.
                    appended.push(record);
                }
            }
        }
    }

    /// Breaks `RunUntil` tail-coalescing (record mode): the next `RunUntil`
    /// appends a fresh frame instead of rewriting the tail in place. The
    /// snapshot manager calls this when it vaults an image, because the
    /// vault key (the frame count at snapshot time) promises every earlier
    /// frame is immutable — a coalescing rewrite of the tail would change a
    /// frame the snapshot's replay suffix excludes.
    ///
    /// Sealing is also the group-commit point: any appends the store's
    /// [`FlushPolicy`](crate::FlushPolicy) was buffering are synced to
    /// durable storage here, so a vaulted snapshot never refers to frames
    /// that could still vanish in a crash.
    pub fn seal_tail(&self) {
        if let SinkState::Record {
            store,
            tail_is_run_until,
            ..
        } = &mut *self.0.lock().expect("wal lock")
        {
            *tail_is_run_until = false;
            store.sync().expect("wal sync failed");
        }
    }

    /// Record mode: decodes the full live log.
    ///
    /// # Errors
    ///
    /// [`WalError`] on damage, or if called on a verify-mode handle.
    pub fn records(&self) -> Result<Vec<WalRecord>, WalError> {
        match &mut *self.0.lock().expect("wal lock") {
            SinkState::Record { store, .. } => {
                Ok(store.read_all()?.into_iter().map(|(_, r)| r).collect())
            }
            SinkState::Verify { .. } => {
                Err(WalError::Io("records() on a verify-mode handle".into()))
            }
        }
    }

    /// Live frame count (record mode; 0 in verify mode).
    pub fn frame_count(&self) -> usize {
        match &*self.0.lock().expect("wal lock") {
            SinkState::Record { store, .. } => store.frame_count(),
            SinkState::Verify { .. } => 0,
        }
    }

    /// Frames compacted off the front (record mode).
    pub fn base(&self) -> u64 {
        match &*self.0.lock().expect("wal lock") {
            SinkState::Record { store, .. } => store.base(),
            SinkState::Verify { .. } => 0,
        }
    }

    /// Stream counters (record mode).
    pub fn stats(&self) -> WalStats {
        match &*self.0.lock().expect("wal lock") {
            SinkState::Record { store, appends, .. } => WalStats {
                appends: *appends,
                bytes: store.byte_len(),
                frames: store.frame_count() as u64,
            },
            SinkState::Verify { .. } => WalStats::default(),
        }
    }

    /// Drops the first `n` live frames (called by the manager after a
    /// snapshot makes them redundant).
    ///
    /// # Errors
    ///
    /// [`WalError`] when `n` exceeds the live log.
    pub fn truncate_prefix(&self, n: usize) -> Result<(), WalError> {
        match &mut *self.0.lock().expect("wal lock") {
            SinkState::Record { store, .. } => store.truncate_prefix(n),
            SinkState::Verify { .. } => Err(WalError::Io(
                "truncate_prefix on a verify-mode handle".into(),
            )),
        }
    }

    /// Verify mode: the first disagreement, if any, as
    /// `(index, expected, emitted)`.
    pub fn divergence(&self) -> Option<(usize, String, String)> {
        match &*self.0.lock().expect("wal lock") {
            SinkState::Verify { divergence, .. } => divergence.clone(),
            SinkState::Record { .. } => None,
        }
    }

    /// Verify mode: how many expected records have been consumed.
    pub fn verified(&self) -> usize {
        match &*self.0.lock().expect("wal lock") {
            SinkState::Verify { cursor, .. } => *cursor,
            SinkState::Record { .. } => 0,
        }
    }

    /// Verify mode: how many expected records remain unconsumed.
    pub fn remaining(&self) -> usize {
        match &*self.0.lock().expect("wal lock") {
            SinkState::Verify {
                cursor, expected, ..
            } => expected.len() - cursor,
            SinkState::Record { .. } => 0,
        }
    }

    /// Verify mode: takes the records emitted past the log's end.
    pub fn take_appended(&self) -> Vec<WalRecord> {
        match &mut *self.0.lock().expect("wal lock") {
            SinkState::Verify { appended, .. } => std::mem::take(appended),
            SinkState::Record { .. } => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;
    use aorta_sim::SimTime;

    fn t(n: u64) -> SimTime {
        SimTime::from_micros(n)
    }

    #[test]
    fn run_until_coalesces_only_at_the_tail() {
        let h = WalHandle::record(Box::new(MemStore::new()), None, "t");
        h.append(WalRecord::RunUntil { deadline: t(1) });
        h.append(WalRecord::RunUntil { deadline: t(2) });
        h.append(WalRecord::DrainEscalated);
        h.append(WalRecord::RunUntil { deadline: t(3) });
        h.append(WalRecord::RunUntil { deadline: t(4) });
        let records = h.records().unwrap();
        assert_eq!(
            records,
            vec![
                WalRecord::RunUntil { deadline: t(2) },
                WalRecord::DrainEscalated,
                WalRecord::RunUntil { deadline: t(4) },
            ]
        );
    }

    #[test]
    fn verify_checks_then_appends() {
        let expected = vec![
            WalRecord::RunUntil { deadline: t(5) },
            WalRecord::DrainEscalated,
        ];
        let h = WalHandle::verify(expected);
        h.append(WalRecord::RunUntil { deadline: t(5) });
        h.append(WalRecord::DrainEscalated);
        assert_eq!(h.divergence(), None);
        assert_eq!(h.remaining(), 0);
        h.append(WalRecord::CrashApplied { at: t(6) });
        assert_eq!(
            h.take_appended(),
            vec![WalRecord::CrashApplied { at: t(6) }]
        );
    }

    #[test]
    fn verify_reports_first_divergence() {
        let h = WalHandle::verify(vec![WalRecord::DrainEscalated]);
        h.append(WalRecord::RunUntil { deadline: t(1) });
        let (at, expected, emitted) = h.divergence().unwrap();
        assert_eq!(at, 0);
        assert!(expected.contains("DrainEscalated"), "{expected}");
        assert!(emitted.contains("RunUntil"), "{emitted}");
    }
}
