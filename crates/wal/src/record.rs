//! The WAL record model: commands (external inputs, replayed) and effects
//! (derived control-plane transitions, cross-checked during replay).

use aorta_data::Tuple;
use aorta_device::{DeviceId, DeviceKind};
use aorta_sim::{FaultEvent, SimTime};

/// A request lifecycle transition, one per terminal or scheduling decision
/// the engine makes about an admitted action request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleStage {
    /// Admitted past the token bucket (counted in `requests`).
    Admitted,
    /// Admitted in the brownout band: quality degraded (lo-res).
    Degraded,
    /// Rejected by admission control or shed by the deadline scheduler.
    Shed,
    /// Assigned to a device and enqueued for execution.
    Dispatched,
    /// Execution began on the selected device.
    Executing,
    /// Executed successfully (full or degraded quality).
    Completed,
    /// Terminally failed (connect failure, action error, out of range).
    Failed,
    /// Deadline passed before completion; work cancelled.
    Expired,
    /// No candidate could serve it within its window.
    NoCandidate,
    /// Sat in the queue past the request timeout.
    TimedOut,
    /// Local candidates exhausted; parked for the cluster gateway.
    Escalated,
    /// Assigned device crashed before execution; orphan handling ran.
    Orphaned,
    /// Rescheduled onto another candidate after a device-level failure.
    Retried,
}

impl LifecycleStage {
    pub(crate) const ALL: [LifecycleStage; 13] = [
        LifecycleStage::Admitted,
        LifecycleStage::Degraded,
        LifecycleStage::Shed,
        LifecycleStage::Dispatched,
        LifecycleStage::Executing,
        LifecycleStage::Completed,
        LifecycleStage::Failed,
        LifecycleStage::Expired,
        LifecycleStage::NoCandidate,
        LifecycleStage::TimedOut,
        LifecycleStage::Escalated,
        LifecycleStage::Orphaned,
        LifecycleStage::Retried,
    ];

    /// Stable on-disk tag.
    pub(crate) fn tag(self) -> u8 {
        self as u8
    }
}

/// A wire-encodable image of an in-flight action request, used for the two
/// gateway commands that carry a request across shard boundaries
/// ([`WalRecord::RequestInjected`], [`WalRecord::RouteProbe`]).
///
/// Argument expressions travel in their re-parseable `Display` form (the
/// SQL layer guarantees `parse(format!("{expr}")) == expr`), so the record
/// needs no dependency on the SQL AST.
#[derive(Debug, Clone, PartialEq)]
pub struct WireRequest {
    /// Originating query ID.
    pub query_id: u32,
    /// Action name.
    pub action: String,
    /// The event tuple that fired the query.
    pub event_tuple: Tuple,
    /// Binding name of the event table.
    pub event_binding: String,
    /// Device kind of the event table.
    pub event_kind: DeviceKind,
    /// Optional second FROM binding (the action-device table).
    pub device_binding: Option<(String, DeviceKind)>,
    /// Argument expressions in re-parseable SQL text.
    pub args: Vec<String>,
    /// Candidate devices with their matched tuples.
    pub candidates: Vec<(DeviceId, Tuple)>,
    /// Admission time.
    pub created_at: SimTime,
    /// Completion deadline.
    pub deadline: SimTime,
    /// Brownout flag.
    pub degraded: bool,
    /// Execution attempts so far.
    pub attempts: u32,
    /// Cross-shard hops so far.
    pub hops: u32,
}

/// One log record. Commands drive replay; effects are redo/audit records
/// that replay must re-derive identically.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    // --- commands: the external inputs that drive the deterministic engine ---
    /// Stream header: fingerprint of the genesis image (config + fleet)
    /// this log applies to.
    Genesis {
        /// Genesis-image fingerprint.
        fingerprint: u64,
    },
    /// A SQL batch was submitted (`CREATE AQ`, `DROP AQ`, `CREATE ACTION`,
    /// ad hoc `SELECT` — the whole batch text, applied atomically-per-
    /// statement exactly as `execute_sql` does).
    SqlExec {
        /// The batch text.
        sql: String,
    },
    /// A seeded fault plan was installed.
    FaultsInjected {
        /// The full (time, fault) schedule.
        events: Vec<(SimTime, FaultEvent<DeviceId>)>,
    },
    /// The virtual clock was advanced to `deadline`. Consecutive advances
    /// with no intervening record coalesce at the log tail — `run_until(a);
    /// run_until(b)` with nothing logged between is indistinguishable from
    /// `run_until(b)`.
    RunUntil {
        /// The advance target.
        deadline: SimTime,
    },
    /// The gateway re-injected an escalated request into this shard.
    RequestInjected {
        /// The request as it arrived (candidates are recomputed locally).
        request: WireRequest,
    },
    /// The gateway asked this shard to cost a request (advances the
    /// engine RNG, so it must be replayed even though it mutates no
    /// visible state).
    RouteProbe {
        /// The request being costed.
        request: WireRequest,
    },
    /// The gateway drained this shard's escalation buffer.
    DrainEscalated,
    /// A device was migrated out of this shard at a safe point.
    MigrateOut {
        /// The migrated device.
        device: DeviceId,
    },
    /// A device was migrated into this shard at a safe point. Not
    /// replayable from the record alone (adopted state is a live image);
    /// the manager snapshots immediately after, so replay never crosses
    /// one — encountering it during replay is a loud error.
    MigrateIn {
        /// The migrated device.
        device: DeviceId,
    },

    // --- effects: derived transitions, re-emitted and checked on replay ---
    /// A continuous query was registered.
    AqRegistered {
        /// Assigned query ID.
        query_id: u32,
        /// Query name.
        name: String,
    },
    /// A continuous query was dropped.
    AqDropped {
        /// The dropped query's ID.
        query_id: u32,
        /// Query name.
        name: String,
    },
    /// A rising-edge commit: the event predicate of `query_id` went from
    /// false to true for the event source `source`, firing the query.
    EdgeCommit {
        /// The fired query.
        query_id: u32,
        /// The event-source identity (tuple id).
        source: i64,
    },
    /// A request lifecycle transition.
    Lifecycle {
        /// The owning query.
        query_id: u32,
        /// The transition.
        stage: LifecycleStage,
        /// When it happened (virtual time).
        at: SimTime,
    },
    /// A circuit breaker changed state.
    Breaker {
        /// The guarded device.
        device: DeviceId,
        /// New state: 0 = closed, 1 = open, 2 = half-open.
        state: u8,
        /// When it transitioned.
        at: SimTime,
    },
    /// A process-crash fault was applied to this engine. Recovery counts
    /// these to grant replay immunity: a crash already in the log must not
    /// halt the replaying engine a second time.
    CrashApplied {
        /// The crash instant.
        at: SimTime,
    },
}

impl WalRecord {
    /// True for records replay re-invokes (vs. effects it cross-checks).
    pub fn is_command(&self) -> bool {
        matches!(
            self,
            WalRecord::Genesis { .. }
                | WalRecord::SqlExec { .. }
                | WalRecord::FaultsInjected { .. }
                | WalRecord::RunUntil { .. }
                | WalRecord::RequestInjected { .. }
                | WalRecord::RouteProbe { .. }
                | WalRecord::DrainEscalated
                | WalRecord::MigrateOut { .. }
                | WalRecord::MigrateIn { .. }
        )
    }

    /// One-line summary for diagnostics and divergence reports.
    pub fn describe(&self) -> String {
        match self {
            WalRecord::Genesis { fingerprint } => format!("Genesis({fingerprint:#018x})"),
            WalRecord::SqlExec { sql } => {
                let head: String = sql.chars().take(40).collect();
                format!("SqlExec({head}…)")
            }
            WalRecord::FaultsInjected { events } => {
                format!("FaultsInjected({} events)", events.len())
            }
            WalRecord::RunUntil { deadline } => format!("RunUntil({deadline})"),
            WalRecord::RequestInjected { request } => {
                format!("RequestInjected(query {})", request.query_id)
            }
            WalRecord::RouteProbe { request } => {
                format!("RouteProbe(query {})", request.query_id)
            }
            WalRecord::DrainEscalated => "DrainEscalated".into(),
            WalRecord::MigrateOut { device } => format!("MigrateOut({device})"),
            WalRecord::MigrateIn { device } => format!("MigrateIn({device})"),
            WalRecord::AqRegistered { query_id, name } => {
                format!("AqRegistered({query_id}, {name})")
            }
            WalRecord::AqDropped { query_id, name } => {
                format!("AqDropped({query_id}, {name})")
            }
            WalRecord::EdgeCommit { query_id, source } => {
                format!("EdgeCommit(query {query_id}, source {source})")
            }
            WalRecord::Lifecycle {
                query_id,
                stage,
                at,
            } => format!("Lifecycle(query {query_id}, {stage:?}, {at})"),
            WalRecord::Breaker { device, state, at } => {
                format!("Breaker({device}, state {state}, {at})")
            }
            WalRecord::CrashApplied { at } => format!("CrashApplied({at})"),
        }
    }
}
