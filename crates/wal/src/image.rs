//! The snapshot image wire format: a shard's full command-sourced state as
//! one shippable, checksummed blob.
//!
//! A live engine snapshot (`fork_snapshot`) is a deep in-memory clone — it
//! cannot cross a host boundary because custom action handlers are code.
//! What *can* cross is the engine's command history: the Aorta engine is
//! deterministic between external inputs, so genesis + the full sealed log
//! rebuilds the exact state on any host that has the same [`GenesisSpec`]
//! (config, fleet, staged handlers). A [`SnapshotImage`] is therefore the
//! sealed log itself, split at the donor's latest snapshot barrier into a
//! `prefix` (up to the barrier) and `suffix` (the tail past it), wrapped in
//! a manifest that pins the shard identity, the incarnation epoch the image
//! was cut at, and the genesis fingerprint.
//!
//! Integrity follows the WAL's fail-loudly rule twice over: every embedded
//! record is a CRC64 frame exactly as it would sit in the log, and the
//! manifest carries a whole-image CRC64 over every byte of the blob.
//! Flipping *any* bit of a shipped image — manifest or payload — makes
//! [`SnapshotImage::decode`] return a typed [`WalError`]; a receiver can
//! adopt a verified image or refuse the transfer, never install a silently
//! stale or damaged shard.
//!
//! `GenesisSpec` lives in the engine crate; the format here only promises
//! that the embedded records replay against *some* genesis whose
//! fingerprint matches the manifest.

use crate::codec::{crc64, decode_frame, encode_frame};
use crate::error::WalError;
use crate::record::WalRecord;

/// Image magic: "ASIM" (Aorta Snapshot IMage).
pub const IMAGE_MAGIC: [u8; 4] = *b"ASIM";
/// Current image format version.
pub const IMAGE_VERSION: u32 = 1;
/// Manifest length in bytes (magic through whole-image CRC).
pub const IMAGE_HEADER_LEN: usize = 52;

/// A shippable image of one shard: manifest + the shard's complete sealed
/// log, split at the donor's snapshot barrier.
///
/// Valid only while the donor log is uncompacted (base 0) and free of
/// `MigrateIn` records — both are loud errors at replay time, not silent
/// staleness.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotImage {
    /// The shard this image reconstructs.
    pub shard: u32,
    /// The incarnation epoch the image was cut at. The adopting host runs
    /// at `epoch + 1`; anything still stamped `epoch` is a zombie.
    pub epoch: u64,
    /// Genesis fingerprint the embedded log applies to.
    pub fingerprint: u64,
    /// Log records up to the donor's latest snapshot barrier.
    pub prefix: Vec<WalRecord>,
    /// The sealed log suffix past the barrier.
    pub suffix: Vec<WalRecord>,
}

impl SnapshotImage {
    /// Serializes the image: manifest, then every record as a CRC64 frame
    /// with LSNs numbered from zero, then the whole-image CRC patched into
    /// the manifest.
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        for (i, record) in self.prefix.iter().chain(self.suffix.iter()).enumerate() {
            payload.extend_from_slice(&encode_frame(record, i as u64));
        }
        let mut out = Vec::with_capacity(IMAGE_HEADER_LEN + payload.len());
        out.extend_from_slice(&IMAGE_MAGIC);
        out.extend_from_slice(&IMAGE_VERSION.to_le_bytes());
        out.extend_from_slice(&self.shard.to_le_bytes());
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&self.fingerprint.to_le_bytes());
        out.extend_from_slice(&(self.prefix.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.suffix.len() as u32).to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&0u64.to_le_bytes()); // CRC slot, patched below
        out.extend_from_slice(&payload);
        let crc = crc64(&out);
        out[44..52].copy_from_slice(&crc.to_le_bytes());
        out
    }

    /// Verifies and decodes a shipped image.
    ///
    /// # Errors
    ///
    /// - [`WalError::TornFrame`] — the blob is shorter than the manifest
    ///   claims (a truncated transfer).
    /// - [`WalError::Corrupt`] — bad magic, unknown version, whole-image
    ///   CRC mismatch, per-frame damage, non-sequential LSNs, frame-count
    ///   mismatch, or trailing bytes. Any single flipped bit lands here or
    ///   in `TornFrame`; no damaged image ever decodes.
    pub fn decode(bytes: &[u8]) -> Result<SnapshotImage, WalError> {
        if bytes.len() < IMAGE_HEADER_LEN {
            return Err(WalError::TornFrame {
                offset: bytes.len() as u64,
            });
        }
        let u32_at = |off: usize| {
            u32::from_le_bytes(bytes[off..off + 4].try_into().expect("bounds checked"))
        };
        let u64_at = |off: usize| {
            u64::from_le_bytes(bytes[off..off + 8].try_into().expect("bounds checked"))
        };
        if bytes[0..4] != IMAGE_MAGIC {
            return Err(WalError::Corrupt {
                lsn: 0,
                detail: "bad image magic".into(),
            });
        }
        let version = u32_at(4);
        if version != IMAGE_VERSION {
            return Err(WalError::Corrupt {
                lsn: 0,
                detail: format!("unknown image version {version}"),
            });
        }
        let shard = u32_at(8);
        let epoch = u64_at(12);
        let fingerprint = u64_at(20);
        let prefix_frames = u32_at(28) as usize;
        let suffix_frames = u32_at(32) as usize;
        let payload_len = u64_at(36) as usize;
        let stored_crc = u64_at(44);
        if bytes.len() < IMAGE_HEADER_LEN + payload_len {
            return Err(WalError::TornFrame {
                offset: bytes.len() as u64,
            });
        }
        if bytes.len() > IMAGE_HEADER_LEN + payload_len {
            return Err(WalError::Corrupt {
                lsn: 0,
                detail: format!(
                    "{} trailing bytes after image payload",
                    bytes.len() - IMAGE_HEADER_LEN - payload_len
                ),
            });
        }
        // Whole-image CRC: computed with the CRC slot zeroed, covering
        // every byte of manifest and payload.
        let mut check = bytes.to_vec();
        check[44..52].fill(0);
        let computed = crc64(&check);
        if computed != stored_crc {
            return Err(WalError::Corrupt {
                lsn: 0,
                detail: format!(
                    "image crc mismatch: stored {stored_crc:#018x}, computed {computed:#018x}"
                ),
            });
        }
        let payload = &bytes[IMAGE_HEADER_LEN..];
        let mut records = Vec::with_capacity(prefix_frames + suffix_frames);
        let mut off = 0usize;
        while off < payload.len() {
            let (lsn, record) = decode_frame(payload, &mut off)?;
            if lsn != records.len() as u64 {
                return Err(WalError::Corrupt {
                    lsn,
                    detail: format!("image frame {} carries lsn {lsn}", records.len()),
                });
            }
            records.push(record);
        }
        if records.len() != prefix_frames + suffix_frames {
            return Err(WalError::Corrupt {
                lsn: 0,
                detail: format!(
                    "image manifest claims {} frames, payload holds {}",
                    prefix_frames + suffix_frames,
                    records.len()
                ),
            });
        }
        let suffix = records.split_off(prefix_frames);
        Ok(SnapshotImage {
            shard,
            epoch,
            fingerprint,
            prefix: records,
            suffix,
        })
    }

    /// The full record sequence, prefix then suffix — what the adopting
    /// host replays from genesis.
    pub fn records(&self) -> Vec<WalRecord> {
        let mut all = self.prefix.clone();
        all.extend(self.suffix.iter().cloned());
        all
    }

    /// Encoded size in bytes (what a transfer ships).
    pub fn byte_len(&self) -> usize {
        self.encode().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aorta_sim::SimTime;

    fn image() -> SnapshotImage {
        SnapshotImage {
            shard: 2,
            epoch: 3,
            fingerprint: 0xDEAD_BEEF_CAFE_F00D,
            prefix: vec![
                WalRecord::Genesis {
                    fingerprint: 0xDEAD_BEEF_CAFE_F00D,
                },
                WalRecord::SqlExec {
                    sql: "CREATE ACTION beep(id)".into(),
                },
            ],
            suffix: vec![
                WalRecord::RunUntil {
                    deadline: SimTime::from_micros(5_000_000),
                },
                WalRecord::DrainEscalated,
            ],
        }
    }

    #[test]
    fn image_roundtrips() {
        let img = image();
        let bytes = img.encode();
        assert_eq!(SnapshotImage::decode(&bytes).unwrap(), img);
        assert_eq!(img.byte_len(), bytes.len());
        assert_eq!(img.records().len(), 4);
    }

    #[test]
    fn empty_sections_roundtrip() {
        let img = SnapshotImage {
            shard: 0,
            epoch: 1,
            fingerprint: 7,
            prefix: Vec::new(),
            suffix: Vec::new(),
        };
        let bytes = img.encode();
        assert_eq!(bytes.len(), IMAGE_HEADER_LEN);
        assert_eq!(SnapshotImage::decode(&bytes).unwrap(), img);
    }

    #[test]
    fn flipping_any_single_byte_is_detected() {
        let bytes = image().encode();
        for i in 0..bytes.len() {
            let mut damaged = bytes.clone();
            damaged[i] ^= 0x01;
            assert!(
                SnapshotImage::decode(&damaged).is_err(),
                "flip at byte {i} of {} went undetected",
                bytes.len()
            );
        }
    }

    #[test]
    fn truncation_is_torn() {
        let bytes = image().encode();
        for cut in [
            0,
            3,
            IMAGE_HEADER_LEN - 1,
            IMAGE_HEADER_LEN + 5,
            bytes.len() - 1,
        ] {
            assert!(
                matches!(
                    SnapshotImage::decode(&bytes[..cut]),
                    Err(WalError::TornFrame { .. })
                ),
                "truncation to {cut} bytes was not reported torn"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_refused() {
        let mut bytes = image().encode();
        bytes.push(0);
        assert!(matches!(
            SnapshotImage::decode(&bytes),
            Err(WalError::Corrupt { .. })
        ));
    }
}
