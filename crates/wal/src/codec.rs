//! Binary framing and record codec.
//!
//! Frame layout (all integers little-endian):
//!
//! ```text
//! magic "AWAL" (4) | payload_len u32 | lsn u64 | crc64 u64 | payload
//! ```
//!
//! The CRC64 (ECMA-182 polynomial, hand-rolled — no dependencies) covers
//! the LSN bytes followed by the payload, so a frame whose checksum passes
//! vouches for both its position and its content. Readers are strict: a
//! bad magic, a short frame, or a checksum mismatch is an explicit
//! [`WalError`], never a silently shortened log.

use aorta_data::{Location, Tuple, Value};
use aorta_device::{DeviceId, DeviceKind};
use aorta_sim::{FaultEvent, SimDuration, SimTime};

use crate::error::WalError;
use crate::record::{LifecycleStage, WalRecord, WireRequest};

/// Frame magic: "AWAL".
pub const WAL_MAGIC: [u8; 4] = *b"AWAL";
/// Bytes before the payload: magic + len + lsn + crc.
pub const FRAME_HEADER_LEN: usize = 4 + 4 + 8 + 8;

// --- CRC64 (ECMA-182), table generated at compile time -----------------------

const CRC64_POLY: u64 = 0xC96C_5795_D787_0F42; // ECMA-182, reflected

const fn build_crc64_table() -> [u64; 256] {
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u64;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ CRC64_POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC64_TABLE: [u64; 256] = build_crc64_table();

/// CRC64-ECMA over `bytes`.
pub fn crc64(bytes: &[u8]) -> u64 {
    let mut crc = !0u64;
    for &b in bytes {
        crc = CRC64_TABLE[((crc ^ b as u64) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

// --- primitive writers -------------------------------------------------------

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}
fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(v as u8);
}
fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}
fn put_time(out: &mut Vec<u8>, t: SimTime) {
    put_u64(out, t.as_micros());
}
fn put_kind(out: &mut Vec<u8>, k: DeviceKind) {
    let tag = match k {
        DeviceKind::Camera => 0u8,
        DeviceKind::Sensor => 1,
        DeviceKind::Phone => 2,
        DeviceKind::Rfid => 3,
    };
    out.push(tag);
}
fn put_device(out: &mut Vec<u8>, d: DeviceId) {
    put_kind(out, d.kind());
    put_u32(out, d.index());
}
fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => put_u8(out, 0),
        Value::Bool(b) => {
            put_u8(out, 1);
            put_bool(out, *b);
        }
        Value::Int(i) => {
            put_u8(out, 2);
            put_i64(out, *i);
        }
        Value::Float(f) => {
            put_u8(out, 3);
            put_f64(out, *f);
        }
        Value::Str(s) => {
            put_u8(out, 4);
            put_str(out, s);
        }
        Value::Location(l) => {
            put_u8(out, 5);
            put_f64(out, l.x);
            put_f64(out, l.y);
            put_f64(out, l.z);
        }
    }
}
fn put_tuple(out: &mut Vec<u8>, t: &Tuple) {
    put_u32(out, t.len() as u32);
    for v in t.values() {
        put_value(out, v);
    }
    put_u32(out, t.tags().len() as u32);
    for &q in t.tags() {
        put_u32(out, q);
    }
}
fn put_fault(out: &mut Vec<u8>, f: &FaultEvent<DeviceId>) {
    match f {
        FaultEvent::Crash(d) => {
            put_u8(out, 0);
            put_device(out, *d);
        }
        FaultEvent::Recover(d) => {
            put_u8(out, 1);
            put_device(out, *d);
        }
        FaultEvent::LossBurstStart { extra_loss } => {
            put_u8(out, 2);
            put_f64(out, *extra_loss);
        }
        FaultEvent::LossBurstEnd => put_u8(out, 3),
        FaultEvent::LatencySpikeStart { factor } => {
            put_u8(out, 4);
            put_f64(out, *factor);
        }
        FaultEvent::LatencySpikeEnd => put_u8(out, 5),
        FaultEvent::ProcessCrash(d) => {
            put_u8(out, 6);
            put_device(out, *d);
        }
        FaultEvent::Partition { a, b, window } => {
            put_u8(out, 7);
            put_u32(out, *a);
            put_u32(out, *b);
            put_u64(out, window.as_micros());
        }
    }
}
fn put_request(out: &mut Vec<u8>, r: &WireRequest) {
    put_u32(out, r.query_id);
    put_str(out, &r.action);
    put_tuple(out, &r.event_tuple);
    put_str(out, &r.event_binding);
    put_kind(out, r.event_kind);
    match &r.device_binding {
        None => put_u8(out, 0),
        Some((binding, kind)) => {
            put_u8(out, 1);
            put_str(out, binding);
            put_kind(out, *kind);
        }
    }
    put_u32(out, r.args.len() as u32);
    for a in &r.args {
        put_str(out, a);
    }
    put_u32(out, r.candidates.len() as u32);
    for (d, t) in &r.candidates {
        put_device(out, *d);
        put_tuple(out, t);
    }
    put_time(out, r.created_at);
    put_time(out, r.deadline);
    put_bool(out, r.degraded);
    put_u32(out, r.attempts);
    put_u32(out, r.hops);
}

// --- primitive readers -------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.pos + n > self.buf.len() {
            return Err(format!(
                "payload underrun: need {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn i64(&mut self) -> Result<i64, String> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn bool(&mut self) -> Result<bool, String> {
        Ok(self.u8()? != 0)
    }
    fn str(&mut self) -> Result<String, String> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| format!("invalid utf-8 in string: {e}"))
    }
    fn time(&mut self) -> Result<SimTime, String> {
        Ok(SimTime::from_micros(self.u64()?))
    }
    fn kind(&mut self) -> Result<DeviceKind, String> {
        match self.u8()? {
            0 => Ok(DeviceKind::Camera),
            1 => Ok(DeviceKind::Sensor),
            2 => Ok(DeviceKind::Phone),
            3 => Ok(DeviceKind::Rfid),
            t => Err(format!("unknown device-kind tag {t}")),
        }
    }
    fn device(&mut self) -> Result<DeviceId, String> {
        let kind = self.kind()?;
        let index = self.u32()?;
        Ok(DeviceId::new(kind, index))
    }
    fn value(&mut self) -> Result<Value, String> {
        match self.u8()? {
            0 => Ok(Value::Null),
            1 => Ok(Value::Bool(self.bool()?)),
            2 => Ok(Value::Int(self.i64()?)),
            3 => Ok(Value::Float(self.f64()?)),
            4 => Ok(Value::Str(self.str()?)),
            5 => Ok(Value::Location(Location {
                x: self.f64()?,
                y: self.f64()?,
                z: self.f64()?,
            })),
            t => Err(format!("unknown value tag {t}")),
        }
    }
    fn tuple(&mut self) -> Result<Tuple, String> {
        let n = self.u32()? as usize;
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            values.push(self.value()?);
        }
        let mut t = Tuple::new(values);
        let tags = self.u32()? as usize;
        for _ in 0..tags {
            t.add_tag(self.u32()?);
        }
        Ok(t)
    }
    fn fault(&mut self) -> Result<FaultEvent<DeviceId>, String> {
        match self.u8()? {
            0 => Ok(FaultEvent::Crash(self.device()?)),
            1 => Ok(FaultEvent::Recover(self.device()?)),
            2 => Ok(FaultEvent::LossBurstStart {
                extra_loss: self.f64()?,
            }),
            3 => Ok(FaultEvent::LossBurstEnd),
            4 => Ok(FaultEvent::LatencySpikeStart {
                factor: self.f64()?,
            }),
            5 => Ok(FaultEvent::LatencySpikeEnd),
            6 => Ok(FaultEvent::ProcessCrash(self.device()?)),
            7 => Ok(FaultEvent::Partition {
                a: self.u32()?,
                b: self.u32()?,
                window: SimDuration::from_micros(self.u64()?),
            }),
            t => Err(format!("unknown fault tag {t}")),
        }
    }
    fn request(&mut self) -> Result<WireRequest, String> {
        let query_id = self.u32()?;
        let action = self.str()?;
        let event_tuple = self.tuple()?;
        let event_binding = self.str()?;
        let event_kind = self.kind()?;
        let device_binding = match self.u8()? {
            0 => None,
            1 => Some((self.str()?, self.kind()?)),
            t => return Err(format!("unknown option tag {t}")),
        };
        let n = self.u32()? as usize;
        let mut args = Vec::with_capacity(n);
        for _ in 0..n {
            args.push(self.str()?);
        }
        let n = self.u32()? as usize;
        let mut candidates = Vec::with_capacity(n);
        for _ in 0..n {
            let d = self.device()?;
            let t = self.tuple()?;
            candidates.push((d, t));
        }
        Ok(WireRequest {
            query_id,
            action,
            event_tuple,
            event_binding,
            event_kind,
            device_binding,
            args,
            candidates,
            created_at: self.time()?,
            deadline: self.time()?,
            degraded: self.bool()?,
            attempts: self.u32()?,
            hops: self.u32()?,
        })
    }
    fn finish(self) -> Result<(), String> {
        if self.pos != self.buf.len() {
            return Err(format!(
                "{} trailing byte(s) after record payload",
                self.buf.len() - self.pos
            ));
        }
        Ok(())
    }
}

// --- record payload codec ----------------------------------------------------

const K_GENESIS: u8 = 0x01;
const K_SQL_EXEC: u8 = 0x02;
const K_FAULTS: u8 = 0x03;
const K_RUN_UNTIL: u8 = 0x04;
const K_REQ_INJECTED: u8 = 0x05;
const K_ROUTE_PROBE: u8 = 0x06;
const K_DRAIN: u8 = 0x07;
const K_MIGRATE_OUT: u8 = 0x08;
const K_MIGRATE_IN: u8 = 0x09;
const K_AQ_REGISTERED: u8 = 0x41;
const K_AQ_DROPPED: u8 = 0x42;
const K_EDGE_COMMIT: u8 = 0x43;
const K_LIFECYCLE: u8 = 0x44;
const K_BREAKER: u8 = 0x45;
const K_CRASH_APPLIED: u8 = 0x46;

fn encode_payload(r: &WalRecord, out: &mut Vec<u8>) {
    match r {
        WalRecord::Genesis { fingerprint } => {
            put_u8(out, K_GENESIS);
            put_u64(out, *fingerprint);
        }
        WalRecord::SqlExec { sql } => {
            put_u8(out, K_SQL_EXEC);
            put_str(out, sql);
        }
        WalRecord::FaultsInjected { events } => {
            put_u8(out, K_FAULTS);
            put_u32(out, events.len() as u32);
            for (t, f) in events {
                put_time(out, *t);
                put_fault(out, f);
            }
        }
        WalRecord::RunUntil { deadline } => {
            put_u8(out, K_RUN_UNTIL);
            put_time(out, *deadline);
        }
        WalRecord::RequestInjected { request } => {
            put_u8(out, K_REQ_INJECTED);
            put_request(out, request);
        }
        WalRecord::RouteProbe { request } => {
            put_u8(out, K_ROUTE_PROBE);
            put_request(out, request);
        }
        WalRecord::DrainEscalated => put_u8(out, K_DRAIN),
        WalRecord::MigrateOut { device } => {
            put_u8(out, K_MIGRATE_OUT);
            put_device(out, *device);
        }
        WalRecord::MigrateIn { device } => {
            put_u8(out, K_MIGRATE_IN);
            put_device(out, *device);
        }
        WalRecord::AqRegistered { query_id, name } => {
            put_u8(out, K_AQ_REGISTERED);
            put_u32(out, *query_id);
            put_str(out, name);
        }
        WalRecord::AqDropped { query_id, name } => {
            put_u8(out, K_AQ_DROPPED);
            put_u32(out, *query_id);
            put_str(out, name);
        }
        WalRecord::EdgeCommit { query_id, source } => {
            put_u8(out, K_EDGE_COMMIT);
            put_u32(out, *query_id);
            put_i64(out, *source);
        }
        WalRecord::Lifecycle {
            query_id,
            stage,
            at,
        } => {
            put_u8(out, K_LIFECYCLE);
            put_u32(out, *query_id);
            put_u8(out, stage.tag());
            put_time(out, *at);
        }
        WalRecord::Breaker { device, state, at } => {
            put_u8(out, K_BREAKER);
            put_device(out, *device);
            put_u8(out, *state);
            put_time(out, *at);
        }
        WalRecord::CrashApplied { at } => {
            put_u8(out, K_CRASH_APPLIED);
            put_time(out, *at);
        }
    }
}

fn decode_payload(payload: &[u8]) -> Result<WalRecord, String> {
    let mut r = Reader::new(payload);
    let kind = r.u8()?;
    let record = match kind {
        K_GENESIS => WalRecord::Genesis {
            fingerprint: r.u64()?,
        },
        K_SQL_EXEC => WalRecord::SqlExec { sql: r.str()? },
        K_FAULTS => {
            let n = r.u32()? as usize;
            let mut events = Vec::with_capacity(n);
            for _ in 0..n {
                let t = r.time()?;
                let f = r.fault()?;
                events.push((t, f));
            }
            WalRecord::FaultsInjected { events }
        }
        K_RUN_UNTIL => WalRecord::RunUntil {
            deadline: r.time()?,
        },
        K_REQ_INJECTED => WalRecord::RequestInjected {
            request: r.request()?,
        },
        K_ROUTE_PROBE => WalRecord::RouteProbe {
            request: r.request()?,
        },
        K_DRAIN => WalRecord::DrainEscalated,
        K_MIGRATE_OUT => WalRecord::MigrateOut {
            device: r.device()?,
        },
        K_MIGRATE_IN => WalRecord::MigrateIn {
            device: r.device()?,
        },
        K_AQ_REGISTERED => WalRecord::AqRegistered {
            query_id: r.u32()?,
            name: r.str()?,
        },
        K_AQ_DROPPED => WalRecord::AqDropped {
            query_id: r.u32()?,
            name: r.str()?,
        },
        K_EDGE_COMMIT => WalRecord::EdgeCommit {
            query_id: r.u32()?,
            source: r.i64()?,
        },
        K_LIFECYCLE => {
            let query_id = r.u32()?;
            let tag = r.u8()?;
            let stage = *LifecycleStage::ALL
                .iter()
                .find(|s| s.tag() == tag)
                .ok_or_else(|| format!("unknown lifecycle stage tag {tag}"))?;
            WalRecord::Lifecycle {
                query_id,
                stage,
                at: r.time()?,
            }
        }
        K_BREAKER => WalRecord::Breaker {
            device: r.device()?,
            state: r.u8()?,
            at: r.time()?,
        },
        K_CRASH_APPLIED => WalRecord::CrashApplied { at: r.time()? },
        other => return Err(format!("unknown record kind {other:#04x}")),
    };
    r.finish()?;
    Ok(record)
}

/// Encodes `record` as one checksummed frame.
pub fn encode_frame(record: &WalRecord, lsn: u64) -> Vec<u8> {
    let mut payload = Vec::with_capacity(64);
    encode_payload(record, &mut payload);
    let mut crc_input = Vec::with_capacity(8 + payload.len());
    crc_input.extend_from_slice(&lsn.to_le_bytes());
    crc_input.extend_from_slice(&payload);
    let crc = crc64(&crc_input);

    let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    frame.extend_from_slice(&WAL_MAGIC);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&lsn.to_le_bytes());
    frame.extend_from_slice(&crc.to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// Decodes one frame starting at `*offset`, advancing it past the frame.
///
/// # Errors
///
/// [`WalError::TornFrame`] when the buffer ends mid-frame,
/// [`WalError::Corrupt`] on magic/checksum/payload damage.
pub fn decode_frame(buf: &[u8], offset: &mut usize) -> Result<(u64, WalRecord), WalError> {
    let start = *offset;
    if buf.len() - start < FRAME_HEADER_LEN {
        return Err(WalError::TornFrame {
            offset: start as u64,
        });
    }
    let header = &buf[start..start + FRAME_HEADER_LEN];
    if header[0..4] != WAL_MAGIC {
        return Err(WalError::Corrupt {
            lsn: 0,
            detail: format!("bad magic at byte {start}"),
        });
    }
    let payload_len = u32::from_le_bytes(header[4..8].try_into().unwrap()) as usize;
    let lsn = u64::from_le_bytes(header[8..16].try_into().unwrap());
    let crc_stored = u64::from_le_bytes(header[16..24].try_into().unwrap());
    let payload_start = start + FRAME_HEADER_LEN;
    if buf.len() - payload_start < payload_len {
        return Err(WalError::TornFrame {
            offset: start as u64,
        });
    }
    let payload = &buf[payload_start..payload_start + payload_len];
    let mut crc_input = Vec::with_capacity(8 + payload_len);
    crc_input.extend_from_slice(&lsn.to_le_bytes());
    crc_input.extend_from_slice(payload);
    if crc64(&crc_input) != crc_stored {
        return Err(WalError::Corrupt {
            lsn,
            detail: "checksum mismatch".into(),
        });
    }
    let record = decode_payload(payload).map_err(|detail| WalError::Corrupt { lsn, detail })?;
    *offset = payload_start + payload_len;
    Ok((lsn, record))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc64_known_vector() {
        // ECMA-182 check value for "123456789".
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
    }

    #[test]
    fn frame_roundtrip() {
        let r = WalRecord::Lifecycle {
            query_id: 7,
            stage: LifecycleStage::Completed,
            at: SimTime::from_micros(1_234_567),
        };
        let frame = encode_frame(&r, 42);
        let mut off = 0;
        let (lsn, decoded) = decode_frame(&frame, &mut off).unwrap();
        assert_eq!(lsn, 42);
        assert_eq!(decoded, r);
        assert_eq!(off, frame.len());
    }

    #[test]
    fn every_fault_variant_roundtrips() {
        let d = DeviceId::new(DeviceKind::Camera, 3);
        let faults = vec![
            FaultEvent::Crash(d),
            FaultEvent::Recover(d),
            FaultEvent::LossBurstStart { extra_loss: 0.25 },
            FaultEvent::LossBurstEnd,
            FaultEvent::LatencySpikeStart { factor: 8.0 },
            FaultEvent::LatencySpikeEnd,
            FaultEvent::ProcessCrash(d),
            FaultEvent::Partition {
                a: 1,
                b: 3,
                window: SimDuration::from_secs(20),
            },
        ];
        let r = WalRecord::FaultsInjected {
            events: faults
                .into_iter()
                .enumerate()
                .map(|(i, f)| (SimTime::from_micros(i as u64 * 10), f))
                .collect(),
        };
        let frame = encode_frame(&r, 5);
        let mut off = 0;
        let (lsn, decoded) = decode_frame(&frame, &mut off).unwrap();
        assert_eq!(lsn, 5);
        assert_eq!(decoded, r);
    }

    #[test]
    fn corruption_is_loud() {
        let r = WalRecord::SqlExec {
            sql: "CREATE AQ x AS SELECT beep(s.id) FROM sensor s".into(),
        };
        let mut frame = encode_frame(&r, 3);
        let last = frame.len() - 1;
        frame[last] ^= 0x40;
        let mut off = 0;
        assert!(matches!(
            decode_frame(&frame, &mut off),
            Err(WalError::Corrupt { lsn: 3, .. })
        ));
    }

    #[test]
    fn truncation_is_torn_not_shorter() {
        let r = WalRecord::DrainEscalated;
        let frame = encode_frame(&r, 9);
        let mut off = 0;
        assert!(matches!(
            decode_frame(&frame[..frame.len() - 1], &mut off),
            Err(WalError::TornFrame { .. })
        ));
    }
}
