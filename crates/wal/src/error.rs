//! WAL and recovery error types. Every failure is explicit: a torn or
//! corrupt log is an error to surface, never a shorter log to accept.

use std::fmt;

/// A log-layer failure: I/O, framing, or checksum damage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalError {
    /// The store could not be read or written.
    Io(String),
    /// A frame's checksum does not match its payload — the record at this
    /// LSN (and everything after it) cannot be trusted.
    Corrupt {
        /// LSN claimed by the damaged frame.
        lsn: u64,
        /// What specifically failed.
        detail: String,
    },
    /// The log ends mid-frame: an append was cut short. The byte offset is
    /// where the partial frame begins.
    TornFrame {
        /// Byte offset of the torn frame.
        offset: u64,
    },
    /// The payload decoded to no known record kind.
    UnknownRecord {
        /// The unrecognized kind tag.
        kind: u8,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(msg) => write!(f, "wal i/o error: {msg}"),
            WalError::Corrupt { lsn, detail } => {
                write!(f, "wal frame lsn={lsn} is corrupt: {detail}")
            }
            WalError::TornFrame { offset } => {
                write!(f, "wal ends mid-frame at byte {offset} (torn append)")
            }
            WalError::UnknownRecord { kind } => {
                write!(f, "wal record kind {kind:#04x} is unknown")
            }
        }
    }
}

impl std::error::Error for WalError {}

/// A recovery failure: the log could not be replayed into a state that
/// matches what the log itself claims happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryError {
    /// The underlying log could not be read.
    Wal(WalError),
    /// The replayed engine emitted a record that differs from the logged
    /// one at the same position — the log and the replay disagree about
    /// history, so neither can be trusted.
    Divergence {
        /// Index (within the replayed suffix) of the first disagreement.
        at: usize,
        /// The record the log expected.
        expected: String,
        /// The record the replay emitted.
        emitted: String,
    },
    /// Replay consumed every command but logged records remain — the
    /// engine did strictly less than the log says it did.
    Leftover {
        /// Number of unconsumed records.
        remaining: usize,
    },
    /// The log's genesis fingerprint does not match the genesis image the
    /// recovery was given — this log belongs to a different run.
    GenesisMismatch {
        /// Fingerprint recorded in the log.
        logged: u64,
        /// Fingerprint of the supplied genesis image.
        supplied: u64,
    },
    /// The replay suffix crosses a device migration *into* this shard.
    /// Adopted device state is a live image, not a loggable record, so the
    /// snapshot barrier taken at migration time is required; without it the
    /// shard is honestly unrecoverable from this log alone.
    UnreplayableMigration {
        /// The migrated device.
        device: String,
    },
    /// A logged request could not be decoded back into an executable one.
    BadRequest(String),
}

impl From<WalError> for RecoveryError {
    fn from(e: WalError) -> Self {
        RecoveryError::Wal(e)
    }
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::Wal(e) => write!(f, "recovery failed reading the log: {e}"),
            RecoveryError::Divergence {
                at,
                expected,
                emitted,
            } => write!(
                f,
                "replay diverged from the log at record {at}: log says {expected}, \
                 replay produced {emitted}"
            ),
            RecoveryError::Leftover { remaining } => write!(
                f,
                "replay finished with {remaining} logged record(s) unconsumed"
            ),
            RecoveryError::GenesisMismatch { logged, supplied } => write!(
                f,
                "log genesis fingerprint {logged:#018x} does not match supplied \
                 genesis {supplied:#018x}"
            ),
            RecoveryError::UnreplayableMigration { device } => write!(
                f,
                "replay suffix crosses a migration-in of {device}; recovery requires \
                 the post-migration snapshot barrier"
            ),
            RecoveryError::BadRequest(msg) => {
                write!(f, "logged request failed to decode: {msg}")
            }
        }
    }
}

impl std::error::Error for RecoveryError {}
