//! Log storage backends: a deterministic in-memory store for simulation and
//! tests, and a real file-backed store that flushes every append.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::codec::decode_frame;
use crate::error::WalError;
use crate::record::WalRecord;

/// Where encoded frames live. The sink talks to stores in whole frames;
/// `replace_tail` exists solely for `RunUntil` tail-coalescing (rewriting
/// the final frame in place bounds log volume under per-event stepping).
pub trait LogStore: Send {
    /// Appends one encoded frame.
    fn append(&mut self, frame: &[u8]) -> Result<(), WalError>;
    /// Replaces the final frame with `frame`. Errors when the log is empty.
    fn replace_tail(&mut self, frame: &[u8]) -> Result<(), WalError>;
    /// Decodes every stored frame, in order. Fails loudly on any damage.
    fn read_all(&mut self) -> Result<Vec<(u64, WalRecord)>, WalError>;
    /// Number of live frames (after any prefix truncation).
    fn frame_count(&self) -> usize;
    /// Frames dropped from the front by compaction.
    fn base(&self) -> u64;
    /// Total live bytes.
    fn byte_len(&self) -> u64;
    /// Drops the first `n` live frames (snapshot compaction). The base
    /// offset advances so LSNs stay stable.
    fn truncate_prefix(&mut self, n: usize) -> Result<(), WalError>;
}

/// Deterministic in-memory store: frames in a vector, plus a base offset
/// recording how many were compacted away.
#[derive(Debug, Default, Clone)]
pub struct MemStore {
    frames: Vec<Vec<u8>>,
    base: u64,
}

impl MemStore {
    /// An empty store.
    pub fn new() -> Self {
        MemStore::default()
    }
}

impl LogStore for MemStore {
    fn append(&mut self, frame: &[u8]) -> Result<(), WalError> {
        self.frames.push(frame.to_vec());
        Ok(())
    }

    fn replace_tail(&mut self, frame: &[u8]) -> Result<(), WalError> {
        let tail = self
            .frames
            .last_mut()
            .ok_or_else(|| WalError::Io("replace_tail on empty log".into()))?;
        *tail = frame.to_vec();
        Ok(())
    }

    fn read_all(&mut self) -> Result<Vec<(u64, WalRecord)>, WalError> {
        let mut out = Vec::with_capacity(self.frames.len());
        for frame in &self.frames {
            let mut off = 0;
            out.push(decode_frame(frame, &mut off)?);
        }
        Ok(out)
    }

    fn frame_count(&self) -> usize {
        self.frames.len()
    }

    fn base(&self) -> u64 {
        self.base
    }

    fn byte_len(&self) -> u64 {
        self.frames.iter().map(|f| f.len() as u64).sum()
    }

    fn truncate_prefix(&mut self, n: usize) -> Result<(), WalError> {
        if n > self.frames.len() {
            return Err(WalError::Io(format!(
                "truncate_prefix({n}) exceeds {} live frames",
                self.frames.len()
            )));
        }
        self.frames.drain(..n);
        self.base += n as u64;
        Ok(())
    }
}

/// File-backed store. Every append is written and flushed immediately —
/// the durability point is the return of `append`, not some later sync.
#[derive(Debug)]
pub struct FileStore {
    file: File,
    path: PathBuf,
    /// Byte offset where each live frame starts (parallel to frame order).
    offsets: Vec<u64>,
    base: u64,
    end: u64,
}

impl FileStore {
    /// Creates (truncating) a fresh log file.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] when the file cannot be created.
    pub fn create(path: impl AsRef<Path>) -> Result<Self, WalError> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| WalError::Io(format!("create {}: {e}", path.display())))?;
        Ok(FileStore {
            file,
            path,
            offsets: Vec::new(),
            base: 0,
            end: 0,
        })
    }

    /// Opens an existing log file, scanning and validating every frame.
    ///
    /// # Errors
    ///
    /// [`WalError`] on I/O failure or any frame damage — an unreadable log
    /// is reported, never silently shortened.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, WalError> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .map_err(|e| WalError::Io(format!("open {}: {e}", path.display())))?;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)
            .map_err(|e| WalError::Io(format!("read {}: {e}", path.display())))?;
        let mut offsets = Vec::new();
        let mut off = 0usize;
        while off < buf.len() {
            offsets.push(off as u64);
            decode_frame(&buf, &mut off)?;
        }
        Ok(FileStore {
            file,
            path,
            offsets,
            base: 0,
            end: buf.len() as u64,
        })
    }

    /// The backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn write_at(&mut self, pos: u64, bytes: &[u8]) -> Result<(), WalError> {
        self.file
            .seek(SeekFrom::Start(pos))
            .and_then(|_| self.file.write_all(bytes))
            .and_then(|_| self.file.flush())
            .map_err(|e| WalError::Io(format!("write {}: {e}", self.path.display())))
    }
}

impl LogStore for FileStore {
    fn append(&mut self, frame: &[u8]) -> Result<(), WalError> {
        let pos = self.end;
        self.write_at(pos, frame)?;
        self.offsets.push(pos);
        self.end = pos + frame.len() as u64;
        Ok(())
    }

    fn replace_tail(&mut self, frame: &[u8]) -> Result<(), WalError> {
        let &pos = self
            .offsets
            .last()
            .ok_or_else(|| WalError::Io("replace_tail on empty log".into()))?;
        self.file
            .set_len(pos)
            .map_err(|e| WalError::Io(format!("truncate {}: {e}", self.path.display())))?;
        self.write_at(pos, frame)?;
        self.end = pos + frame.len() as u64;
        Ok(())
    }

    fn read_all(&mut self) -> Result<Vec<(u64, WalRecord)>, WalError> {
        self.file
            .seek(SeekFrom::Start(0))
            .map_err(|e| WalError::Io(format!("seek {}: {e}", self.path.display())))?;
        let mut buf = Vec::new();
        self.file
            .read_to_end(&mut buf)
            .map_err(|e| WalError::Io(format!("read {}: {e}", self.path.display())))?;
        let mut out = Vec::with_capacity(self.offsets.len());
        let mut off = 0usize;
        while off < buf.len() {
            out.push(decode_frame(&buf, &mut off)?);
        }
        Ok(out)
    }

    fn frame_count(&self) -> usize {
        self.offsets.len()
    }

    fn base(&self) -> u64 {
        self.base
    }

    fn byte_len(&self) -> u64 {
        self.end - self.offsets.first().copied().unwrap_or(self.end)
    }

    fn truncate_prefix(&mut self, n: usize) -> Result<(), WalError> {
        if n > self.offsets.len() {
            return Err(WalError::Io(format!(
                "truncate_prefix({n}) exceeds {} live frames",
                self.offsets.len()
            )));
        }
        if n == 0 {
            return Ok(());
        }
        // Rewrite the file with only the surviving suffix. Compaction is
        // rare (it follows snapshots), so the full rewrite is acceptable.
        self.file
            .seek(SeekFrom::Start(0))
            .map_err(|e| WalError::Io(format!("seek {}: {e}", self.path.display())))?;
        let mut buf = Vec::new();
        self.file
            .read_to_end(&mut buf)
            .map_err(|e| WalError::Io(format!("read {}: {e}", self.path.display())))?;
        let cut = self.offsets[n] as usize;
        let survivors = buf[cut..].to_vec();
        self.file
            .set_len(0)
            .map_err(|e| WalError::Io(format!("truncate {}: {e}", self.path.display())))?;
        self.write_at(0, &survivors)?;
        self.offsets = self
            .offsets
            .split_off(n)
            .iter()
            .map(|o| o - cut as u64)
            .collect();
        self.base += n as u64;
        self.end = survivors.len() as u64;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::encode_frame;
    use aorta_sim::SimTime;

    fn rec(n: u64) -> WalRecord {
        WalRecord::RunUntil {
            deadline: SimTime::from_micros(n),
        }
    }

    #[test]
    fn mem_store_roundtrip_and_compaction() {
        let mut s = MemStore::new();
        for i in 0..5 {
            s.append(&encode_frame(&rec(i), i)).unwrap();
        }
        assert_eq!(s.frame_count(), 5);
        let all = s.read_all().unwrap();
        assert_eq!(all.len(), 5);
        assert_eq!(all[3], (3, rec(3)));
        s.truncate_prefix(2).unwrap();
        assert_eq!(s.base(), 2);
        let all = s.read_all().unwrap();
        assert_eq!(all[0], (2, rec(2)));
    }

    #[test]
    fn file_store_survives_reopen() {
        let path = std::env::temp_dir().join(format!("aorta_wal_test_{}.wal", std::process::id()));
        {
            let mut s = FileStore::create(&path).unwrap();
            for i in 0..4 {
                s.append(&encode_frame(&rec(i), i)).unwrap();
            }
            s.replace_tail(&encode_frame(&rec(99), 3)).unwrap();
        }
        let mut s = FileStore::open(&path).unwrap();
        let all = s.read_all().unwrap();
        assert_eq!(all.len(), 4);
        assert_eq!(all[3], (3, rec(99)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_store_reopen_rejects_corruption() {
        let path =
            std::env::temp_dir().join(format!("aorta_wal_corrupt_{}.wal", std::process::id()));
        {
            let mut s = FileStore::create(&path).unwrap();
            s.append(&encode_frame(&rec(0), 0)).unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            FileStore::open(&path),
            Err(WalError::Corrupt { .. })
        ));
        std::fs::remove_file(&path).ok();
    }
}
