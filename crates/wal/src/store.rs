//! Log storage backends: a deterministic in-memory store for simulation and
//! tests, and a real file-backed store that flushes every append.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::codec::decode_frame;
use crate::error::WalError;
use crate::record::WalRecord;

/// When a [`FileStore`] makes buffered appends durable (group commit).
///
/// Whatever the policy, the log on disk is always a clean prefix of whole
/// frames: a crash between batched appends loses the unflushed suffix but
/// can never manufacture a corrupt or torn prefix out of flushed frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FlushPolicy {
    /// Write and flush on every append — the durability point is the
    /// return of `append` itself. The default, and the pre-policy behavior.
    #[default]
    EveryAppend,
    /// Buffer appends and flush once `n` frames are pending (or on an
    /// explicit [`LogStore::sync`], whichever comes first).
    EveryN(usize),
    /// Buffer appends and flush only on [`LogStore::sync`] — in practice,
    /// when the sink seals the log tail at a snapshot barrier.
    OnSeal,
}

/// Where encoded frames live. The sink talks to stores in whole frames;
/// `replace_tail` exists solely for `RunUntil` tail-coalescing (rewriting
/// the final frame in place bounds log volume under per-event stepping).
pub trait LogStore: Send {
    /// Appends one encoded frame.
    fn append(&mut self, frame: &[u8]) -> Result<(), WalError>;
    /// Replaces the final frame with `frame`. Errors when the log is empty.
    fn replace_tail(&mut self, frame: &[u8]) -> Result<(), WalError>;
    /// Decodes every stored frame, in order. Fails loudly on any damage.
    fn read_all(&mut self) -> Result<Vec<(u64, WalRecord)>, WalError>;
    /// Number of live frames (after any prefix truncation).
    fn frame_count(&self) -> usize;
    /// Frames dropped from the front by compaction.
    fn base(&self) -> u64;
    /// Total live bytes.
    fn byte_len(&self) -> u64;
    /// Drops the first `n` live frames (snapshot compaction). The base
    /// offset advances so LSNs stay stable.
    fn truncate_prefix(&mut self, n: usize) -> Result<(), WalError>;
    /// Forces any buffered appends to durable storage. A no-op for stores
    /// that are always durable (or never are, like [`MemStore`]).
    fn sync(&mut self) -> Result<(), WalError> {
        Ok(())
    }
}

/// Deterministic in-memory store: frames in a vector, plus a base offset
/// recording how many were compacted away.
#[derive(Debug, Default, Clone)]
pub struct MemStore {
    frames: Vec<Vec<u8>>,
    base: u64,
}

impl MemStore {
    /// An empty store.
    pub fn new() -> Self {
        MemStore::default()
    }
}

impl LogStore for MemStore {
    fn append(&mut self, frame: &[u8]) -> Result<(), WalError> {
        self.frames.push(frame.to_vec());
        Ok(())
    }

    fn replace_tail(&mut self, frame: &[u8]) -> Result<(), WalError> {
        let tail = self
            .frames
            .last_mut()
            .ok_or_else(|| WalError::Io("replace_tail on empty log".into()))?;
        *tail = frame.to_vec();
        Ok(())
    }

    fn read_all(&mut self) -> Result<Vec<(u64, WalRecord)>, WalError> {
        let mut out = Vec::with_capacity(self.frames.len());
        for frame in &self.frames {
            let mut off = 0;
            out.push(decode_frame(frame, &mut off)?);
        }
        Ok(out)
    }

    fn frame_count(&self) -> usize {
        self.frames.len()
    }

    fn base(&self) -> u64 {
        self.base
    }

    fn byte_len(&self) -> u64 {
        self.frames.iter().map(|f| f.len() as u64).sum()
    }

    fn truncate_prefix(&mut self, n: usize) -> Result<(), WalError> {
        if n > self.frames.len() {
            return Err(WalError::Io(format!(
                "truncate_prefix({n}) exceeds {} live frames",
                self.frames.len()
            )));
        }
        self.frames.drain(..n);
        self.base += n as u64;
        Ok(())
    }
}

/// File-backed store with a configurable group-commit policy. Under the
/// default [`FlushPolicy::EveryAppend`] every append is written and flushed
/// immediately — the durability point is the return of `append` itself;
/// under the batching policies appends accumulate in `pending` and reach
/// disk on the policy's trigger or an explicit [`LogStore::sync`].
///
/// The logical log (`frame_count`, `read_all`, `replace_tail`) always
/// includes pending frames; only *durability* is deferred, never
/// visibility.
#[derive(Debug)]
pub struct FileStore {
    file: File,
    path: PathBuf,
    /// Byte offset where each durable frame starts (parallel to frame
    /// order, excluding `pending`).
    offsets: Vec<u64>,
    base: u64,
    /// End of the durable bytes. Pending frames live past this point only
    /// in memory.
    end: u64,
    /// Appended frames not yet written to the file.
    pending: Vec<Vec<u8>>,
    policy: FlushPolicy,
}

impl FileStore {
    /// Creates (truncating) a fresh log file.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] when the file cannot be created.
    pub fn create(path: impl AsRef<Path>) -> Result<Self, WalError> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| WalError::Io(format!("create {}: {e}", path.display())))?;
        Ok(FileStore {
            file,
            path,
            offsets: Vec::new(),
            base: 0,
            end: 0,
            pending: Vec::new(),
            policy: FlushPolicy::EveryAppend,
        })
    }

    /// Opens an existing log file, scanning and validating every frame.
    ///
    /// # Errors
    ///
    /// [`WalError`] on I/O failure or any frame damage — an unreadable log
    /// is reported, never silently shortened.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, WalError> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .map_err(|e| WalError::Io(format!("open {}: {e}", path.display())))?;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)
            .map_err(|e| WalError::Io(format!("read {}: {e}", path.display())))?;
        let mut offsets = Vec::new();
        let mut off = 0usize;
        while off < buf.len() {
            offsets.push(off as u64);
            decode_frame(&buf, &mut off)?;
        }
        Ok(FileStore {
            file,
            path,
            offsets,
            base: 0,
            end: buf.len() as u64,
            pending: Vec::new(),
            policy: FlushPolicy::EveryAppend,
        })
    }

    /// Sets the group-commit policy (builder style).
    pub fn with_policy(mut self, policy: FlushPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The active group-commit policy.
    pub fn policy(&self) -> FlushPolicy {
        self.policy
    }

    /// Frames appended but not yet durable.
    pub fn pending_frames(&self) -> usize {
        self.pending.len()
    }

    /// The backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Writes every pending frame to the file in one contiguous write.
    fn flush_pending(&mut self) -> Result<(), WalError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let batch: Vec<u8> = self.pending.concat();
        self.write_at(self.end, &batch)?;
        let mut pos = self.end;
        for frame in &self.pending {
            self.offsets.push(pos);
            pos += frame.len() as u64;
        }
        self.pending.clear();
        self.end = pos;
        Ok(())
    }

    fn write_at(&mut self, pos: u64, bytes: &[u8]) -> Result<(), WalError> {
        self.file
            .seek(SeekFrom::Start(pos))
            .and_then(|_| self.file.write_all(bytes))
            .and_then(|_| self.file.flush())
            .map_err(|e| WalError::Io(format!("write {}: {e}", self.path.display())))
    }
}

impl LogStore for FileStore {
    fn append(&mut self, frame: &[u8]) -> Result<(), WalError> {
        self.pending.push(frame.to_vec());
        match self.policy {
            FlushPolicy::EveryAppend => self.flush_pending(),
            FlushPolicy::EveryN(n) => {
                if self.pending.len() >= n.max(1) {
                    self.flush_pending()
                } else {
                    Ok(())
                }
            }
            FlushPolicy::OnSeal => Ok(()),
        }
    }

    fn replace_tail(&mut self, frame: &[u8]) -> Result<(), WalError> {
        // A buffered tail is replaced in memory: coalescing never forces a
        // write the policy was deferring.
        if let Some(tail) = self.pending.last_mut() {
            *tail = frame.to_vec();
            return Ok(());
        }
        let &pos = self
            .offsets
            .last()
            .ok_or_else(|| WalError::Io("replace_tail on empty log".into()))?;
        self.file
            .set_len(pos)
            .map_err(|e| WalError::Io(format!("truncate {}: {e}", self.path.display())))?;
        self.write_at(pos, frame)?;
        self.end = pos + frame.len() as u64;
        Ok(())
    }

    fn read_all(&mut self) -> Result<Vec<(u64, WalRecord)>, WalError> {
        self.file
            .seek(SeekFrom::Start(0))
            .map_err(|e| WalError::Io(format!("seek {}: {e}", self.path.display())))?;
        let mut buf = Vec::new();
        self.file
            .read_to_end(&mut buf)
            .map_err(|e| WalError::Io(format!("read {}: {e}", self.path.display())))?;
        // Pending frames are part of the logical log even before they are
        // durable; readers must never see a shorter log than the sink wrote.
        for frame in &self.pending {
            buf.extend_from_slice(frame);
        }
        let mut out = Vec::with_capacity(self.offsets.len() + self.pending.len());
        let mut off = 0usize;
        while off < buf.len() {
            out.push(decode_frame(&buf, &mut off)?);
        }
        Ok(out)
    }

    fn frame_count(&self) -> usize {
        self.offsets.len() + self.pending.len()
    }

    fn base(&self) -> u64 {
        self.base
    }

    fn byte_len(&self) -> u64 {
        let durable = self.end - self.offsets.first().copied().unwrap_or(self.end);
        durable + self.pending.iter().map(|f| f.len() as u64).sum::<u64>()
    }

    fn sync(&mut self) -> Result<(), WalError> {
        self.flush_pending()
    }

    fn truncate_prefix(&mut self, n: usize) -> Result<(), WalError> {
        // Compaction follows a snapshot barrier, which seals (and syncs)
        // the tail first — but flush defensively so offsets stay coherent.
        self.flush_pending()?;
        if n > self.offsets.len() {
            return Err(WalError::Io(format!(
                "truncate_prefix({n}) exceeds {} live frames",
                self.offsets.len()
            )));
        }
        if n == 0 {
            return Ok(());
        }
        // Rewrite the file with only the surviving suffix. Compaction is
        // rare (it follows snapshots), so the full rewrite is acceptable.
        self.file
            .seek(SeekFrom::Start(0))
            .map_err(|e| WalError::Io(format!("seek {}: {e}", self.path.display())))?;
        let mut buf = Vec::new();
        self.file
            .read_to_end(&mut buf)
            .map_err(|e| WalError::Io(format!("read {}: {e}", self.path.display())))?;
        let cut = self.offsets[n] as usize;
        let survivors = buf[cut..].to_vec();
        self.file
            .set_len(0)
            .map_err(|e| WalError::Io(format!("truncate {}: {e}", self.path.display())))?;
        self.write_at(0, &survivors)?;
        self.offsets = self
            .offsets
            .split_off(n)
            .iter()
            .map(|o| o - cut as u64)
            .collect();
        self.base += n as u64;
        self.end = survivors.len() as u64;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::encode_frame;
    use aorta_sim::SimTime;

    fn rec(n: u64) -> WalRecord {
        WalRecord::RunUntil {
            deadline: SimTime::from_micros(n),
        }
    }

    #[test]
    fn mem_store_roundtrip_and_compaction() {
        let mut s = MemStore::new();
        for i in 0..5 {
            s.append(&encode_frame(&rec(i), i)).unwrap();
        }
        assert_eq!(s.frame_count(), 5);
        let all = s.read_all().unwrap();
        assert_eq!(all.len(), 5);
        assert_eq!(all[3], (3, rec(3)));
        s.truncate_prefix(2).unwrap();
        assert_eq!(s.base(), 2);
        let all = s.read_all().unwrap();
        assert_eq!(all[0], (2, rec(2)));
    }

    #[test]
    fn file_store_survives_reopen() {
        let path = std::env::temp_dir().join(format!("aorta_wal_test_{}.wal", std::process::id()));
        {
            let mut s = FileStore::create(&path).unwrap();
            for i in 0..4 {
                s.append(&encode_frame(&rec(i), i)).unwrap();
            }
            s.replace_tail(&encode_frame(&rec(99), 3)).unwrap();
        }
        let mut s = FileStore::open(&path).unwrap();
        let all = s.read_all().unwrap();
        assert_eq!(all.len(), 4);
        assert_eq!(all[3], (3, rec(99)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn batched_appends_lost_in_a_crash_leave_a_clean_shorter_log() {
        let path = std::env::temp_dir().join(format!("aorta_wal_batch_{}.wal", std::process::id()));
        {
            let mut s = FileStore::create(&path)
                .unwrap()
                .with_policy(FlushPolicy::EveryN(3));
            for i in 0..5 {
                s.append(&encode_frame(&rec(i), i)).unwrap();
            }
            // 3 flushed at the policy trigger, 2 still pending…
            assert_eq!(s.pending_frames(), 2);
            // …but the logical log shows all 5 to the sink.
            assert_eq!(s.frame_count(), 5);
            assert_eq!(s.read_all().unwrap().len(), 5);
            // Crash: the store drops without a sync; pending frames die.
        }
        let mut s = FileStore::open(&path).unwrap();
        let all = s.read_all().unwrap();
        assert_eq!(all.len(), 3, "the flushed prefix survives, whole");
        assert_eq!(all[2], (2, rec(2)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_batch_write_is_torn_never_a_corrupt_prefix() {
        let path = std::env::temp_dir().join(format!("aorta_wal_torn_{}.wal", std::process::id()));
        {
            let mut s = FileStore::create(&path)
                .unwrap()
                .with_policy(FlushPolicy::OnSeal);
            for i in 0..3 {
                s.append(&encode_frame(&rec(i), i)).unwrap();
            }
            s.sync().unwrap();
        }
        // Simulate a crash mid-way through the next batch's write: half a
        // frame makes it to disk.
        let torn = encode_frame(&rec(3), 3);
        let mut bytes = std::fs::read(&path).unwrap();
        let synced_len = bytes.len();
        bytes.extend_from_slice(&torn[..torn.len() / 2]);
        std::fs::write(&path, &bytes).unwrap();
        // The damage is reported as a torn frame — typed, at the batch
        // boundary — never as corruption of the flushed prefix.
        match FileStore::open(&path) {
            Err(WalError::TornFrame { offset }) => assert_eq!(offset, synced_len as u64),
            other => panic!("expected TornFrame, got {other:?}"),
        }
        // And the flushed prefix itself still decodes completely.
        let mut off = 0usize;
        let mut survivors = 0;
        while off < synced_len {
            decode_frame(&bytes[..synced_len], &mut off).unwrap();
            survivors += 1;
        }
        assert_eq!(survivors, 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn on_seal_policy_defers_everything_until_sync() {
        let path = std::env::temp_dir().join(format!("aorta_wal_seal_{}.wal", std::process::id()));
        let mut s = FileStore::create(&path)
            .unwrap()
            .with_policy(FlushPolicy::OnSeal);
        for i in 0..4 {
            s.append(&encode_frame(&rec(i), i)).unwrap();
        }
        // Tail coalescing edits the buffered frame without forcing a write.
        s.replace_tail(&encode_frame(&rec(42), 3)).unwrap();
        assert_eq!(s.pending_frames(), 4);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
        s.sync().unwrap();
        assert_eq!(s.pending_frames(), 0);
        assert!(std::fs::metadata(&path).unwrap().len() > 0);
        drop(s);
        let mut s = FileStore::open(&path).unwrap();
        let all = s.read_all().unwrap();
        assert_eq!(all.len(), 4);
        assert_eq!(all[3], (3, rec(42)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_store_reopen_rejects_corruption() {
        let path =
            std::env::temp_dir().join(format!("aorta_wal_corrupt_{}.wal", std::process::id()));
        {
            let mut s = FileStore::create(&path).unwrap();
            s.append(&encode_frame(&rec(0), 0)).unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            FileStore::open(&path),
            Err(WalError::Corrupt { .. })
        ));
        std::fs::remove_file(&path).ok();
    }
}
