//! The snapshot/recovery manager: owns one shard's log handle plus a vault
//! of state-image snapshots keyed by log position.
//!
//! Snapshots are deep clones of the engine taken *between* host commands —
//! always a safe point: no record is ever emitted mid-snapshot, so the
//! vault key (the live frame count at snapshot time) exactly partitions
//! the log into "already reflected in the snapshot" and "replay this".
//!
//! Two snapshot triggers:
//! - **cadence** — every `snapshot_every` appended frames;
//! - **migration barrier** — forced immediately after a device migration,
//!   because a `MigrateIn` record cannot be replayed from bytes alone
//!   (adopted device state is a live image). The barrier guarantees no
//!   replay suffix ever crosses one.

use crate::error::WalError;
use crate::record::WalRecord;
use crate::sink::{WalHandle, WalStats};

/// Snapshot vault + log handle for one shard. `S` is the snapshot type
/// (the cluster instantiates it with a boxed engine image).
pub struct WalManager<S> {
    handle: WalHandle,
    /// (absolute frame index, state image) — ascending.
    vault: Vec<(u64, S)>,
    snapshot_every: usize,
    /// Absolute frame index at the last snapshot (or genesis).
    last_snapshot_at: u64,
    snapshots_taken: u64,
}

impl<S> WalManager<S> {
    /// A manager over `handle`, snapshotting every `snapshot_every` frames.
    pub fn new(handle: WalHandle, snapshot_every: usize) -> Self {
        let last_snapshot_at = handle.base() + handle.frame_count() as u64;
        WalManager {
            handle,
            vault: Vec::new(),
            snapshot_every: snapshot_every.max(1),
            last_snapshot_at,
            snapshots_taken: 0,
        }
    }

    /// A clone of the log handle (for attaching to an engine).
    pub fn handle(&self) -> WalHandle {
        self.handle.clone()
    }

    /// Absolute frame position of the log tail.
    pub fn position(&self) -> u64 {
        self.handle.base() + self.handle.frame_count() as u64
    }

    /// Takes a snapshot now if the cadence says one is due.
    pub fn maybe_snapshot(&mut self, image: impl FnOnce() -> S) {
        if self.position() - self.last_snapshot_at >= self.snapshot_every as u64 {
            self.force_snapshot(image);
        }
    }

    /// Takes a snapshot unconditionally (the migration barrier).
    pub fn force_snapshot(&mut self, image: impl FnOnce() -> S) {
        // The vault key promises every frame below it is immutable, so a
        // later `RunUntil` must not coalesce into the current tail frame.
        self.handle.seal_tail();
        let at = self.position();
        // A second snapshot at the same position replaces the first — the
        // newer image reflects the same log prefix.
        if let Some(last) = self.vault.last_mut() {
            if last.0 == at {
                last.1 = image();
                return;
            }
        }
        self.vault.push((at, image()));
        self.last_snapshot_at = at;
        self.snapshots_taken += 1;
    }

    /// The most recent snapshot and its absolute frame position.
    pub fn latest_snapshot(&self) -> Option<(u64, &S)> {
        self.vault.last().map(|(at, s)| (*at, s))
    }

    /// Snapshots taken so far.
    pub fn snapshots_taken(&self) -> u64 {
        self.snapshots_taken
    }

    /// Decodes the full live log.
    ///
    /// # Errors
    ///
    /// [`WalError`] on any frame damage.
    pub fn records(&self) -> Result<Vec<WalRecord>, WalError> {
        self.handle.records()
    }

    /// Appends records produced by replaying past the log's end (the
    /// crash-truncated tail re-derived during recovery).
    pub fn append_all(&self, records: Vec<WalRecord>) {
        for r in records {
            self.handle.append(r);
        }
    }

    /// Stream counters.
    pub fn stats(&self) -> WalStats {
        self.handle.stats()
    }

    /// Compacts the log up to the latest snapshot: frames the snapshot
    /// already reflects are dropped, and recovery starts from the vault.
    ///
    /// # Errors
    ///
    /// [`WalError`] when the store refuses the truncation.
    pub fn compact_to_snapshot(&mut self) -> Result<usize, WalError> {
        let Some((at, _)) = self.latest_snapshot() else {
            return Ok(0);
        };
        let drop = (at - self.handle.base()) as usize;
        self.handle.truncate_prefix(drop)?;
        Ok(drop)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;
    use aorta_sim::SimTime;

    #[test]
    fn cadence_and_barrier_snapshots() {
        let h = WalHandle::record(Box::new(MemStore::new()), None, "t");
        let mut m: WalManager<u64> = WalManager::new(h.clone(), 3);
        for i in 0..7 {
            h.append(WalRecord::EdgeCommit {
                query_id: i,
                source: 0,
            });
            m.maybe_snapshot(|| u64::from(i));
        }
        // Snapshots at frame 3 and frame 6.
        assert_eq!(m.snapshots_taken(), 2);
        assert_eq!(m.latest_snapshot().map(|(at, s)| (at, *s)), Some((6, 5)));
        m.force_snapshot(|| 99);
        assert_eq!(m.latest_snapshot().map(|(at, s)| (at, *s)), Some((7, 99)));
    }

    #[test]
    fn snapshot_seals_the_tail_against_coalescing() {
        let h = WalHandle::record(Box::new(MemStore::new()), None, "t");
        let mut m: WalManager<u64> = WalManager::new(h.clone(), 100);
        h.append(WalRecord::RunUntil {
            deadline: SimTime::from_micros(1),
        });
        m.force_snapshot(|| 7);
        let (at, _) = m.latest_snapshot().unwrap();
        assert_eq!(at, 1);
        // A later advance must append a new frame, not rewrite frame 0 —
        // frame 0 is below the vault key and excluded from the snapshot's
        // replay suffix.
        h.append(WalRecord::RunUntil {
            deadline: SimTime::from_micros(2),
        });
        let records = m.records().unwrap();
        assert_eq!(
            records,
            vec![
                WalRecord::RunUntil {
                    deadline: SimTime::from_micros(1),
                },
                WalRecord::RunUntil {
                    deadline: SimTime::from_micros(2),
                },
            ]
        );
    }

    #[test]
    fn compaction_preserves_suffix() {
        let h = WalHandle::record(Box::new(MemStore::new()), None, "t");
        let mut m: WalManager<u64> = WalManager::new(h.clone(), 100);
        for i in 0..5 {
            h.append(WalRecord::RunUntil {
                deadline: SimTime::from_micros(i),
            });
            h.append(WalRecord::DrainEscalated);
        }
        m.force_snapshot(|| 1);
        h.append(WalRecord::DrainEscalated);
        let dropped = m.compact_to_snapshot().unwrap();
        assert_eq!(dropped, 10);
        assert_eq!(m.records().unwrap(), vec![WalRecord::DrainEscalated]);
        // The vault key still lines up with the compacted store.
        let (at, _) = m.latest_snapshot().unwrap();
        assert_eq!(at, h.base());
    }
}
