//! # aorta-wal — durable control plane for the Aorta engine
//!
//! A deterministic, append-only, checksummed write-ahead log plus a
//! snapshot/recovery manager, in the fail-loudly style of AeroDB: every
//! frame carries a CRC64 over its LSN and payload, readers refuse to
//! interpret damage as data, and recovery *cross-checks* the replayed run
//! against the logged one record-by-record instead of trusting either side.
//!
//! ## Design: command-sourced log with effect verification
//!
//! The Aorta engine is fully deterministic between external inputs (the
//! virtual clock, the seeded RNG, the seeded fault plan), so the log does
//! not need to capture state deltas. It records two interleaved record
//! classes:
//!
//! - **Commands** — the external inputs that drive the engine: SQL batches,
//!   fault-plan injection, clock advances, gateway re-injections and route
//!   probes, device migrations. Replay re-invokes exactly these.
//! - **Effects** — the durable control-plane transitions the engine derives
//!   from those inputs: catalog mutations, rising-edge commits, request
//!   lifecycle transitions, breaker state changes, applied process crashes.
//!   During replay the engine re-emits them and the [`WalHandle`] in verify
//!   mode checks each one against the log; any mismatch is a
//!   [`RecoveryError::Divergence`], never a silent acceptance.
//!
//! Recovery = clone the latest snapshot (a full in-memory state image),
//! replay the log suffix through the engine's own public entry points, and
//! resume at the exact virtual-clock point. Because a simulated process
//! crash has zero observable footprint (no trace or stat change), a
//! crashed-and-recovered run is byte-identical to an uninterrupted one —
//! which is exactly what experiment E11 asserts.

mod codec;
mod error;
mod image;
mod manager;
mod record;
mod sink;
mod store;

pub use codec::{crc64, decode_frame, encode_frame, FRAME_HEADER_LEN, WAL_MAGIC};
pub use error::{RecoveryError, WalError};
pub use image::{SnapshotImage, IMAGE_HEADER_LEN, IMAGE_MAGIC, IMAGE_VERSION};
pub use manager::WalManager;
pub use record::{LifecycleStage, WalRecord, WireRequest};
pub use sink::{WalHandle, WalStats};
pub use store::{FileStore, FlushPolicy, LogStore, MemStore};
