//! # aorta-sql — the declarative application interface
//!
//! §2.2 of the paper: applications specify device actions through SQL-style
//! statements rather than per-device APIs. The dialect comprises:
//!
//! * `CREATE ACTION name(Type param, …) AS "lib/…" [PROFILE "…"]` —
//!   registers a user-defined action with its profile,
//! * `CREATE AQ name AS SELECT …` — registers a named **action-embedded
//!   continuous query** (the paper's `CREATE AQ snapshot AS SELECT photo(…)
//!   FROM sensor s, camera c WHERE s.accel_x > 500 AND coverage(c.id,
//!   s.loc)`),
//! * `DROP AQ name` — unregisters a query,
//! * plain `SELECT` — one-shot queries over the virtual device tables.
//!
//! The crate provides a lexer and recursive-descent parser with positioned
//! errors ([`parse`]), the [`ast`] types, and schema-aware validation
//! ([`validate`]).
//!
//! # Example
//!
//! ```
//! use aorta_sql::{parse, ast::Statement};
//!
//! let stmts = parse(
//!     r#"CREATE AQ snapshot AS
//!        SELECT photo(c.ip, s.loc, "photos/admin")
//!        FROM sensor s, camera c
//!        WHERE s.accel_x > 500 AND coverage(c.id, s.loc)"#,
//! )?;
//! match &stmts[0] {
//!     Statement::CreateAq(aq) => assert_eq!(aq.name, "snapshot"),
//!     other => panic!("unexpected {other:?}"),
//! }
//! # Ok::<(), aorta_sql::SqlError>(())
//! ```

#![warn(missing_docs)]

pub mod ast;
mod error;
mod lexer;
mod parser;
pub mod validate;

pub use error::SqlError;
pub use lexer::{Lexer, Span, Token, TokenKind};
pub use parser::{parse, parse_expr};
