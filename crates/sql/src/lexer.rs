//! The tokenizer.

use std::fmt;

use crate::SqlError;

/// A half-open byte range in the source, with 1-based line/column of its
/// start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub column: u32,
}

/// Token kinds of the Aorta SQL dialect.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// A keyword (uppercased; e.g. `SELECT`, `CREATE`, `AQ`).
    Keyword(String),
    /// An identifier (original casing preserved).
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
    /// A string literal (quotes removed, escapes resolved).
    Str(String),
    /// A punctuation or operator symbol, e.g. `(`, `,`, `>=`.
    Symbol(&'static str),
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Keyword(k) => write!(f, "{k}"),
            TokenKind::Ident(i) => write!(f, "identifier '{i}'"),
            TokenKind::Int(v) => write!(f, "integer {v}"),
            TokenKind::Float(v) => write!(f, "float {v}"),
            TokenKind::Str(s) => write!(f, "string \"{s}\""),
            TokenKind::Symbol(s) => write!(f, "'{s}'"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What it is.
    pub kind: TokenKind,
    /// Where it starts.
    pub span: Span,
}

const KEYWORDS: &[&str] = &[
    "SELECT", "FROM", "WHERE", "AND", "OR", "NOT", "CREATE", "DROP", "ACTION", "AQ", "AS",
    "PROFILE", "TRUE", "FALSE", "NULL", "EXPLAIN", "OVER", "LAST",
];

/// The tokenizer.
///
/// # Example
///
/// ```
/// use aorta_sql::{Lexer, TokenKind};
///
/// let tokens = Lexer::new("SELECT photo(c.ip)").tokenize()?;
/// assert_eq!(tokens[0].kind, TokenKind::Keyword("SELECT".into()));
/// assert_eq!(tokens.last().unwrap().kind, TokenKind::Eof);
/// # Ok::<(), aorta_sql::SqlError>(())
/// ```
#[derive(Debug)]
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    column: u32,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over the source text.
    pub fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            column: 1,
        }
    }

    /// Tokenizes the whole input, ending with an [`TokenKind::Eof`] token.
    ///
    /// # Errors
    ///
    /// [`SqlError`] on unterminated strings, malformed numbers, or
    /// unexpected characters.
    pub fn tokenize(mut self) -> Result<Vec<Token>, SqlError> {
        let mut out = Vec::new();
        loop {
            self.skip_ws_and_comments();
            let span = self.span();
            let Some(c) = self.peek() else {
                out.push(Token {
                    kind: TokenKind::Eof,
                    span,
                });
                return Ok(out);
            };
            let kind = match c {
                b'A'..=b'Z' | b'a'..=b'z' | b'_' => self.word(),
                b'0'..=b'9' => self.number()?,
                b'"' | b'\'' => self.string()?,
                _ => self.symbol()?,
            };
            out.push(Token { kind, span });
        }
    }

    fn span(&self) -> Span {
        Span {
            line: self.line,
            column: self.column,
        }
    }

    fn err(&self, msg: impl Into<String>) -> SqlError {
        SqlError::new(self.line, self.column, msg)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    fn skip_ws_and_comments(&mut self) {
        loop {
            match self.peek() {
                Some(b' ' | b'\t' | b'\r' | b'\n') => {
                    self.bump();
                }
                // SQL line comment: -- …
                Some(b'-') if self.peek2() == Some(b'-') => {
                    while let Some(c) = self.bump() {
                        if c == b'\n' {
                            break;
                        }
                    }
                }
                _ => return,
            }
        }
    }

    fn word(&mut self) -> TokenKind {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                s.push(c as char);
                self.bump();
            } else {
                break;
            }
        }
        let upper = s.to_ascii_uppercase();
        if KEYWORDS.contains(&upper.as_str()) {
            TokenKind::Keyword(upper)
        } else {
            TokenKind::Ident(s)
        }
    }

    fn number(&mut self) -> Result<TokenKind, SqlError> {
        let mut s = String::new();
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => {
                    s.push(c as char);
                    self.bump();
                }
                b'.' if !is_float && self.peek2().is_some_and(|d| d.is_ascii_digit()) => {
                    is_float = true;
                    s.push('.');
                    self.bump();
                }
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                    return Err(self.err(format!("malformed number '{s}{}'", c as char)));
                }
                _ => break,
            }
        }
        if is_float {
            s.parse::<f64>()
                .map(TokenKind::Float)
                .map_err(|_| self.err(format!("malformed float '{s}'")))
        } else {
            s.parse::<i64>()
                .map(TokenKind::Int)
                .map_err(|_| self.err(format!("integer '{s}' out of range")))
        }
    }

    fn string(&mut self) -> Result<TokenKind, SqlError> {
        let quote = self.bump().expect("caller saw a quote");
        let mut s = String::new();
        loop {
            match self.bump() {
                Some(c) if c == quote => return Ok(TokenKind::Str(s)),
                Some(b'\\') => match self.bump() {
                    Some(b'n') => s.push('\n'),
                    Some(b't') => s.push('\t'),
                    Some(b'\\') => s.push('\\'),
                    Some(c) if c == quote => s.push(c as char),
                    Some(c) => {
                        return Err(self.err(format!("unknown escape '\\{}'", c as char)));
                    }
                    None => return Err(self.err("unterminated string literal")),
                },
                Some(c) => s.push(c as char),
                None => return Err(self.err("unterminated string literal")),
            }
        }
    }

    fn symbol(&mut self) -> Result<TokenKind, SqlError> {
        let c = self.peek().expect("caller saw a character");
        let two = |lexer: &mut Self, sym| {
            lexer.bump();
            lexer.bump();
            Ok(TokenKind::Symbol(sym))
        };
        match (c, self.peek2()) {
            (b'>', Some(b'=')) => two(self, ">="),
            (b'<', Some(b'=')) => two(self, "<="),
            (b'<', Some(b'>')) => two(self, "<>"),
            (b'!', Some(b'=')) => two(self, "!="),
            _ => {
                let sym = match c {
                    b'(' => "(",
                    b')' => ")",
                    b',' => ",",
                    b'.' => ".",
                    b'=' => "=",
                    b'<' => "<",
                    b'>' => ">",
                    b'+' => "+",
                    b'-' => "-",
                    b'*' => "*",
                    b'/' => "/",
                    b';' => ";",
                    other => {
                        return Err(self.err(format!("unexpected character '{}'", other as char)))
                    }
                };
                self.bump();
                Ok(TokenKind::Symbol(sym))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(
            kinds("select Select SELECT"),
            vec![
                TokenKind::Keyword("SELECT".into()),
                TokenKind::Keyword("SELECT".into()),
                TokenKind::Keyword("SELECT".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn identifiers_keep_case() {
        assert_eq!(
            kinds("accel_x Camera1"),
            vec![
                TokenKind::Ident("accel_x".into()),
                TokenKind::Ident("Camera1".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn numbers_and_dots() {
        assert_eq!(
            kinds("500 2.5 s.loc"),
            vec![
                TokenKind::Int(500),
                TokenKind::Float(2.5),
                TokenKind::Ident("s".into()),
                TokenKind::Symbol("."),
                TokenKind::Ident("loc".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn strings_both_quotes_and_escapes() {
        assert_eq!(
            kinds(r#""photos/admin" 'it\'s' "a\nb""#),
            vec![
                TokenKind::Str("photos/admin".into()),
                TokenKind::Str("it's".into()),
                TokenKind::Str("a\nb".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("> >= < <= = <> !="),
            vec![
                TokenKind::Symbol(">"),
                TokenKind::Symbol(">="),
                TokenKind::Symbol("<"),
                TokenKind::Symbol("<="),
                TokenKind::Symbol("="),
                TokenKind::Symbol("<>"),
                TokenKind::Symbol("!="),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("SELECT -- the projection\n1"),
            vec![
                TokenKind::Keyword("SELECT".into()),
                TokenKind::Int(1),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn spans_track_lines_and_columns() {
        let tokens = Lexer::new("SELECT\n  photo").tokenize().unwrap();
        assert_eq!(tokens[0].span, Span { line: 1, column: 1 });
        assert_eq!(tokens[1].span, Span { line: 2, column: 3 });
    }

    #[test]
    fn errors_are_positioned() {
        let err = Lexer::new("SELECT @").tokenize().unwrap_err();
        assert_eq!(err.column(), 8);
        assert!(err.message().contains('@'));
        assert!(Lexer::new("\"unterminated").tokenize().is_err());
        assert!(Lexer::new("12abc").tokenize().is_err());
        assert!(Lexer::new(r#""bad \q escape""#).tokenize().is_err());
    }

    #[test]
    fn window_keywords_tokenize() {
        assert_eq!(
            kinds("AVG(x) over last 5"),
            vec![
                TokenKind::Ident("AVG".into()),
                TokenKind::Symbol("("),
                TokenKind::Ident("x".into()),
                TokenKind::Symbol(")"),
                TokenKind::Keyword("OVER".into()),
                TokenKind::Keyword("LAST".into()),
                TokenKind::Int(5),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn paper_query_tokenizes() {
        let tokens = kinds(
            r#"CREATE AQ snapshot AS SELECT photo(c.ip, s.loc, "photos/admin")
               FROM sensor s, camera c WHERE s.accel_x > 500 AND coverage(c.id, s.loc)"#,
        );
        assert!(tokens.contains(&TokenKind::Keyword("AQ".into())));
        assert!(tokens.contains(&TokenKind::Ident("coverage".into())));
        assert!(tokens.contains(&TokenKind::Int(500)));
    }
}
