//! Positioned SQL errors.

use std::error::Error;
use std::fmt;

/// A lexing, parsing or validation error with its 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlError {
    line: u32,
    column: u32,
    message: String,
}

impl SqlError {
    /// Creates an error at the given position.
    pub fn new(line: u32, column: u32, message: impl Into<String>) -> Self {
        SqlError {
            line,
            column,
            message: message.into(),
        }
    }

    /// An error with no meaningful position (validation of a detached AST).
    pub fn unpositioned(message: impl Into<String>) -> Self {
        SqlError::new(0, 0, message)
    }

    /// 1-based line (0 when unpositioned).
    pub fn line(&self) -> u32 {
        self.line
    }

    /// 1-based column (0 when unpositioned).
    pub fn column(&self) -> u32 {
        self.column
    }

    /// The message without position.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.message)
        } else {
            write!(
                f,
                "{} at line {}, column {}",
                self.message, self.line, self.column
            )
        }
    }
}

impl Error for SqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_with_and_without_position() {
        let e = SqlError::new(2, 5, "expected FROM");
        assert_eq!(e.to_string(), "expected FROM at line 2, column 5");
        let u = SqlError::unpositioned("unknown table 'foo'");
        assert_eq!(u.to_string(), "unknown table 'foo'");
        assert_eq!(e.line(), 2);
        assert_eq!(e.column(), 5);
        assert_eq!(u.line(), 0);
    }
}
