//! Schema-aware validation of parsed statements.
//!
//! Resolves column references against the catalog's virtual-table schemas
//! and checks function/action call arity, so the engine only ever executes
//! well-formed queries.

use std::collections::BTreeMap;

use aorta_data::Schema;

use crate::ast::{Expr, Select, Statement};
use crate::SqlError;

/// What the validator needs to know about the engine's catalog.
#[derive(Debug, Clone, Default)]
pub struct ValidationContext {
    tables: BTreeMap<String, Schema>,
    /// function/action name → parameter count.
    functions: BTreeMap<String, usize>,
}

impl ValidationContext {
    /// An empty context.
    pub fn new() -> Self {
        ValidationContext::default()
    }

    /// Registers a virtual table.
    pub fn with_table(mut self, schema: Schema) -> Self {
        self.tables.insert(schema.table().to_string(), schema);
        self
    }

    /// Registers a function or action with its arity.
    pub fn with_function(mut self, name: impl Into<String>, arity: usize) -> Self {
        self.functions.insert(name.into(), arity);
        self
    }

    /// True when the named table exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Validates a statement.
    ///
    /// # Errors
    ///
    /// [`SqlError`] naming the first unknown table/binding/attribute/
    /// function or arity mismatch. `CREATE ACTION` and `DROP AQ` need no
    /// schema context and always validate.
    pub fn validate(&self, stmt: &Statement) -> Result<(), SqlError> {
        match stmt {
            Statement::Select(s) => self.validate_select(s),
            Statement::CreateAq(aq) => self.validate_select(&aq.select),
            Statement::Explain(inner) => self.validate(inner),
            Statement::CreateAction(_) | Statement::DropAq(_) => Ok(()),
        }
    }

    fn validate_select(&self, select: &Select) -> Result<(), SqlError> {
        // Resolve the FROM clause into binding → schema.
        let mut bindings: BTreeMap<&str, &Schema> = BTreeMap::new();
        for t in &select.tables {
            let schema = self
                .tables
                .get(&t.table)
                .ok_or_else(|| SqlError::unpositioned(format!("unknown table '{}'", t.table)))?;
            let binding = t.binding();
            if bindings.insert(binding, schema).is_some() {
                return Err(SqlError::unpositioned(format!(
                    "duplicate table binding '{binding}'"
                )));
            }
        }
        for p in &select.projections {
            self.validate_expr(p, &bindings)?;
        }
        if let Some(pred) = &select.predicate {
            self.validate_expr(pred, &bindings)?;
        }
        Ok(())
    }

    fn validate_expr(
        &self,
        expr: &Expr,
        bindings: &BTreeMap<&str, &Schema>,
    ) -> Result<(), SqlError> {
        match expr {
            Expr::Literal(_) => Ok(()),
            Expr::Column { qualifier, name } => match qualifier {
                Some(q) => {
                    let schema = bindings.get(q.as_str()).ok_or_else(|| {
                        SqlError::unpositioned(format!("unknown table binding '{q}'"))
                    })?;
                    schema
                        .require(name)
                        .map_err(|e| SqlError::unpositioned(e.to_string()))?;
                    Ok(())
                }
                None => {
                    let hits: Vec<&str> = bindings
                        .iter()
                        .filter(|(_, s)| s.index_of(name).is_some())
                        .map(|(b, _)| *b)
                        .collect();
                    match hits.len() {
                        0 => Err(SqlError::unpositioned(format!(
                            "unknown attribute '{name}'"
                        ))),
                        1 => Ok(()),
                        _ => Err(SqlError::unpositioned(format!(
                            "ambiguous attribute '{name}' (in {})",
                            hits.join(", ")
                        ))),
                    }
                }
            },
            Expr::Call { name, args } => {
                let arity = self.functions.get(name).ok_or_else(|| {
                    SqlError::unpositioned(format!("unknown function or action '{name}'"))
                })?;
                if *arity != args.len() {
                    return Err(SqlError::unpositioned(format!(
                        "'{name}' takes {arity} arguments, got {}",
                        args.len()
                    )));
                }
                for a in args {
                    self.validate_expr(a, bindings)?;
                }
                Ok(())
            }
            Expr::Unary { expr, .. } => self.validate_expr(expr, bindings),
            Expr::Binary { lhs, rhs, .. } => {
                self.validate_expr(lhs, bindings)?;
                self.validate_expr(rhs, bindings)
            }
            Expr::WindowAgg { func, arg, window } => {
                if !matches!(**arg, Expr::Column { .. }) {
                    return Err(SqlError::unpositioned(format!(
                        "{func} OVER LAST aggregates a column, got '{arg}'"
                    )));
                }
                if *window < 1 {
                    return Err(SqlError::unpositioned(format!(
                        "{func} window length must be at least 1"
                    )));
                }
                self.validate_expr(arg, bindings)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use aorta_data::{AttrKind, ValueType};

    fn ctx() -> ValidationContext {
        ValidationContext::new()
            .with_table(
                Schema::builder("sensor")
                    .attr("id", ValueType::Int, AttrKind::NonSensory)
                    .attr("loc", ValueType::Location, AttrKind::NonSensory)
                    .attr("accel_x", ValueType::Int, AttrKind::Sensory)
                    .build(),
            )
            .with_table(
                Schema::builder("camera")
                    .attr("id", ValueType::Int, AttrKind::NonSensory)
                    .attr("ip", ValueType::Str, AttrKind::NonSensory)
                    .build(),
            )
            .with_function("photo", 3)
            .with_function("coverage", 2)
    }

    fn check(src: &str) -> Result<(), SqlError> {
        let stmts = parse(src).unwrap();
        ctx().validate(&stmts[0])
    }

    #[test]
    fn paper_query_validates() {
        assert_eq!(
            check(
                r#"CREATE AQ snapshot AS SELECT photo(c.ip, s.loc, "d")
                   FROM sensor s, camera c
                   WHERE s.accel_x > 500 AND coverage(c.id, s.loc)"#
            ),
            Ok(())
        );
    }

    #[test]
    fn unknown_table_rejected() {
        let err = check("SELECT x FROM toaster").unwrap_err();
        assert!(err.message().contains("unknown table 'toaster'"), "{err}");
    }

    #[test]
    fn unknown_binding_rejected() {
        let err = check("SELECT z.accel_x FROM sensor s").unwrap_err();
        assert!(err.message().contains("binding 'z'"), "{err}");
    }

    #[test]
    fn unknown_attribute_rejected() {
        let err = check("SELECT s.zoom FROM sensor s").unwrap_err();
        assert!(err.message().contains("no attribute 'zoom'"), "{err}");
    }

    #[test]
    fn unqualified_resolution() {
        assert_eq!(check("SELECT accel_x FROM sensor"), Ok(()));
        // `id` exists in both tables → ambiguous.
        let err = check("SELECT id FROM sensor s, camera c").unwrap_err();
        assert!(err.message().contains("ambiguous"), "{err}");
        let err = check("SELECT nothere FROM sensor").unwrap_err();
        assert!(err.message().contains("unknown attribute"), "{err}");
    }

    #[test]
    fn function_arity_checked() {
        let err = check("SELECT photo(s.loc) FROM sensor s").unwrap_err();
        assert!(err.message().contains("takes 3 arguments"), "{err}");
        let err = check("SELECT teleport(s.loc) FROM sensor s").unwrap_err();
        assert!(err.message().contains("unknown function"), "{err}");
    }

    #[test]
    fn window_aggregates_validate() {
        assert_eq!(
            check("SELECT id FROM sensor s WHERE AVG(s.accel_x) OVER LAST 5 > 400"),
            Ok(())
        );
        // The aggregated column must resolve.
        let err = check("SELECT id FROM sensor s WHERE MAX(s.zoom) OVER LAST 5 > 1").unwrap_err();
        assert!(err.message().contains("no attribute 'zoom'"), "{err}");
        // Only columns may be aggregated.
        let err = check("SELECT id FROM sensor s WHERE AVG(coverage(s.id, s.loc)) OVER LAST 5 > 1")
            .unwrap_err();
        assert!(err.message().contains("aggregates a column"), "{err}");
    }

    #[test]
    fn duplicate_binding_rejected() {
        let err = check("SELECT accel_x FROM sensor s, camera s").unwrap_err();
        assert!(err.message().contains("duplicate table binding"), "{err}");
    }

    #[test]
    fn create_action_and_drop_always_validate() {
        assert_eq!(check(r#"CREATE ACTION f(Int x) AS "lib""#), Ok(()));
        assert_eq!(check("DROP AQ anything"), Ok(()));
    }

    #[test]
    fn explain_validates_inner() {
        assert!(check("EXPLAIN SELECT x FROM toaster").is_err());
        assert_eq!(check("EXPLAIN SELECT accel_x FROM sensor"), Ok(()));
    }

    #[test]
    fn has_table_lookup() {
        assert!(ctx().has_table("sensor"));
        assert!(!ctx().has_table("phone"));
    }
}
