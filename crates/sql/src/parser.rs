//! Recursive-descent parser with precedence climbing for expressions.

use aorta_data::{Value, ValueType};

use crate::ast::*;
use crate::lexer::{Lexer, Token, TokenKind};
use crate::SqlError;

/// Parses a semicolon-separated sequence of statements.
///
/// # Errors
///
/// [`SqlError`] with the source position of the first problem.
pub fn parse(src: &str) -> Result<Vec<Statement>, SqlError> {
    let tokens = Lexer::new(src).tokenize()?;
    Parser { tokens, pos: 0 }.parse_statements()
}

/// Parses a single standalone expression (the whole input must be one
/// expression). The inverse of [`Expr`]'s `Display`, whose output is
/// guaranteed re-parseable — which is how expressions travel through the
/// write-ahead log as plain text.
///
/// # Errors
///
/// [`SqlError`] on a syntax problem or trailing input.
pub fn parse_expr(src: &str) -> Result<Expr, SqlError> {
    let tokens = Lexer::new(src).tokenize()?;
    let mut p = Parser { tokens, pos: 0 };
    let expr = p.expr()?;
    if !p.at_eof() {
        return Err(p.err_here("trailing input after expression"));
    }
    Ok(expr)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn parse_statements(mut self) -> Result<Vec<Statement>, SqlError> {
        let mut out = Vec::new();
        loop {
            while self.eat_symbol(";") {}
            if self.at_eof() {
                if out.is_empty() {
                    return Err(self.err_here("empty input"));
                }
                return Ok(out);
            }
            out.push(self.statement()?);
        }
    }

    // --- token helpers -----------------------------------------------------

    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek().kind, TokenKind::Eof)
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if !matches!(t.kind, TokenKind::Eof) {
            self.pos += 1;
        }
        t
    }

    fn err_here(&self, msg: impl Into<String>) -> SqlError {
        let span = self.peek().span;
        SqlError::new(span.line, span.column, msg)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(&self.peek().kind, TokenKind::Keyword(k) if k == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), SqlError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.err_here(format!("expected {kw}, found {}", self.peek().kind)))
        }
    }

    fn eat_symbol(&mut self, sym: &str) -> bool {
        if matches!(&self.peek().kind, TokenKind::Symbol(s) if *s == sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, sym: &str) -> Result<(), SqlError> {
        if self.eat_symbol(sym) {
            Ok(())
        } else {
            Err(self.err_here(format!("expected '{sym}', found {}", self.peek().kind)))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, SqlError> {
        match &self.peek().kind {
            TokenKind::Ident(name) => {
                let name = name.clone();
                self.pos += 1;
                Ok(name)
            }
            other => Err(self.err_here(format!("expected {what}, found {other}"))),
        }
    }

    fn expect_string(&mut self, what: &str) -> Result<String, SqlError> {
        match &self.peek().kind {
            TokenKind::Str(s) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            other => Err(self.err_here(format!("expected {what} string, found {other}"))),
        }
    }

    // --- statements --------------------------------------------------------

    fn statement(&mut self) -> Result<Statement, SqlError> {
        if self.eat_keyword("EXPLAIN") {
            return Ok(Statement::Explain(Box::new(self.statement()?)));
        }
        if self.eat_keyword("CREATE") {
            if self.eat_keyword("ACTION") {
                return self.create_action();
            }
            if self.eat_keyword("AQ") {
                return self.create_aq();
            }
            return Err(self.err_here(format!(
                "expected ACTION or AQ after CREATE, found {}",
                self.peek().kind
            )));
        }
        if self.eat_keyword("DROP") {
            self.expect_keyword("AQ")?;
            return Ok(Statement::DropAq(self.expect_ident("query name")?));
        }
        if matches!(&self.peek().kind, TokenKind::Keyword(k) if k == "SELECT") {
            return Ok(Statement::Select(self.select()?));
        }
        Err(self.err_here(format!(
            "expected CREATE, DROP, SELECT or EXPLAIN, found {}",
            self.peek().kind
        )))
    }

    fn create_action(&mut self) -> Result<Statement, SqlError> {
        let name = self.expect_ident("action name")?;
        self.expect_symbol("(")?;
        let mut params = Vec::new();
        if !self.eat_symbol(")") {
            loop {
                let ty_name = self.expect_ident("parameter type")?;
                let ty: ValueType = ty_name
                    .parse()
                    .map_err(|_| self.err_here(format!("unknown parameter type '{ty_name}'")))?;
                let pname = self.expect_ident("parameter name")?;
                params.push((ty, pname));
                if self.eat_symbol(")") {
                    break;
                }
                self.expect_symbol(",")?;
            }
        }
        self.expect_keyword("AS")?;
        let library = self.expect_string("library path")?;
        let profile = if self.eat_keyword("PROFILE") {
            Some(self.expect_string("profile path")?)
        } else {
            None
        };
        Ok(Statement::CreateAction(CreateAction {
            name,
            params,
            library,
            profile,
        }))
    }

    fn create_aq(&mut self) -> Result<Statement, SqlError> {
        let name = self.expect_ident("query name")?;
        self.expect_keyword("AS")?;
        let select = self.select()?;
        Ok(Statement::CreateAq(CreateAq { name, select }))
    }

    fn select(&mut self) -> Result<Select, SqlError> {
        self.expect_keyword("SELECT")?;
        let mut projections = vec![self.expr()?];
        while self.eat_symbol(",") {
            projections.push(self.expr()?);
        }
        self.expect_keyword("FROM")?;
        let mut tables = vec![self.table_ref()?];
        while self.eat_symbol(",") {
            tables.push(self.table_ref()?);
        }
        let predicate = if self.eat_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Select {
            projections,
            tables,
            predicate,
        })
    }

    fn table_ref(&mut self) -> Result<TableRef, SqlError> {
        let table = self.expect_ident("table name")?;
        let alias = match &self.peek().kind {
            TokenKind::Ident(a) => {
                let a = a.clone();
                self.pos += 1;
                Some(a)
            }
            _ => None,
        };
        Ok(TableRef { table, alias })
    }

    // --- expressions (precedence climbing) ---------------------------------

    fn expr(&mut self) -> Result<Expr, SqlError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, SqlError> {
        let mut lhs = self.and_expr()?;
        while self.eat_keyword("OR") {
            let rhs = self.and_expr()?;
            lhs = Expr::Binary {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, SqlError> {
        let mut lhs = self.not_expr()?;
        while self.eat_keyword("AND") {
            let rhs = self.not_expr()?;
            lhs = Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr, SqlError> {
        if self.eat_keyword("NOT") {
            Ok(Expr::Unary {
                op: UnOp::Not,
                expr: Box::new(self.not_expr()?),
            })
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<Expr, SqlError> {
        let lhs = self.additive()?;
        let op = match &self.peek().kind {
            TokenKind::Symbol("=") => BinOp::Eq,
            TokenKind::Symbol("<>") | TokenKind::Symbol("!=") => BinOp::Ne,
            TokenKind::Symbol("<") => BinOp::Lt,
            TokenKind::Symbol("<=") => BinOp::Le,
            TokenKind::Symbol(">") => BinOp::Gt,
            TokenKind::Symbol(">=") => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.additive()?;
        Ok(Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        })
    }

    fn additive(&mut self) -> Result<Expr, SqlError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match &self.peek().kind {
                TokenKind::Symbol("+") => BinOp::Add,
                TokenKind::Symbol("-") => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.multiplicative()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn multiplicative(&mut self) -> Result<Expr, SqlError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match &self.peek().kind {
                TokenKind::Symbol("*") => BinOp::Mul,
                TokenKind::Symbol("/") => BinOp::Div,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.unary()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn unary(&mut self) -> Result<Expr, SqlError> {
        if self.eat_symbol("-") {
            return Ok(Expr::Unary {
                op: UnOp::Neg,
                expr: Box::new(self.unary()?),
            });
        }
        // NOT is primarily handled at the logical level (not_expr), but it
        // is also accepted here so that parenthesized forms like
        // `a > NOT (b)` — which the AST can represent and the printer can
        // emit — re-parse.
        if self.eat_keyword("NOT") {
            return Ok(Expr::Unary {
                op: UnOp::Not,
                expr: Box::new(self.unary()?),
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, SqlError> {
        match self.peek().kind.clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::Literal(Value::Int(v)))
            }
            TokenKind::Float(v) => {
                self.bump();
                Ok(Expr::Literal(Value::Float(v)))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::Literal(Value::Str(s)))
            }
            TokenKind::Keyword(k) if k == "TRUE" => {
                self.bump();
                Ok(Expr::Literal(Value::Bool(true)))
            }
            TokenKind::Keyword(k) if k == "FALSE" => {
                self.bump();
                Ok(Expr::Literal(Value::Bool(false)))
            }
            TokenKind::Keyword(k) if k == "NULL" => {
                self.bump();
                Ok(Expr::Literal(Value::Null))
            }
            TokenKind::Symbol("(") => {
                self.bump();
                let e = self.expr()?;
                self.expect_symbol(")")?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                self.bump();
                // Call?
                if self.eat_symbol("(") {
                    let mut args = Vec::new();
                    if !self.eat_symbol(")") {
                        loop {
                            args.push(self.expr()?);
                            if self.eat_symbol(")") {
                                break;
                            }
                            self.expect_symbol(",")?;
                        }
                    }
                    // Window suffix? `AVG(s.accel_x) OVER LAST 5` turns the
                    // call into a sliding-window aggregate.
                    if self.eat_keyword("OVER") {
                        return self.window_suffix(name, args);
                    }
                    return Ok(Expr::Call { name, args });
                }
                // Qualified column?
                if self.eat_symbol(".") {
                    let attr = self.expect_ident("attribute name")?;
                    return Ok(Expr::Column {
                        qualifier: Some(name),
                        name: attr,
                    });
                }
                Ok(Expr::Column {
                    qualifier: None,
                    name,
                })
            }
            other => Err(self.err_here(format!("expected an expression, found {other}"))),
        }
    }

    /// Parses the rest of a window clause after `OVER` has been consumed,
    /// turning `name(args)` into a [`Expr::WindowAgg`].
    fn window_suffix(&mut self, name: String, args: Vec<Expr>) -> Result<Expr, SqlError> {
        let Some(func) = AggFunc::from_name(&name) else {
            return Err(self.err_here(format!(
                "'{name}' is not a window aggregate (expected AVG, MAX, MIN or COUNT)"
            )));
        };
        if args.len() != 1 {
            return Err(self.err_here(format!(
                "{func} OVER LAST takes exactly 1 argument, got {}",
                args.len()
            )));
        }
        self.expect_keyword("LAST")?;
        let window = match self.peek().kind {
            TokenKind::Int(n) if n >= 1 => {
                self.bump();
                u32::try_from(n)
                    .map_err(|_| self.err_here(format!("window length {n} out of range")))?
            }
            ref other => {
                return Err(self.err_here(format!(
                    "expected a positive window length after LAST, found {other}"
                )))
            }
        };
        let mut args = args;
        Ok(Expr::WindowAgg {
            func,
            arg: Box::new(args.remove(0)),
            window,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(src: &str) -> Statement {
        let mut stmts = parse(src).unwrap();
        assert_eq!(stmts.len(), 1, "{src}");
        stmts.remove(0)
    }

    #[test]
    fn parses_the_paper_snapshot_query() {
        let stmt = one(r#"CREATE AQ snapshot AS
               SELECT photo(c.ip, s.loc, "photos/admin")
               FROM sensor s, camera c
               WHERE s.accel_x > 500 AND coverage(c.id, s.loc)"#);
        let Statement::CreateAq(aq) = stmt else {
            panic!("expected CreateAq");
        };
        assert_eq!(aq.name, "snapshot");
        assert_eq!(aq.select.tables.len(), 2);
        assert_eq!(aq.select.tables[0].binding(), "s");
        let Expr::Call { name, args } = &aq.select.projections[0] else {
            panic!("projection should be the photo() call");
        };
        assert_eq!(name, "photo");
        assert_eq!(args.len(), 3);
        let pred = aq.select.predicate.as_ref().unwrap();
        assert_eq!(pred.conjuncts().len(), 2);
    }

    #[test]
    fn parses_the_paper_create_action() {
        let stmt = one(
            r#"CREATE ACTION sendphoto(String phone_no, String photo_pathname)
               AS "lib/users/sendphoto.dll"
               PROFILE "profiles/users/sendphoto.xml""#,
        );
        let Statement::CreateAction(a) = stmt else {
            panic!("expected CreateAction");
        };
        assert_eq!(a.name, "sendphoto");
        assert_eq!(a.params.len(), 2);
        assert_eq!(a.params[0], (ValueType::Str, "phone_no".into()));
        assert_eq!(a.library, "lib/users/sendphoto.dll");
        assert_eq!(a.profile.as_deref(), Some("profiles/users/sendphoto.xml"));
    }

    #[test]
    fn create_action_without_profile_or_params() {
        let stmt = one(r#"CREATE ACTION ping() AS "lib/ping""#);
        let Statement::CreateAction(a) = stmt else {
            panic!();
        };
        assert!(a.params.is_empty());
        assert_eq!(a.profile, None);
    }

    #[test]
    fn drop_and_explain() {
        assert_eq!(
            one("DROP AQ snapshot"),
            Statement::DropAq("snapshot".into())
        );
        let Statement::Explain(inner) = one("EXPLAIN SELECT temp FROM sensor") else {
            panic!();
        };
        assert!(matches!(*inner, Statement::Select(_)));
    }

    #[test]
    fn multiple_statements_with_semicolons() {
        let stmts = parse("DROP AQ a; DROP AQ b;").unwrap();
        assert_eq!(stmts.len(), 2);
    }

    #[test]
    fn operator_precedence() {
        let Statement::Select(s) = one("SELECT a FROM t WHERE x > 1 + 2 * 3 OR NOT y = 4") else {
            panic!();
        };
        let pred = s.predicate.unwrap();
        // OR at the top.
        let Expr::Binary {
            op: BinOp::Or,
            lhs,
            rhs,
        } = pred
        else {
            panic!("expected OR at top, got something else");
        };
        // Left: x > (1 + (2*3)).
        let Expr::Binary {
            op: BinOp::Gt,
            rhs: gt_rhs,
            ..
        } = *lhs
        else {
            panic!();
        };
        assert_eq!(gt_rhs.to_string(), "(1 + (2 * 3))");
        // Right: NOT (y = 4).
        assert!(matches!(*rhs, Expr::Unary { op: UnOp::Not, .. }));
    }

    #[test]
    fn parenthesized_grouping_overrides() {
        let Statement::Select(s) = one("SELECT a FROM t WHERE (x OR y) AND z") else {
            panic!();
        };
        let pred = s.predicate.unwrap();
        assert!(matches!(pred, Expr::Binary { op: BinOp::And, .. }));
    }

    #[test]
    fn literals() {
        let Statement::Select(s) = one("SELECT 1, 2.5, \"str\", TRUE, FALSE, NULL, -3 FROM t")
        else {
            panic!();
        };
        assert_eq!(s.projections.len(), 7);
        assert_eq!(s.projections[0], Expr::Literal(Value::Int(1)));
        assert_eq!(s.projections[3], Expr::Literal(Value::Bool(true)));
        assert!(matches!(
            s.projections[6],
            Expr::Unary { op: UnOp::Neg, .. }
        ));
    }

    #[test]
    fn errors_positioned_and_descriptive() {
        let err = parse("CREATE WIDGET foo").unwrap_err();
        assert!(err.message().contains("ACTION or AQ"), "{err}");
        let err = parse("SELECT a FROM").unwrap_err();
        assert!(err.message().contains("table name"), "{err}");
        let err = parse("SELECT photo( FROM t").unwrap_err();
        assert!(err.message().contains("expression"), "{err}");
        let err = parse("").unwrap_err();
        assert!(err.message().contains("empty"), "{err}");
        let err = parse("CREATE ACTION f(Widget x) AS \"lib\"").unwrap_err();
        assert!(err.message().contains("unknown parameter type"), "{err}");
    }

    #[test]
    fn parses_window_aggregates() {
        let Statement::Select(s) =
            one("SELECT a FROM t WHERE AVG(s.accel_x) OVER LAST 5 > 400 AND s.id = 1")
        else {
            panic!();
        };
        let pred = s.predicate.unwrap();
        let conjuncts = pred.conjuncts();
        assert_eq!(conjuncts.len(), 2);
        let Expr::Binary {
            op: BinOp::Gt, lhs, ..
        } = conjuncts[0]
        else {
            panic!("expected comparison, got {:?}", conjuncts[0]);
        };
        assert_eq!(
            **lhs,
            Expr::WindowAgg {
                func: AggFunc::Avg,
                arg: Box::new(Expr::Column {
                    qualifier: Some("s".into()),
                    name: "accel_x".into(),
                }),
                window: 5,
            }
        );
    }

    #[test]
    fn window_aggregate_errors() {
        let err = parse("SELECT a FROM t WHERE median(s.x) OVER LAST 5 > 1").unwrap_err();
        assert!(err.message().contains("not a window aggregate"), "{err}");
        let err = parse("SELECT a FROM t WHERE AVG(s.x, s.y) OVER LAST 5 > 1").unwrap_err();
        assert!(err.message().contains("exactly 1 argument"), "{err}");
        let err = parse("SELECT a FROM t WHERE AVG(s.x) OVER LAST 0 > 1").unwrap_err();
        assert!(err.message().contains("positive window length"), "{err}");
        let err = parse("SELECT a FROM t WHERE AVG(s.x) OVER 5 > 1").unwrap_err();
        assert!(err.message().contains("expected LAST"), "{err}");
        // A plain call named like an aggregate stays a call.
        let e = parse_expr("count(s.x)").unwrap();
        assert!(matches!(e, Expr::Call { .. }));
    }

    #[test]
    fn parse_expr_roundtrips_display() {
        for src in [
            "s.accel_x > 500",
            r#"photo(c.ip, s.loc, "photos/admin")"#,
            "(NOT (s.id = 3))",
            "-(s.accel_x)",
            r#"coverage(c.id, s.loc) AND s.accel_x > (500 + 1)"#,
            "AVG(s.accel_x) OVER LAST 5 > 400",
            "MIN(s.accel_x) OVER LAST 12 <= 90 AND COUNT(s.accel_x) OVER LAST 3 >= 2",
        ] {
            let e = parse_expr(src).unwrap();
            let reparsed = parse_expr(&e.to_string()).unwrap();
            assert_eq!(e, reparsed, "expr Display must round-trip: {src}");
        }
        assert!(parse_expr("s.id > 1 extra").is_err(), "trailing input");
        assert!(parse_expr("").is_err());
    }

    #[test]
    fn unparse_reparses() {
        let src = r#"CREATE AQ snapshot AS SELECT photo(c.ip, s.loc, "photos/admin") FROM sensor s, camera c WHERE s.accel_x > 500 AND coverage(c.id, s.loc)"#;
        let stmt = one(src);
        let printed = stmt.to_string();
        let reparsed = one(&printed);
        assert_eq!(stmt, reparsed, "unparse must round-trip:\n{printed}");
    }
}
