//! Abstract syntax of the Aorta SQL dialect.

use std::fmt;

use aorta_data::{Value, ValueType};

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE ACTION name(Type p, …) AS "lib" [PROFILE "…"]`.
    CreateAction(CreateAction),
    /// `CREATE AQ name AS SELECT …`.
    CreateAq(CreateAq),
    /// `DROP AQ name`.
    DropAq(String),
    /// A one-shot `SELECT`.
    Select(Select),
    /// `EXPLAIN <statement>` — show the plan instead of registering it.
    Explain(Box<Statement>),
}

/// A user-defined action registration (§2.2's `CREATE ACTION`).
#[derive(Debug, Clone, PartialEq)]
pub struct CreateAction {
    /// Action name, e.g. `sendphoto`.
    pub name: String,
    /// Typed parameters, e.g. `(String phone_no, String photo_pathname)`.
    pub params: Vec<(ValueType, String)>,
    /// The code-library path (`"lib/users/sendphoto.dll"` in the paper; a
    /// registered Rust handler name here).
    pub library: String,
    /// The action-profile path, used by cost-based optimization.
    pub profile: Option<String>,
}

/// A named action-embedded continuous query (§2.2's `CREATE AQ`).
#[derive(Debug, Clone, PartialEq)]
pub struct CreateAq {
    /// Query name, e.g. `snapshot`.
    pub name: String,
    /// The underlying SELECT.
    pub select: Select,
}

/// A SELECT over virtual device tables.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// Projected expressions (typically action calls).
    pub projections: Vec<Expr>,
    /// The FROM clause.
    pub tables: Vec<TableRef>,
    /// The WHERE clause.
    pub predicate: Option<Expr>,
}

/// A table reference with optional alias (`sensor s`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    /// Table (device-kind) name.
    pub table: String,
    /// Alias, if given.
    pub alias: Option<String>,
}

impl TableRef {
    /// The name expressions use to qualify columns of this table.
    pub fn binding(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.table)
    }
}

/// Binary operators, loosest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Logical OR.
    Or,
    /// Logical AND.
    And,
    /// `=`.
    Eq,
    /// `<>` / `!=`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `+`.
    Add,
    /// `-`.
    Sub,
    /// `*`.
    Mul,
    /// `/`.
    Div,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Or => "OR",
            BinOp::And => "AND",
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        };
        f.write_str(s)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Logical NOT.
    Not,
    /// Arithmetic negation.
    Neg,
}

/// Aggregate functions usable in a sliding-window clause
/// (`AVG(s.accel_x) OVER LAST 5`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AggFunc {
    /// Arithmetic mean of the numeric samples in the window.
    Avg,
    /// Maximum sample in the window.
    Max,
    /// Minimum sample in the window.
    Min,
    /// Number of non-NULL samples in the window.
    Count,
}

impl AggFunc {
    /// Parses an aggregate-function name (case-insensitive); `None` for
    /// anything that is not a window aggregate.
    pub fn from_name(name: &str) -> Option<AggFunc> {
        match name.to_ascii_uppercase().as_str() {
            "AVG" => Some(AggFunc::Avg),
            "MAX" => Some(AggFunc::Max),
            "MIN" => Some(AggFunc::Min),
            "COUNT" => Some(AggFunc::Count),
            _ => None,
        }
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Avg => "AVG",
            AggFunc::Max => "MAX",
            AggFunc::Min => "MIN",
            AggFunc::Count => "COUNT",
        };
        f.write_str(s)
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Literal(Value),
    /// A possibly-qualified column reference (`s.accel_x`, `loc`).
    Column {
        /// Table binding, if qualified.
        qualifier: Option<String>,
        /// Attribute name.
        name: String,
    },
    /// A function or action call (`photo(c.ip, s.loc, "dir")`).
    Call {
        /// Function/action name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// A unary operation.
    Unary {
        /// The operator.
        op: UnOp,
        /// The operand.
        expr: Box<Expr>,
    },
    /// A binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// A sliding-window aggregate over the last `window` delivered samples
    /// of a column (`AVG(s.accel_x) OVER LAST 5`).
    WindowAgg {
        /// The aggregate function.
        func: AggFunc,
        /// The aggregated expression (a column reference after validation).
        arg: Box<Expr>,
        /// Window length in samples (≥ 1).
        window: u32,
    },
}

impl Expr {
    /// Collects the names of all [`Expr::Call`]s in this expression tree.
    pub fn call_names(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let Expr::Call { name, .. } = e {
                out.push(name.as_str());
            }
        });
        out
    }

    /// Visits every node of the expression tree, parents first.
    pub fn walk<'a>(&'a self, visit: &mut impl FnMut(&'a Expr)) {
        visit(self);
        match self {
            Expr::Literal(_) | Expr::Column { .. } => {}
            Expr::Call { args, .. } => {
                for a in args {
                    a.walk(visit);
                }
            }
            Expr::Unary { expr, .. } => expr.walk(visit),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.walk(visit);
                rhs.walk(visit);
            }
            Expr::WindowAgg { arg, .. } => arg.walk(visit),
        }
    }

    /// Splits a predicate into its AND-ed conjuncts.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        match self {
            Expr::Binary {
                op: BinOp::And,
                lhs,
                rhs,
            } => {
                let mut out = lhs.conjuncts();
                out.extend(rhs.conjuncts());
                out
            }
            other => vec![other],
        }
    }
}

/// Escapes a string literal body for the SQL dialect's double-quoted form.
fn escape_sql_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            _ => out.push(c),
        }
    }
    out
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            // String literals are printed in re-parseable (escaped) form,
            // unlike the data model's raw Display.
            Expr::Literal(Value::Str(s)) => write!(f, "\"{}\"", escape_sql_string(s)),
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Column { qualifier, name } => match qualifier {
                Some(q) => write!(f, "{q}.{name}"),
                None => write!(f, "{name}"),
            },
            Expr::Call { name, args } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::Unary { op, expr } => match op {
                // NOT binds loosely in the grammar, so the whole node is
                // parenthesized to survive embedding in tighter contexts
                // (e.g. as a comparison operand).
                UnOp::Not => write!(f, "(NOT {expr})"),
                UnOp::Neg => write!(f, "-({expr})"),
            },
            Expr::Binary { op, lhs, rhs } => write!(f, "({lhs} {op} {rhs})"),
            // The OVER LAST suffix binds tightest (it is parsed as part of
            // the call in `primary`), so no parentheses are needed for the
            // printed form to re-parse in any embedding context.
            Expr::WindowAgg { func, arg, window } => {
                write!(f, "{func}({arg}) OVER LAST {window}")
            }
        }
    }
}

impl fmt::Display for Select {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        for (i, p) in self.projections.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, " FROM ")?;
        for (i, t) in self.tables.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", t.table)?;
            if let Some(a) = &t.alias {
                write!(f, " {a}")?;
            }
        }
        if let Some(p) = &self.predicate {
            write!(f, " WHERE {p}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::CreateAction(a) => {
                write!(f, "CREATE ACTION {}(", a.name)?;
                for (i, (ty, name)) in a.params.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{ty} {name}")?;
                }
                write!(f, ") AS \"{}\"", escape_sql_string(&a.library))?;
                if let Some(p) = &a.profile {
                    write!(f, " PROFILE \"{}\"", escape_sql_string(p))?;
                }
                Ok(())
            }
            Statement::CreateAq(aq) => write!(f, "CREATE AQ {} AS {}", aq.name, aq.select),
            Statement::DropAq(name) => write!(f, "DROP AQ {name}"),
            Statement::Select(s) => write!(f, "{s}"),
            Statement::Explain(inner) => write!(f, "EXPLAIN {inner}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(q: &str, n: &str) -> Expr {
        Expr::Column {
            qualifier: Some(q.into()),
            name: n.into(),
        }
    }

    #[test]
    fn conjuncts_flatten_ands() {
        let e = Expr::Binary {
            op: BinOp::And,
            lhs: Box::new(Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(col("s", "a")),
                rhs: Box::new(col("s", "b")),
            }),
            rhs: Box::new(col("c", "d")),
        };
        assert_eq!(e.conjuncts().len(), 3);
        // OR is not split.
        let or = Expr::Binary {
            op: BinOp::Or,
            lhs: Box::new(col("s", "a")),
            rhs: Box::new(col("s", "b")),
        };
        assert_eq!(or.conjuncts().len(), 1);
    }

    #[test]
    fn call_names_collects_nested() {
        let e = Expr::Call {
            name: "photo".into(),
            args: vec![Expr::Call {
                name: "coverage".into(),
                args: vec![],
            }],
        };
        assert_eq!(e.call_names(), ["photo", "coverage"]);
    }

    #[test]
    fn display_round_trips_readably() {
        let s = Select {
            projections: vec![Expr::Call {
                name: "photo".into(),
                args: vec![col("c", "ip"), Expr::Literal(Value::from("dir"))],
            }],
            tables: vec![
                TableRef {
                    table: "sensor".into(),
                    alias: Some("s".into()),
                },
                TableRef {
                    table: "camera".into(),
                    alias: Some("c".into()),
                },
            ],
            predicate: Some(Expr::Binary {
                op: BinOp::Gt,
                lhs: Box::new(col("s", "accel_x")),
                rhs: Box::new(Expr::Literal(Value::Int(500))),
            }),
        };
        let text = s.to_string();
        assert!(text.contains("SELECT photo(c.ip, \"dir\")"), "{text}");
        assert!(text.contains("FROM sensor s, camera c"), "{text}");
        assert!(text.contains("WHERE (s.accel_x > 500)"), "{text}");
    }

    #[test]
    fn window_agg_displays_and_walks() {
        let w = Expr::WindowAgg {
            func: AggFunc::Avg,
            arg: Box::new(col("s", "accel_x")),
            window: 5,
        };
        assert_eq!(w.to_string(), "AVG(s.accel_x) OVER LAST 5");
        let cmp = Expr::Binary {
            op: BinOp::Gt,
            lhs: Box::new(w),
            rhs: Box::new(Expr::Literal(Value::Int(400))),
        };
        assert_eq!(cmp.to_string(), "(AVG(s.accel_x) OVER LAST 5 > 400)");
        let mut cols = 0;
        cmp.walk(&mut |e| {
            if matches!(e, Expr::Column { .. }) {
                cols += 1;
            }
        });
        assert_eq!(cols, 1, "walk must descend into the aggregate argument");
        assert_eq!(AggFunc::from_name("count"), Some(AggFunc::Count));
        assert_eq!(AggFunc::from_name("median"), None);
    }

    #[test]
    fn binding_prefers_alias() {
        let t = TableRef {
            table: "sensor".into(),
            alias: Some("s".into()),
        };
        assert_eq!(t.binding(), "s");
        let u = TableRef {
            table: "camera".into(),
            alias: None,
        };
        assert_eq!(u.binding(), "camera");
    }
}
