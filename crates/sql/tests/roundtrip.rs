//! Property: unparse ∘ parse = identity over generated statements.
//!
//! Random ASTs are rendered with `Display` and re-parsed; the result must be
//! structurally identical. This pins the printer and parser to the same
//! grammar (precedence, quoting, keyword casing).

use proptest::prelude::*;

use aorta_data::{Value, ValueType};
use aorta_sql::ast::*;
use aorta_sql::parse;

fn arb_name() -> impl Strategy<Value = String> {
    // Avoid keywords by prefixing.
    "[a-z][a-z0-9_]{0,6}".prop_map(|s| format!("x{s}"))
}

fn arb_literal() -> impl Strategy<Value = Expr> {
    prop_oneof![
        // Non-negative: `-5` prints as a Neg node, not a literal, so
        // negative *literals* would not round-trip structurally.
        (0i64..1_000_000).prop_map(|i| Expr::Literal(Value::Int(i))),
        (0u32..4000).prop_map(|k| {
            // Always fractional, so the printed form re-parses as a float.
            Expr::Literal(Value::Float(f64::from(k) / 4.0 + 0.1))
        }),
        // Printable ASCII including quotes and backslashes: the printer
        // must escape whatever it is handed.
        "[ -~]{0,12}".prop_map(|s| Expr::Literal(Value::Str(s))),
        Just(Expr::Literal(Value::Bool(true))),
        Just(Expr::Literal(Value::Bool(false))),
        Just(Expr::Literal(Value::Null)),
    ]
}

fn arb_expr(depth: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        arb_literal(),
        (arb_name(), arb_name()).prop_map(|(q, n)| Expr::Column {
            qualifier: Some(q),
            name: n,
        }),
        arb_name().prop_map(|n| Expr::Column {
            qualifier: None,
            name: n,
        }),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let inner = arb_expr(depth - 1);
    prop_oneof![
        leaf,
        (
            arb_name(),
            proptest::collection::vec(arb_expr(depth - 1), 0..3)
        )
            .prop_map(|(name, args)| Expr::Call { name, args }),
        (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::Binary {
            op: BinOp::And,
            lhs: Box::new(l),
            rhs: Box::new(r),
        }),
        (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::Binary {
            op: BinOp::Gt,
            lhs: Box::new(l),
            rhs: Box::new(r),
        }),
        (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::Binary {
            op: BinOp::Add,
            lhs: Box::new(l),
            rhs: Box::new(r),
        }),
        inner.prop_map(|e| Expr::Unary {
            op: UnOp::Not,
            expr: Box::new(e),
        }),
    ]
    .boxed()
}

fn arb_select() -> impl Strategy<Value = Select> {
    (
        proptest::collection::vec(arb_expr(2), 1..3),
        proptest::collection::vec((arb_name(), proptest::option::of(arb_name())), 1..3),
        proptest::option::of(arb_expr(2)),
    )
        .prop_map(|(projections, tables, predicate)| Select {
            projections,
            tables: tables
                .into_iter()
                .map(|(table, alias)| TableRef { table, alias })
                .collect(),
            predicate,
        })
}

fn arb_statement() -> impl Strategy<Value = Statement> {
    prop_oneof![
        arb_select().prop_map(Statement::Select),
        (arb_name(), arb_select())
            .prop_map(|(name, select)| Statement::CreateAq(CreateAq { name, select })),
        arb_name().prop_map(Statement::DropAq),
        (
            arb_name(),
            proptest::collection::vec(
                (
                    prop_oneof![
                        Just(ValueType::Int),
                        Just(ValueType::Float),
                        Just(ValueType::Str),
                        Just(ValueType::Bool),
                        Just(ValueType::Location),
                    ],
                    arb_name()
                ),
                0..4
            ),
            "[a-z/._-]{1,16}",
            proptest::option::of("[a-z/._-]{1,16}".prop_map(String::from)),
        )
            .prop_map(|(name, params, library, profile)| {
                Statement::CreateAction(CreateAction {
                    name,
                    params,
                    library,
                    profile,
                })
            }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn prop_unparse_reparses_identically(stmt in arb_statement()) {
        let printed = stmt.to_string();
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("printed SQL failed to parse: {e}\n{printed}"));
        prop_assert_eq!(reparsed.len(), 1, "{}", printed);
        prop_assert_eq!(&reparsed[0], &stmt, "{}", printed);
    }

    #[test]
    fn prop_explain_wraps_any_statement(stmt in arb_statement()) {
        let printed = format!("EXPLAIN {stmt}");
        let reparsed = parse(&printed).expect("EXPLAIN of valid statement parses");
        match &reparsed[0] {
            Statement::Explain(inner) => prop_assert_eq!(inner.as_ref(), &stmt),
            other => prop_assert!(false, "expected Explain, got {:?}", other),
        }
    }
}
