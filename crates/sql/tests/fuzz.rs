//! Robustness: the SQL lexer/parser must never panic on arbitrary
//! application input — queries come from applications at runtime, so
//! malformed text is a normal condition.

use proptest::prelude::*;

use aorta_sql::{parse, Lexer};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn prop_lexer_never_panics(s in ".{0,300}") {
        let _ = Lexer::new(&s).tokenize();
    }

    #[test]
    fn prop_parser_never_panics(s in ".{0,300}") {
        let _ = parse(&s);
    }

    /// SQL-shaped garbage: keywords and punctuation in random orders.
    #[test]
    fn prop_parser_survives_sql_shaped_garbage(
        words in proptest::collection::vec(
            prop_oneof![
                Just("SELECT"), Just("FROM"), Just("WHERE"), Just("CREATE"),
                Just("AQ"), Just("ACTION"), Just("AS"), Just("AND"), Just("OR"),
                Just("NOT"), Just("("), Just(")"), Just(","), Just("."),
                Just(">"), Just("="), Just("photo"), Just("sensor"), Just("s"),
                Just("500"), Just("\"str\""), Just(";"),
            ],
            0..30,
        )
    ) {
        let text = words.join(" ");
        let _ = parse(&text);
    }
}
