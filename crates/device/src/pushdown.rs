//! Device-side operator pushdown programs.
//!
//! The paper's in-network processing argument (§2, §3.2) is that a mote can
//! evaluate simple predicates and keep small amounts of aggregate state
//! locally, so a sample whose predicates cannot possibly trigger any
//! registered query never pays the multi-hop radio cost of shipping its
//! full payload — only a one-byte suppression marker travels.
//!
//! This module holds the *program* representation and its evaluation
//! semantics, shared between the engine's placement pass (which compiles
//! registered queries into per-kind programs) and the accounting layer
//! (which decides ship-vs-suppress per scanned sample):
//!
//! * [`PushStep`] — one pushed conjunct: a comparison over the current
//!   sample's attribute ([`PushTerm::Attr`]) or over a windowed aggregate of
//!   the device's recent samples ([`PushTerm::Window`]),
//! * [`PushPrefix`] — the pushable *prefix* of one query's conjunct list,
//!   evaluated in order with short-circuit AND exactly like the engine,
//! * [`PushProgram`] — all prefixes per device kind plus the set of kinds
//!   eligible for suppression at all,
//! * [`WindowState`]/[`WindowBank`] — the device-resident sliding windows
//!   backing `AGG(attr) OVER LAST n` aggregates.
//!
//! The safety property is *preservation by construction*: a sample is
//! suppressed only when **every** query watching its kind fails within its
//! pushed prefix — and since the prefix is a prefix of the query's AND
//! chain, the engine's own evaluation would have short-circuited to false
//! on the same conjunct. Anything uncertain (evaluation error, id-less
//! tuple, empty prefix) ships.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

use aorta_data::{Schema, Tuple, Value};

use crate::DeviceKind;

/// Comparison operator of a pushed conjunct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PushOp {
    /// `=`
    Eq,
    /// `<>` / `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl PushOp {
    /// Whether an ordering between operand and constant satisfies the op.
    pub fn matches(self, ord: Ordering) -> bool {
        match self {
            PushOp::Eq => ord == Ordering::Equal,
            PushOp::Ne => ord != Ordering::Equal,
            PushOp::Lt => ord == Ordering::Less,
            PushOp::Le => ord != Ordering::Greater,
            PushOp::Gt => ord == Ordering::Greater,
            PushOp::Ge => ord != Ordering::Less,
        }
    }

    /// The operator with its operands swapped: `500 < AVG(x) OVER LAST n`
    /// is the same comparison as `AVG(x) OVER LAST n > 500`.
    pub fn flipped(self) -> PushOp {
        match self {
            PushOp::Eq => PushOp::Eq,
            PushOp::Ne => PushOp::Ne,
            PushOp::Lt => PushOp::Gt,
            PushOp::Le => PushOp::Ge,
            PushOp::Gt => PushOp::Lt,
            PushOp::Ge => PushOp::Le,
        }
    }
}

impl std::fmt::Display for PushOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PushOp::Eq => "=",
            PushOp::Ne => "<>",
            PushOp::Lt => "<",
            PushOp::Le => "<=",
            PushOp::Gt => ">",
            PushOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// Partial-aggregate function of a pushed window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PushAgg {
    /// Arithmetic mean of the numeric samples in the window.
    Avg,
    /// Largest numeric sample in the window.
    Max,
    /// Smallest numeric sample in the window.
    Min,
    /// Number of numeric samples in the window.
    Count,
}

impl std::fmt::Display for PushAgg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PushAgg::Avg => "AVG",
            PushAgg::Max => "MAX",
            PushAgg::Min => "MIN",
            PushAgg::Count => "COUNT",
        };
        write!(f, "{s}")
    }
}

/// The numeric view of one sampled attribute value: `Int` and `Float`
/// convert, everything else (NULL, strings, booleans, locations) occupies a
/// window slot but contributes no numeric sample.
pub fn numeric_sample(v: Option<&Value>) -> Option<f64> {
    match v {
        Some(Value::Int(i)) => Some(*i as f64),
        Some(Value::Float(f)) => Some(*f),
        _ => None,
    }
}

/// One device-resident sliding window: the last `cap` samples of one
/// attribute for one (query, conjunct) pair. Every sample occupies a slot;
/// non-numeric samples (`None`) are excluded from the aggregate but still
/// age out older samples, so "LAST n" always means the last n *samples*,
/// not the last n numeric ones.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowState {
    cap: usize,
    samples: VecDeque<Option<f64>>,
}

impl WindowState {
    /// An empty window holding at most `cap` samples (`cap >= 1`).
    pub fn new(cap: u32) -> WindowState {
        WindowState {
            cap: cap.max(1) as usize,
            samples: VecDeque::new(),
        }
    }

    /// Appends a sample, evicting the oldest once full.
    pub fn push(&mut self, sample: Option<f64>) {
        if self.samples.len() == self.cap {
            self.samples.pop_front();
        }
        self.samples.push_back(sample);
    }

    /// Number of occupied slots (numeric or not).
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no sample has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The aggregate over the current window. `COUNT` always yields a
    /// value (zero included); `AVG`/`MAX`/`MIN` yield `None` when the
    /// window holds no numeric sample — the conjunct then evaluates false,
    /// like a NULL comparison.
    pub fn aggregate(&self, agg: PushAgg) -> Option<Value> {
        Self::fold(self.samples.iter().copied(), agg)
    }

    /// The aggregate the window *would* produce after pushing `extra` —
    /// a read-only preview used by the ship/suppress decision, which runs
    /// before the engine's own window advance.
    pub fn aggregate_with(&self, agg: PushAgg, extra: Option<f64>) -> Option<Value> {
        let skip = if self.samples.len() == self.cap { 1 } else { 0 };
        Self::fold(
            self.samples
                .iter()
                .copied()
                .skip(skip)
                .chain(std::iter::once(extra)),
            agg,
        )
    }

    fn fold(samples: impl Iterator<Item = Option<f64>>, agg: PushAgg) -> Option<Value> {
        let mut count = 0u64;
        let mut sum = 0.0f64;
        let mut max = f64::NEG_INFINITY;
        let mut min = f64::INFINITY;
        for s in samples.flatten() {
            count += 1;
            sum += s;
            max = max.max(s);
            min = min.min(s);
        }
        match agg {
            PushAgg::Count => Some(Value::Int(count as i64)),
            _ if count == 0 => None,
            PushAgg::Avg => Some(Value::Float(sum / count as f64)),
            PushAgg::Max => Some(Value::Float(max)),
            PushAgg::Min => Some(Value::Float(min)),
        }
    }
}

/// All device-resident windows, keyed by (query id, conjunct index, source
/// device id). The bank models per-device buffers: a window advances on
/// every sample its device takes, whether or not the sample ships.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WindowBank {
    states: BTreeMap<(u32, usize, i64), WindowState>,
}

impl WindowBank {
    /// An empty bank.
    pub fn new() -> WindowBank {
        WindowBank::default()
    }

    /// Appends a sample to the window for `(query, slot, source)`,
    /// creating it with capacity `cap` on first use.
    pub fn advance(&mut self, query: u32, slot: usize, source: i64, cap: u32, sample: Option<f64>) {
        self.states
            .entry((query, slot, source))
            .or_insert_with(|| WindowState::new(cap))
            .push(sample);
    }

    /// The current aggregate for `(query, slot, source)`; an absent window
    /// aggregates like an empty one.
    pub fn aggregate(&self, query: u32, slot: usize, source: i64, agg: PushAgg) -> Option<Value> {
        match self.states.get(&(query, slot, source)) {
            Some(w) => w.aggregate(agg),
            None => WindowState::new(1).aggregate(agg),
        }
    }

    /// The aggregate `(query, slot, source)` would hold after pushing
    /// `extra` — read-only, for the pre-advance ship/suppress decision.
    pub fn peek(
        &self,
        query: u32,
        slot: usize,
        source: i64,
        cap: u32,
        agg: PushAgg,
        extra: Option<f64>,
    ) -> Option<Value> {
        match self.states.get(&(query, slot, source)) {
            Some(w) => w.aggregate_with(agg, extra),
            None => WindowState::new(cap).aggregate_with(agg, extra),
        }
    }

    /// Drops every window owned by `query` (the `DROP AQ` path).
    pub fn drop_query(&mut self, query: u32) {
        self.states.retain(|(q, _, _), _| *q != query);
    }

    /// Number of live windows.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True when no window is tracked.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }
}

/// The operand of a pushed comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum PushTerm {
    /// The current sample's value of the named attribute.
    Attr(String),
    /// A windowed aggregate of the device's recent samples.
    Window {
        /// The aggregate function.
        agg: PushAgg,
        /// The aggregated attribute.
        attr: String,
        /// Window length in samples.
        window: u32,
        /// The owning conjunct's index — the [`WindowBank`] key slot.
        slot: usize,
    },
}

/// Marker error: a pushed step could not be decided at the device (type
/// mismatch, unknown attribute). The only sound response is to ship the
/// sample — mirroring the engine's error-is-not-false rule — so the error
/// carries no payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Undecidable;

/// One pushed conjunct: `term op constant`.
#[derive(Debug, Clone, PartialEq)]
pub struct PushStep {
    /// Left operand.
    pub term: PushTerm,
    /// Comparison operator.
    pub op: PushOp,
    /// Right operand (a literal constant).
    pub constant: Value,
}

impl PushStep {
    /// Evaluates the step against one sample. `Err(Undecidable)` means the
    /// comparison could not be decided (type mismatch, unknown attribute)
    /// — the caller must ship, mirroring the engine's error-is-not-false
    /// rule.
    pub fn eval(
        &self,
        schema: &Schema,
        tuple: &Tuple,
        query: u32,
        source: i64,
        bank: &WindowBank,
    ) -> Result<bool, Undecidable> {
        match &self.term {
            PushTerm::Attr(attr) => {
                let idx = schema.index_of(attr).ok_or(Undecidable)?;
                match tuple.get(idx) {
                    // NULL never matches and never errors, like the
                    // engine's NULL-comparison path.
                    None | Some(Value::Null) => Ok(false),
                    Some(v) => match v.compare(&self.constant) {
                        Ok(ord) => Ok(self.op.matches(ord)),
                        Err(_) => Err(Undecidable),
                    },
                }
            }
            PushTerm::Window {
                agg,
                attr,
                window,
                slot,
            } => {
                let idx = schema.index_of(attr).ok_or(Undecidable)?;
                let sample = numeric_sample(tuple.get(idx));
                match bank.peek(query, *slot, source, *window, *agg, sample) {
                    // No numeric sample in the window: the aggregate is
                    // undefined and the conjunct evaluates false.
                    None => Ok(false),
                    Some(v) => match v.compare(&self.constant) {
                        Ok(ord) => Ok(self.op.matches(ord)),
                        Err(_) => Err(Undecidable),
                    },
                }
            }
        }
    }
}

/// The pushable prefix of one query's event-conjunct list.
#[derive(Debug, Clone, PartialEq)]
pub struct PushPrefix {
    /// The owning query.
    pub query_id: u32,
    /// Pushed conjuncts, in the query's AND order.
    pub steps: Vec<PushStep>,
}

impl PushPrefix {
    /// Short-circuit AND over the steps. `Ok(true)` = prefix holds (ship),
    /// `Ok(false)` = some step failed cleanly (this query cannot fire),
    /// `Err(Undecidable)` = undecidable (ship).
    pub fn eval(
        &self,
        schema: &Schema,
        tuple: &Tuple,
        source: i64,
        bank: &WindowBank,
    ) -> Result<bool, Undecidable> {
        for step in &self.steps {
            if !step.eval(schema, tuple, self.query_id, source, bank)? {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

/// The compiled per-kind pushdown program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PushProgram {
    /// One prefix per registered query, grouped by the query's event kind.
    pub prefixes: BTreeMap<DeviceKind, Vec<PushPrefix>>,
    /// Kinds whose samples may be suppressed at all: event kinds that are
    /// not any query's action-target (device) kind — device-part tuples
    /// feed the candidate join and must always ship.
    pub suppressible: BTreeSet<DeviceKind>,
}

impl PushProgram {
    /// True when no query contributes a prefix.
    pub fn is_empty(&self) -> bool {
        self.prefixes.is_empty()
    }

    /// Decides whether a device of `kind` ships this sample's full payload.
    ///
    /// Ships when the kind is not suppressible, the tuple has no usable id
    /// (the engine must still observe and count it), any watching query has
    /// an empty prefix, or any prefix passes or errors. Suppresses only
    /// when every watching query's prefix fails cleanly.
    pub fn ships(
        &self,
        kind: DeviceKind,
        schema: &Schema,
        tuple: &Tuple,
        bank: &WindowBank,
    ) -> bool {
        if !self.suppressible.contains(&kind) {
            return true;
        }
        let Some(prefixes) = self.prefixes.get(&kind) else {
            return true;
        };
        let source = match schema.index_of("id").and_then(|i| tuple.get(i)) {
            Some(Value::Int(i)) => *i,
            _ => return true, // id-less samples always ship
        };
        for prefix in prefixes {
            if prefix.steps.is_empty() {
                return true;
            }
            match prefix.eval(schema, tuple, source, bank) {
                Ok(true) | Err(Undecidable) => return true,
                Ok(false) => {}
            }
        }
        false
    }

    /// Advances every pushed window with this sample, ship or suppress: the
    /// device took the sample either way, and window slots are device-resident
    /// state that must track the samples the device observed — exactly how the
    /// engine advances `plan.windowed` unconditionally before the conjunct
    /// walk. Id-less samples carry no per-source window and are skipped, again
    /// matching the engine.
    pub fn advance_windows(
        &self,
        kind: DeviceKind,
        schema: &Schema,
        tuple: &Tuple,
        bank: &mut WindowBank,
    ) {
        let Some(prefixes) = self.prefixes.get(&kind) else {
            return;
        };
        let source = match schema.index_of("id").and_then(|i| tuple.get(i)) {
            Some(Value::Int(i)) => *i,
            _ => return,
        };
        for prefix in prefixes {
            for step in &prefix.steps {
                if let PushTerm::Window {
                    attr, window, slot, ..
                } = &step.term
                {
                    let sample = numeric_sample(schema.index_of(attr).and_then(|i| tuple.get(i)));
                    bank.advance(prefix.query_id, *slot, source, *window, sample);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aorta_data::{AttrKind, ValueType};

    fn schema() -> Schema {
        Schema::builder("sensor")
            .attr("id", ValueType::Int, AttrKind::NonSensory)
            .attr("accel_x", ValueType::Int, AttrKind::Sensory)
            .attr("label", ValueType::Str, AttrKind::Sensory)
            .build()
    }

    fn tuple(id: i64, accel: Value) -> Tuple {
        Tuple::new(vec![Value::Int(id), accel, Value::Null])
    }

    #[test]
    fn window_aggregates_over_numeric_samples() {
        let mut w = WindowState::new(3);
        assert_eq!(w.aggregate(PushAgg::Count), Some(Value::Int(0)));
        assert_eq!(w.aggregate(PushAgg::Avg), None);
        w.push(Some(10.0));
        w.push(None); // NULL occupies a slot
        w.push(Some(20.0));
        assert_eq!(w.aggregate(PushAgg::Count), Some(Value::Int(2)));
        assert_eq!(w.aggregate(PushAgg::Avg), Some(Value::Float(15.0)));
        assert_eq!(w.aggregate(PushAgg::Max), Some(Value::Float(20.0)));
        assert_eq!(w.aggregate(PushAgg::Min), Some(Value::Float(10.0)));
        // A fourth push evicts the oldest (10.0).
        w.push(Some(40.0));
        assert_eq!(w.aggregate(PushAgg::Avg), Some(Value::Float(30.0)));
        assert_eq!(w.len(), 3);
    }

    #[test]
    fn aggregate_with_previews_the_next_push() {
        let mut w = WindowState::new(2);
        w.push(Some(10.0));
        w.push(Some(20.0));
        // Preview: pushing 30 evicts 10, window = [20, 30].
        assert_eq!(
            w.aggregate_with(PushAgg::Avg, Some(30.0)),
            Some(Value::Float(25.0))
        );
        // The preview did not mutate.
        assert_eq!(w.aggregate(PushAgg::Avg), Some(Value::Float(15.0)));
        w.push(Some(30.0));
        assert_eq!(w.aggregate(PushAgg::Avg), Some(Value::Float(25.0)));
    }

    #[test]
    fn bank_keys_windows_per_query_conjunct_source() {
        let mut bank = WindowBank::new();
        bank.advance(1, 0, 7, 2, Some(5.0));
        bank.advance(1, 0, 8, 2, Some(50.0));
        bank.advance(2, 0, 7, 2, Some(500.0));
        assert_eq!(
            bank.aggregate(1, 0, 7, PushAgg::Max),
            Some(Value::Float(5.0))
        );
        assert_eq!(
            bank.aggregate(2, 0, 7, PushAgg::Max),
            Some(Value::Float(500.0))
        );
        assert_eq!(bank.aggregate(3, 0, 7, PushAgg::Count), Some(Value::Int(0)));
        assert_eq!(bank.len(), 3);
        bank.drop_query(1);
        assert_eq!(bank.len(), 1);
    }

    #[test]
    fn attr_step_matches_null_and_mismatch_semantics() {
        let s = schema();
        let bank = WindowBank::new();
        let step = PushStep {
            term: PushTerm::Attr("accel_x".into()),
            op: PushOp::Gt,
            constant: Value::Int(500),
        };
        let hit = tuple(0, Value::Int(600));
        let miss = tuple(0, Value::Int(400));
        let null = tuple(0, Value::Null);
        assert_eq!(step.eval(&s, &hit, 0, 0, &bank), Ok(true));
        assert_eq!(step.eval(&s, &miss, 0, 0, &bank), Ok(false));
        assert_eq!(step.eval(&s, &null, 0, 0, &bank), Ok(false));
        // Type mismatch is an error, never false.
        let mismatch = PushStep {
            term: PushTerm::Attr("accel_x".into()),
            op: PushOp::Gt,
            constant: Value::Str("high".into()),
        };
        assert_eq!(mismatch.eval(&s, &hit, 0, 0, &bank), Err(Undecidable));
    }

    #[test]
    fn program_suppresses_only_when_every_prefix_fails() {
        let s = schema();
        let mut bank = WindowBank::new();
        let mut program = PushProgram::default();
        program.suppressible.insert(DeviceKind::Sensor);
        program.prefixes.insert(
            DeviceKind::Sensor,
            vec![
                PushPrefix {
                    query_id: 0,
                    steps: vec![PushStep {
                        term: PushTerm::Attr("accel_x".into()),
                        op: PushOp::Gt,
                        constant: Value::Int(500),
                    }],
                },
                PushPrefix {
                    query_id: 1,
                    steps: vec![PushStep {
                        term: PushTerm::Window {
                            agg: PushAgg::Avg,
                            attr: "accel_x".into(),
                            window: 2,
                            slot: 0,
                        },
                        op: PushOp::Ge,
                        constant: Value::Int(100),
                    }],
                },
            ],
        );
        // Both prefixes fail (20 <= 500; avg-with-current 20 < 100).
        assert!(!program.ships(DeviceKind::Sensor, &s, &tuple(3, Value::Int(20)), &bank));
        // The direct comparison passes.
        assert!(program.ships(DeviceKind::Sensor, &s, &tuple(3, Value::Int(600)), &bank));
        // The window fills with large samples: the aggregate prefix passes
        // even though the current sample fails the direct comparison.
        bank.advance(1, 0, 3, 2, Some(400.0));
        bank.advance(1, 0, 3, 2, Some(400.0));
        assert!(program.ships(DeviceKind::Sensor, &s, &tuple(3, Value::Int(20)), &bank));
        // Id-less samples always ship.
        let idless = Tuple::new(vec![Value::Null, Value::Int(0), Value::Null]);
        assert!(program.ships(DeviceKind::Sensor, &s, &idless, &bank));
        // Non-suppressible kinds always ship.
        assert!(program.ships(DeviceKind::Camera, &s, &tuple(3, Value::Int(20)), &bank));
    }

    #[test]
    fn empty_prefix_forces_shipping() {
        let s = schema();
        let bank = WindowBank::new();
        let mut program = PushProgram::default();
        program.suppressible.insert(DeviceKind::Sensor);
        program.prefixes.insert(
            DeviceKind::Sensor,
            vec![
                PushPrefix {
                    query_id: 0,
                    steps: vec![PushStep {
                        term: PushTerm::Attr("accel_x".into()),
                        op: PushOp::Gt,
                        constant: Value::Int(500),
                    }],
                },
                // A query the placement pass could not push at all.
                PushPrefix {
                    query_id: 1,
                    steps: Vec::new(),
                },
            ],
        );
        assert!(program.ships(DeviceKind::Sensor, &s, &tuple(3, Value::Int(20)), &bank));
    }
}
