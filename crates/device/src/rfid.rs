//! The RFID-reader simulator — the "new type of devices" of §8's future
//! work, exercising the communication layer's extensibility (§7 discusses
//! RFID-tag frameworks as related work).
//!
//! A reader is an *event source* like a mote: tags entering its field
//! change the `tag_count` sensory attribute, which queries can trigger on
//! (`WHERE r.tag_count > 0`). Readers also support a `write_tag` atomic
//! operation as an action target.

use std::collections::BTreeSet;

use aorta_data::Location;
use aorta_sim::{SimDuration, SimRng, SimTime};

use crate::{DeviceId, DeviceKind, PhysicalStatus};

/// When tags pass through the reader's field.
#[derive(Debug, Clone, PartialEq)]
pub enum TagSchedule {
    /// No scheduled traffic (only manually added tags).
    Idle,
    /// A tagged object passes every `period`, staying `dwell` in the field,
    /// starting at `offset`.
    Periodic {
        /// Arrival period.
        period: SimDuration,
        /// Phase offset of the first arrival.
        offset: SimDuration,
        /// How long the tag stays in the field.
        dwell: SimDuration,
    },
}

/// A simulated RFID reader (portal style, fixed mount).
///
/// # Example
///
/// ```
/// use aorta_device::{RfidReader, TagSchedule};
/// use aorta_data::Location;
/// use aorta_sim::{SimDuration, SimRng, SimTime};
///
/// let reader = RfidReader::new(0, Location::new(1.0, 0.5, 1.2))
///     .with_schedule(TagSchedule::Periodic {
///         period: SimDuration::from_mins(1),
///         offset: SimDuration::ZERO,
///         dwell: SimDuration::from_secs(3),
///     });
/// let mut rng = SimRng::seed(1);
/// assert!(reader.tag_count(SimTime::ZERO, &mut rng) >= 1);
/// ```
#[derive(Debug, Clone)]
pub struct RfidReader {
    id: DeviceId,
    location: Location,
    schedule: TagSchedule,
    /// Tags pinned into the field by tests/applications.
    static_tags: BTreeSet<String>,
    /// Probability a present tag is missed by one inventory round.
    miss_prob: f64,
    /// Duration of one inventory round.
    inventory_time: SimDuration,
}

impl RfidReader {
    /// Creates an idle reader at `location`.
    pub fn new(index: u32, location: Location) -> Self {
        RfidReader {
            id: DeviceId::new(DeviceKind::Rfid, index),
            location,
            schedule: TagSchedule::Idle,
            static_tags: BTreeSet::new(),
            miss_prob: 0.05,
            inventory_time: SimDuration::from_millis(80),
        }
    }

    /// Sets the tag traffic schedule, builder style.
    pub fn with_schedule(mut self, schedule: TagSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Sets the per-round tag miss probability, builder style.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn with_miss_prob(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "miss probability must be in [0,1]"
        );
        self.miss_prob = p;
        self
    }

    /// The device ID.
    pub fn id(&self) -> DeviceId {
        self.id
    }

    /// The reader's mount location.
    pub fn location(&self) -> Location {
        self.location
    }

    /// Duration of one inventory round (the `scan_inventory` atomic op).
    pub fn inventory_time(&self) -> SimDuration {
        self.inventory_time
    }

    /// Pins a tag into the field (e.g. an object left at the portal).
    pub fn add_tag(&mut self, tag: impl Into<String>) {
        self.static_tags.insert(tag.into());
    }

    /// Removes a pinned tag; returns whether it was present.
    pub fn remove_tag(&mut self, tag: &str) -> bool {
        self.static_tags.remove(tag)
    }

    /// True when the schedule puts a moving tag in the field at `now`.
    pub fn scheduled_tag_present(&self, now: SimTime) -> bool {
        match &self.schedule {
            TagSchedule::Idle => false,
            TagSchedule::Periodic {
                period,
                offset,
                dwell,
            } => {
                let t = now.as_micros();
                let off = offset.as_micros();
                if t < off || period.as_micros() == 0 {
                    return false;
                }
                (t - off) % period.as_micros() < dwell.as_micros()
            }
        }
    }

    /// Runs one inventory round: each present tag is detected independently
    /// with probability `1 - miss_prob`.
    pub fn tag_count(&self, now: SimTime, rng: &mut SimRng) -> i64 {
        let mut present = self.static_tags.len() as i64;
        if self.scheduled_tag_present(now) {
            present += 1;
        }
        (0..present).filter(|_| !rng.chance(self.miss_prob)).count() as i64
    }

    /// The identifier of the most recently seen tag (scheduled tags are
    /// named after their arrival window).
    pub fn last_tag(&self, now: SimTime) -> Option<String> {
        if self.scheduled_tag_present(now) {
            if let TagSchedule::Periodic { period, offset, .. } = &self.schedule {
                let window = (now.as_micros() - offset.as_micros()) / period.as_micros().max(1);
                return Some(format!("tag-{}-{window}", self.id.index()));
            }
        }
        self.static_tags.iter().next_back().cloned()
    }

    /// Probes the reader (wired portal: reliable aside from inventory
    /// timing).
    pub fn probe(&self, now: SimTime, rng: &mut SimRng) -> Option<PhysicalStatus> {
        Some(PhysicalStatus::RfidField {
            tags_in_range: self.tag_count(now, rng) as u32,
        })
    }

    /// The `write_tag` atomic operation: succeeds when a tag is in the
    /// field and the round doesn't miss it.
    pub fn write_tag(&mut self, now: SimTime, data: &str, rng: &mut SimRng) -> bool {
        let present = !self.static_tags.is_empty() || self.scheduled_tag_present(now);
        if present && !rng.chance(self.miss_prob) {
            self.static_tags.insert(format!("written:{data}"));
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn periodic() -> RfidReader {
        RfidReader::new(0, Location::new(1.0, 0.5, 1.2))
            .with_miss_prob(0.0)
            .with_schedule(TagSchedule::Periodic {
                period: SimDuration::from_mins(1),
                offset: SimDuration::from_secs(10),
                dwell: SimDuration::from_secs(3),
            })
    }

    #[test]
    fn scheduled_tags_come_and_go() {
        let r = periodic();
        assert!(!r.scheduled_tag_present(SimTime::ZERO));
        assert!(r.scheduled_tag_present(SimTime::from_micros(11_000_000)));
        assert!(!r.scheduled_tag_present(SimTime::from_micros(14_000_000)));
        assert!(r.scheduled_tag_present(SimTime::from_micros(71_000_000)));
    }

    #[test]
    fn tag_count_includes_static_and_scheduled() {
        let mut r = periodic();
        let mut rng = SimRng::seed(1);
        assert_eq!(r.tag_count(SimTime::ZERO, &mut rng), 0);
        r.add_tag("pallet-7");
        assert_eq!(r.tag_count(SimTime::ZERO, &mut rng), 1);
        assert_eq!(r.tag_count(SimTime::from_micros(11_000_000), &mut rng), 2);
        assert!(r.remove_tag("pallet-7"));
        assert!(!r.remove_tag("pallet-7"));
    }

    #[test]
    fn misses_lose_tags_sometimes() {
        let mut r = RfidReader::new(0, Location::ORIGIN).with_miss_prob(0.5);
        r.add_tag("a");
        let mut rng = SimRng::seed(2);
        let seen: i64 = (0..1000)
            .map(|_| r.tag_count(SimTime::ZERO, &mut rng))
            .sum();
        assert!((400..600).contains(&seen), "got {seen}");
    }

    #[test]
    fn last_tag_names_are_stable_per_window() {
        let r = periodic();
        let a = r.last_tag(SimTime::from_micros(10_500_000));
        let b = r.last_tag(SimTime::from_micros(11_500_000));
        assert_eq!(a, b);
        assert_eq!(a.as_deref(), Some("tag-0-0"));
        let next = r.last_tag(SimTime::from_micros(70_500_000));
        assert_eq!(next.as_deref(), Some("tag-0-1"));
        assert_eq!(r.last_tag(SimTime::ZERO), None);
    }

    #[test]
    fn probe_reports_field_status() {
        let mut rng = SimRng::seed(3);
        let mut r = periodic();
        r.add_tag("x");
        let st = r.probe(SimTime::ZERO, &mut rng).unwrap();
        match st {
            PhysicalStatus::RfidField { tags_in_range } => assert_eq!(tags_in_range, 1),
            other => panic!("unexpected status {other:?}"),
        }
    }

    #[test]
    fn write_tag_needs_a_present_tag() {
        let mut rng = SimRng::seed(4);
        let mut empty = RfidReader::new(0, Location::ORIGIN).with_miss_prob(0.0);
        assert!(!empty.write_tag(SimTime::ZERO, "payload", &mut rng));
        empty.add_tag("carrier");
        assert!(empty.write_tag(SimTime::ZERO, "payload", &mut rng));
    }
}
