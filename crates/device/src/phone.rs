//! The cell-phone simulator.
//!
//! Phones are action *sinks* in Aorta: the user-defined `sendphoto()` action
//! of §2.2 delivers an MMS with a photo to the manager's phone. The paper's
//! reliability concern is coverage: "a phone may become unreachable when its
//! owner moves into an area that is out of the coverage of the service
//! provider" (§4). Coverage here is a two-state Markov process sampled on
//! each interaction.

use aorta_data::Location;
use aorta_sim::{SimDuration, SimRng, SimTime};

use crate::{DeviceId, PhysicalStatus};

/// SMS vs MMS (different receive costs; MMS carries a payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageKind {
    /// Short text message.
    Sms,
    /// Multimedia message (e.g. a photo attachment).
    Mms,
}

/// A two-state (in/out of coverage) Markov reachability model.
///
/// State is re-evaluated lazily: when `advance(now)` is called, the model
/// flips a coin per elapsed `epoch` to decide transitions.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageModel {
    /// Probability of dropping out of coverage per epoch while covered.
    pub p_drop: f64,
    /// Probability of regaining coverage per epoch while uncovered.
    pub p_regain: f64,
    /// How often the state may flip.
    pub epoch: SimDuration,
}

impl CoverageModel {
    /// A phone that never leaves coverage.
    pub fn always_covered() -> Self {
        CoverageModel {
            p_drop: 0.0,
            p_regain: 1.0,
            epoch: SimDuration::from_secs(10),
        }
    }

    /// A phone whose owner wanders: expected ~5% of epochs out of coverage.
    pub fn wandering() -> Self {
        CoverageModel {
            p_drop: 0.01,
            p_regain: 0.2,
            epoch: SimDuration::from_secs(10),
        }
    }
}

/// A delivered message, for assertions in tests and examples.
#[derive(Debug, Clone, PartialEq)]
pub struct ReceivedMessage {
    /// When delivery completed.
    pub at: SimTime,
    /// SMS or MMS.
    pub kind: MessageKind,
    /// Payload description (e.g. a photo path).
    pub body: String,
}

/// A simulated MMS-capable phone.
///
/// # Example
///
/// ```
/// use aorta_device::{MessageKind, Phone};
/// use aorta_sim::{SimRng, SimTime};
///
/// let mut phone = Phone::new(0, "852-5555-0001");
/// let mut rng = SimRng::seed(1);
/// let done = phone
///     .deliver(SimTime::ZERO, MessageKind::Mms, "photos/admin/door.jpg", &mut rng)
///     .expect("always-covered phone accepts messages");
/// assert!(done > SimTime::ZERO);
/// assert_eq!(phone.inbox().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Phone {
    id: DeviceId,
    number: String,
    coverage: CoverageModel,
    in_coverage: bool,
    last_advance: SimTime,
    sms_time: SimDuration,
    mms_time: SimDuration,
    inbox: Vec<ReceivedMessage>,
}

impl Phone {
    /// Creates an always-covered phone with the given number.
    pub fn new(index: u32, number: impl Into<String>) -> Self {
        Phone {
            id: DeviceId::phone(index),
            number: number.into(),
            coverage: CoverageModel::always_covered(),
            in_coverage: true,
            last_advance: SimTime::ZERO,
            sms_time: SimDuration::from_millis(800),
            mms_time: SimDuration::from_secs(4),
            inbox: Vec::new(),
        }
    }

    /// Sets the coverage model, builder style.
    pub fn with_coverage(mut self, coverage: CoverageModel) -> Self {
        self.coverage = coverage;
        self
    }

    /// The device ID.
    pub fn id(&self) -> DeviceId {
        self.id
    }

    /// The phone number (a non-sensory attribute of the `phone` table).
    pub fn number(&self) -> &str {
        &self.number
    }

    /// The phone's nominal location is unknown (it moves with its owner);
    /// probes answer with coverage state instead. This is always `None`.
    pub fn location(&self) -> Option<Location> {
        None
    }

    /// Advances the coverage Markov chain to `now`.
    pub fn advance(&mut self, now: SimTime, rng: &mut SimRng) {
        if self.coverage.epoch.is_zero() {
            self.last_advance = now;
            return;
        }
        let epochs = now.saturating_duration_since(self.last_advance).as_micros()
            / self.coverage.epoch.as_micros().max(1);
        for _ in 0..epochs.min(10_000) {
            if self.in_coverage {
                if rng.chance(self.coverage.p_drop) {
                    self.in_coverage = false;
                }
            } else if rng.chance(self.coverage.p_regain) {
                self.in_coverage = true;
            }
        }
        self.last_advance = now;
    }

    /// Whether the phone is currently reachable (after advancing to `now`).
    pub fn is_reachable(&mut self, now: SimTime, rng: &mut SimRng) -> bool {
        self.advance(now, rng);
        self.in_coverage
    }

    /// Probes the phone (§4): reachability check plus coverage status.
    pub fn probe(&mut self, now: SimTime, rng: &mut SimRng) -> Option<PhysicalStatus> {
        if self.is_reachable(now, rng) {
            Some(PhysicalStatus::PhoneCoverage { in_coverage: true })
        } else {
            None
        }
    }

    /// Delivers a message; returns the completion time, or `None` when the
    /// phone is out of coverage.
    pub fn deliver(
        &mut self,
        now: SimTime,
        kind: MessageKind,
        body: impl Into<String>,
        rng: &mut SimRng,
    ) -> Option<SimTime> {
        if !self.is_reachable(now, rng) {
            return None;
        }
        let cost = match kind {
            MessageKind::Sms => self.sms_time,
            MessageKind::Mms => self.mms_time,
        };
        let at = now + cost;
        self.inbox.push(ReceivedMessage {
            at,
            kind,
            body: body.into(),
        });
        Some(at)
    }

    /// The receive cost for a message kind (the atomic-operation cost).
    pub fn receive_cost(&self, kind: MessageKind) -> SimDuration {
        match kind {
            MessageKind::Sms => self.sms_time,
            MessageKind::Mms => self.mms_time,
        }
    }

    /// Messages received so far, oldest first.
    pub fn inbox(&self) -> &[ReceivedMessage] {
        &self.inbox
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_covered_phone_delivers() {
        let mut phone = Phone::new(0, "852-5555-0001");
        let mut rng = SimRng::seed(1);
        let t = phone
            .deliver(SimTime::ZERO, MessageKind::Sms, "hello", &mut rng)
            .unwrap();
        assert_eq!(t, SimTime::from_micros(800_000));
        assert_eq!(phone.inbox()[0].body, "hello");
        assert_eq!(phone.number(), "852-5555-0001");
    }

    #[test]
    fn mms_costs_more_than_sms() {
        let phone = Phone::new(0, "x");
        assert!(phone.receive_cost(MessageKind::Mms) > phone.receive_cost(MessageKind::Sms));
    }

    #[test]
    fn out_of_coverage_phone_rejects() {
        let mut phone = Phone::new(0, "x").with_coverage(CoverageModel {
            p_drop: 1.0,
            p_regain: 0.0,
            epoch: SimDuration::from_secs(1),
        });
        let mut rng = SimRng::seed(2);
        // After one epoch the phone has certainly dropped out.
        let result = phone.deliver(
            SimTime::from_micros(2_000_000),
            MessageKind::Mms,
            "photo",
            &mut rng,
        );
        assert_eq!(result, None);
        assert!(phone
            .probe(SimTime::from_micros(3_000_000), &mut rng)
            .is_none());
        assert!(phone.inbox().is_empty());
    }

    #[test]
    fn coverage_recovers() {
        let mut phone = Phone::new(0, "x").with_coverage(CoverageModel {
            p_drop: 1.0,
            p_regain: 1.0,
            epoch: SimDuration::from_secs(1),
        });
        let mut rng = SimRng::seed(3);
        // Flips every epoch: after exactly 1 epoch -> out, after 2 -> in.
        assert!(!phone.is_reachable(SimTime::from_micros(1_000_000), &mut rng));
        assert!(phone.is_reachable(SimTime::from_micros(2_000_000), &mut rng));
    }

    #[test]
    fn wandering_coverage_fraction() {
        let mut rng = SimRng::seed(4);
        let mut out_epochs = 0u32;
        let mut phone = Phone::new(0, "x").with_coverage(CoverageModel::wandering());
        for i in 1..=20_000u64 {
            if !phone.is_reachable(SimTime::from_micros(i * 10_000_000), &mut rng) {
                out_epochs += 1;
            }
        }
        // Stationary out-of-coverage fraction = p_drop/(p_drop+p_regain) ≈ 4.8%.
        let frac = out_epochs as f64 / 20_000.0;
        assert!((0.03..=0.07).contains(&frac), "got {frac}");
    }

    #[test]
    fn probe_reports_coverage_status() {
        let mut phone = Phone::new(0, "x");
        let mut rng = SimRng::seed(5);
        let st = phone.probe(SimTime::ZERO, &mut rng).unwrap();
        assert_eq!(st.as_phone_coverage(), Some(true));
    }

    #[test]
    fn location_is_unknown() {
        assert_eq!(Phone::new(0, "x").location(), None);
    }
}
