//! Device identity.

use std::fmt;

/// The kind (type/model class) of a device.
///
/// The paper says "a type of devices" as shorthand for "a type or model of
/// devices" (§3); each kind has its own virtual table schema, communication
/// module, probe timeout and atomic-operation cost table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DeviceKind {
    /// PTZ network camera (AXIS 2130 class).
    Camera,
    /// Sensor mote (Berkeley MICA2 class).
    Sensor,
    /// Cell phone with SMS/MMS support.
    Phone,
    /// RFID portal reader (§8 future-work device type).
    Rfid,
}

impl DeviceKind {
    /// All kinds, in a stable order.
    pub const ALL: [DeviceKind; 4] = [
        DeviceKind::Camera,
        DeviceKind::Sensor,
        DeviceKind::Phone,
        DeviceKind::Rfid,
    ];

    /// The virtual-table name for this kind (`camera`, `sensor`, `phone`).
    pub fn table_name(self) -> &'static str {
        match self {
            DeviceKind::Camera => "camera",
            DeviceKind::Sensor => "sensor",
            DeviceKind::Phone => "phone",
            DeviceKind::Rfid => "rfid",
        }
    }
}

impl fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.table_name())
    }
}

impl std::str::FromStr for DeviceKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "camera" => Ok(DeviceKind::Camera),
            "sensor" | "mote" => Ok(DeviceKind::Sensor),
            "phone" => Ok(DeviceKind::Phone),
            "rfid" | "rfid_reader" => Ok(DeviceKind::Rfid),
            other => Err(format!("unknown device kind '{other}'")),
        }
    }
}

/// A globally unique device identifier: kind plus per-kind index.
///
/// # Example
///
/// ```
/// use aorta_device::{DeviceId, DeviceKind};
///
/// let id = DeviceId::new(DeviceKind::Camera, 1);
/// assert_eq!(id.to_string(), "camera-1");
/// assert_eq!("camera-1".parse::<DeviceId>(), Ok(id));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceId {
    kind: DeviceKind,
    index: u32,
}

impl DeviceId {
    /// Creates an identifier.
    pub fn new(kind: DeviceKind, index: u32) -> Self {
        DeviceId { kind, index }
    }

    /// Shorthand for a camera ID.
    pub fn camera(index: u32) -> Self {
        DeviceId::new(DeviceKind::Camera, index)
    }

    /// Shorthand for a sensor ID.
    pub fn sensor(index: u32) -> Self {
        DeviceId::new(DeviceKind::Sensor, index)
    }

    /// Shorthand for a phone ID.
    pub fn phone(index: u32) -> Self {
        DeviceId::new(DeviceKind::Phone, index)
    }

    /// The device kind.
    pub fn kind(self) -> DeviceKind {
        self.kind
    }

    /// The per-kind index.
    pub fn index(self) -> u32 {
        self.index
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.kind, self.index)
    }
}

impl std::str::FromStr for DeviceId {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (kind, index) = s
            .rsplit_once('-')
            .ok_or_else(|| format!("device id '{s}' must look like 'camera-0'"))?;
        Ok(DeviceId::new(
            kind.parse()?,
            index
                .parse()
                .map_err(|_| format!("device id '{s}' has a non-numeric index"))?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_parse_round_trip() {
        for kind in DeviceKind::ALL {
            let id = DeviceId::new(kind, 7);
            assert_eq!(id.to_string().parse::<DeviceId>(), Ok(id));
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<DeviceId>().is_err());
        assert!("camera".parse::<DeviceId>().is_err());
        assert!("toaster-1".parse::<DeviceId>().is_err());
        assert!("camera-x".parse::<DeviceId>().is_err());
    }

    #[test]
    fn kind_aliases() {
        assert_eq!("mote".parse::<DeviceKind>(), Ok(DeviceKind::Sensor));
        assert_eq!("CAMERA".parse::<DeviceKind>(), Ok(DeviceKind::Camera));
    }

    #[test]
    fn shorthand_constructors() {
        assert_eq!(DeviceId::camera(0).kind(), DeviceKind::Camera);
        assert_eq!(DeviceId::sensor(3).index(), 3);
        assert_eq!(DeviceId::phone(1).to_string(), "phone-1");
    }

    #[test]
    fn ids_order_by_kind_then_index() {
        let mut v = vec![DeviceId::phone(0), DeviceId::camera(2), DeviceId::camera(1)];
        v.sort();
        assert_eq!(
            v,
            [DeviceId::camera(1), DeviceId::camera(2), DeviceId::phone(0)]
        );
    }
}
