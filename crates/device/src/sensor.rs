//! The sensor-mote simulator (Berkeley MICA2 / MTS310CA class).
//!
//! Motes play two roles in the paper: they *source events* (the
//! `s.accel_x > 500` condition of the snapshot query fires when someone
//! pushes the door the mote is attached to) and they *answer scans* over the
//! virtual `sensor` table. Their radio is lossy ("the current generation
//! sensors usually communicate via a wireless radio channel of a high packet
//! loss rate", §4), and deeper motes in the multi-hop tree are costlier to
//! reach.

use aorta_data::Location;
use aorta_sim::{SimDuration, SimRng, SimTime};

use crate::{DeviceId, PhysicalStatus};

/// When and how a mote produces acceleration spikes (physical-world events).
#[derive(Debug, Clone, PartialEq)]
pub enum SpikeModel {
    /// No events — background readings only.
    Quiet,
    /// A spike every `period`, starting at `offset`, lasting `width`.
    ///
    /// The §6.2 workload ("a photo of Mote i's location was required to be
    /// taken by the i-th query every minute") uses periodic spikes with a
    /// one-minute period.
    Periodic {
        /// Spike period.
        period: SimDuration,
        /// Phase offset of the first spike.
        offset: SimDuration,
        /// How long each spike lasts.
        width: SimDuration,
    },
    /// Memoryless random events at the given expected rate.
    Poisson {
        /// Expected spikes per simulated minute.
        per_minute: f64,
        /// How long each spike lasts.
        width: SimDuration,
    },
}

/// One sampled reading of all sensory attributes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MoteReading {
    /// X-axis acceleration, raw ADC counts (spikes exceed 500).
    pub accel_x: i64,
    /// Y-axis acceleration, raw ADC counts.
    pub accel_y: i64,
    /// Temperature, °C.
    pub temp: f64,
    /// Light level, raw ADC counts.
    pub light: i64,
    /// Battery voltage, volts.
    pub battery_volts: f64,
}

/// A simulated MICA2 mote with an MTS310CA sensor board.
///
/// # Example
///
/// ```
/// use aorta_device::{Mote, SpikeModel};
/// use aorta_data::Location;
/// use aorta_sim::{SimDuration, SimRng, SimTime};
///
/// let mut rng = SimRng::seed(1);
/// let mote = Mote::new(3, Location::new(1.0, 2.0, 1.0), 1)
///     .with_spikes(SpikeModel::Periodic {
///         period: SimDuration::from_mins(1),
///         offset: SimDuration::ZERO,
///         width: SimDuration::from_secs(2),
///     });
/// let at_event = mote.sample(SimTime::ZERO + SimDuration::from_secs(1), &mut rng);
/// assert!(at_event.accel_x > 500);
/// ```
#[derive(Debug, Clone)]
pub struct Mote {
    id: DeviceId,
    location: Location,
    depth: u8,
    spikes: SpikeModel,
    /// Probability that a single radio packet is lost per hop.
    per_hop_loss: f64,
    /// One-hop radio round trip.
    hop_rtt: SimDuration,
    battery_volts: f64,
    /// Battery drain per sample, volts.
    drain_per_sample: f64,
}

impl Mote {
    /// Creates a mote at `location`, `depth` hops from the base station.
    pub fn new(index: u32, location: Location, depth: u8) -> Self {
        Mote {
            id: DeviceId::sensor(index),
            location,
            depth: depth.max(1),
            spikes: SpikeModel::Quiet,
            per_hop_loss: 0.05,
            hop_rtt: SimDuration::from_millis(30),
            battery_volts: 3.0,
            drain_per_sample: 2e-6,
        }
    }

    /// Sets the spike (event) model, builder style.
    pub fn with_spikes(mut self, spikes: SpikeModel) -> Self {
        self.spikes = spikes;
        self
    }

    /// Sets the per-hop packet-loss probability, builder style.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn with_per_hop_loss(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "loss probability must be in [0,1]"
        );
        self.per_hop_loss = p;
        self
    }

    /// The device ID.
    pub fn id(&self) -> DeviceId {
        self.id
    }

    /// The mote's (fixed) location — a non-sensory attribute.
    pub fn location(&self) -> Location {
        self.location
    }

    /// Hops from the base station.
    pub fn depth(&self) -> u8 {
        self.depth
    }

    /// Current battery voltage.
    pub fn battery_volts(&self) -> f64 {
        self.battery_volts
    }

    /// Probability that one end-to-end message survives all hops.
    pub fn delivery_prob(&self) -> f64 {
        (1.0 - self.per_hop_loss).powi(self.depth as i32)
    }

    /// Expected end-to-end round-trip time when delivery succeeds.
    pub fn round_trip(&self) -> SimDuration {
        self.hop_rtt * self.depth as u64
    }

    /// True when `now` falls inside a spike window (deterministic models
    /// only; Poisson spikes are sampled inside [`Mote::sample`]).
    pub fn spike_active(&self, now: SimTime) -> bool {
        match &self.spikes {
            SpikeModel::Quiet | SpikeModel::Poisson { .. } => false,
            SpikeModel::Periodic {
                period,
                offset,
                width,
            } => {
                let t = now.as_micros();
                let off = offset.as_micros();
                if t < off || period.as_micros() == 0 {
                    return false;
                }
                (t - off) % period.as_micros() < width.as_micros()
            }
        }
    }

    /// Samples all sensory attributes at `now`, draining a little battery.
    pub fn sample(&self, now: SimTime, rng: &mut SimRng) -> MoteReading {
        let spiking = match &self.spikes {
            SpikeModel::Poisson { per_minute, width } => {
                // Probability that `now` lands inside some spike window:
                // rate × width (thinned Poisson), clamped.
                let p = (per_minute / 60.0) * width.as_secs_f64();
                rng.chance(p.clamp(0.0, 1.0))
            }
            _ => self.spike_active(now),
        };
        let accel_base = rng.range(-40..=40i64);
        let accel_x = if spiking {
            560 + rng.range(0..=300i64)
        } else {
            accel_base
        };
        MoteReading {
            accel_x,
            accel_y: rng.range(-40..=40),
            temp: 22.0 + rng.unit() * 4.0,
            light: 300 + rng.range(-50..=50i64),
            battery_volts: self.battery_volts,
        }
    }

    /// Records the battery cost of one serviced request.
    pub fn drain(&mut self) {
        self.battery_volts = (self.battery_volts - self.drain_per_sample).max(0.0);
    }

    /// Probes the mote over its multi-hop radio path: each of the two probe
    /// messages (request + reply) must survive `depth` hops.
    ///
    /// Returns the physical status on success, `None` on packet loss —
    /// which the prober turns into a timeout (§4).
    pub fn probe(&self, _now: SimTime, rng: &mut SimRng) -> Option<PhysicalStatus> {
        for _hop in 0..(2 * self.depth) {
            if rng.chance(self.per_hop_loss) {
                return None;
            }
        }
        Some(PhysicalStatus::SensorLink {
            depth: self.depth,
            battery_volts: self.battery_volts,
        })
    }

    /// The `beep`/`blink` atomic operations (used as an example action
    /// target on sensors, §3.1): succeeds when the command survives the
    /// radio path.
    pub fn beep(&mut self, _now: SimTime, rng: &mut SimRng) -> bool {
        for _hop in 0..self.depth {
            if rng.chance(self.per_hop_loss) {
                return false;
            }
        }
        self.drain();
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn periodic_spikes_fire_on_schedule() {
        let mote = Mote::new(0, Location::ORIGIN, 1).with_spikes(SpikeModel::Periodic {
            period: SimDuration::from_mins(1),
            offset: SimDuration::from_secs(10),
            width: SimDuration::from_secs(2),
        });
        assert!(!mote.spike_active(SimTime::ZERO));
        assert!(mote.spike_active(SimTime::from_micros(10_500_000)));
        assert!(!mote.spike_active(SimTime::from_micros(13_000_000)));
        assert!(
            mote.spike_active(SimTime::from_micros(70_500_000)),
            "next minute"
        );
    }

    #[test]
    fn spike_reading_exceeds_threshold() {
        let mote = Mote::new(0, Location::ORIGIN, 1).with_spikes(SpikeModel::Periodic {
            period: SimDuration::from_mins(1),
            offset: SimDuration::ZERO,
            width: SimDuration::from_secs(1),
        });
        let mut rng = SimRng::seed(1);
        let r = mote.sample(SimTime::ZERO, &mut rng);
        assert!(r.accel_x > 500, "paper threshold is 500, got {}", r.accel_x);
        let quiet = mote.sample(SimTime::from_micros(30_000_000), &mut rng);
        assert!(quiet.accel_x.abs() <= 40);
    }

    #[test]
    fn quiet_mote_never_spikes() {
        let mote = Mote::new(0, Location::ORIGIN, 1);
        let mut rng = SimRng::seed(2);
        for i in 0..100 {
            let r = mote.sample(SimTime::from_micros(i * 1_000_000), &mut rng);
            assert!(r.accel_x <= 500);
        }
    }

    #[test]
    fn poisson_rate_roughly_matches() {
        let mote = Mote::new(0, Location::ORIGIN, 1).with_spikes(SpikeModel::Poisson {
            per_minute: 6.0,
            width: SimDuration::from_secs(2),
        });
        let mut rng = SimRng::seed(3);
        // p(spike at a random instant) = (6/60)*2 = 0.2
        let hits = (0..10_000)
            .filter(|&i| mote.sample(SimTime::from_micros(i), &mut rng).accel_x > 500)
            .count();
        assert!((1_700..=2_300).contains(&hits), "got {hits}");
    }

    #[test]
    fn deeper_motes_are_less_reachable_and_slower() {
        let shallow = Mote::new(0, Location::ORIGIN, 1);
        let deep = Mote::new(1, Location::ORIGIN, 4);
        assert!(deep.delivery_prob() < shallow.delivery_prob());
        assert!(deep.round_trip() > shallow.round_trip());
        assert_eq!(shallow.round_trip(), SimDuration::from_millis(30));
        assert_eq!(deep.round_trip(), SimDuration::from_millis(120));
    }

    #[test]
    fn probe_loss_rate_scales_with_depth() {
        let mut rng = SimRng::seed(4);
        let deep = Mote::new(0, Location::ORIGIN, 5).with_per_hop_loss(0.1);
        let ok = (0..10_000)
            .filter(|_| deep.probe(SimTime::ZERO, &mut rng).is_some())
            .count();
        // (0.9)^10 ≈ 0.349
        assert!((3_200..=3_800).contains(&ok), "got {ok}");
    }

    #[test]
    fn probe_reports_status() {
        let mote = Mote::new(0, Location::ORIGIN, 2).with_per_hop_loss(0.0);
        let mut rng = SimRng::seed(5);
        let st = mote.probe(SimTime::ZERO, &mut rng).unwrap();
        assert_eq!(st.as_sensor_depth(), Some(2));
    }

    #[test]
    fn beep_drains_battery() {
        let mut mote = Mote::new(0, Location::ORIGIN, 1).with_per_hop_loss(0.0);
        let mut rng = SimRng::seed(6);
        let before = mote.battery_volts();
        assert!(mote.beep(SimTime::ZERO, &mut rng));
        assert!(mote.battery_volts() < before);
    }

    #[test]
    fn depth_is_at_least_one() {
        let mote = Mote::new(0, Location::ORIGIN, 0);
        assert_eq!(mote.depth(), 1);
    }

    proptest! {
        #[test]
        fn prop_delivery_prob_decreasing_in_depth(d1 in 1u8..10, d2 in 1u8..10) {
            let m1 = Mote::new(0, Location::ORIGIN, d1);
            let m2 = Mote::new(1, Location::ORIGIN, d2);
            if d1 <= d2 {
                prop_assert!(m1.delivery_prob() >= m2.delivery_prob());
            }
        }

        #[test]
        fn prop_periodic_spike_fraction(width_s in 1u64..30) {
            let mote = Mote::new(0, Location::ORIGIN, 1).with_spikes(SpikeModel::Periodic {
                period: SimDuration::from_mins(1),
                offset: SimDuration::ZERO,
                width: SimDuration::from_secs(width_s),
            });
            // Over one full period, exactly `width` of time is active.
            let active = (0..60_000u64)
                .filter(|&ms| mote.spike_active(SimTime::from_micros(ms * 1_000)))
                .count() as u64;
            prop_assert_eq!(active, width_s * 1_000);
        }
    }
}
