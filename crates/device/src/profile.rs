//! Device catalogs — the per-device-type profile files of §3.1.
//!
//! "A device catalog is an XML text file that keeps the names of the
//! attributes supported by the type of devices …, the pointers to the system
//! built-in methods for acquiring the values of the attributes, and the
//! information about the semantics and properties of the attributes."
//!
//! This module generates the canonical catalogs for every device kind
//! and parses catalogs back into [`Schema`]s for the communication layer.

use aorta_data::{AttrKind, Schema, ValueType};
use aorta_xml::{Document, Element, Node};

use crate::DeviceKind;

/// The canonical virtual-table schema for a device kind.
///
/// * `sensor(id, loc, depth, accel_x, accel_y, temp, light, battery)`
/// * `camera(id, ip, loc, pan, tilt, zoom)`
/// * `phone(id, number, in_coverage)`
/// * `rfid(id, loc, tag_count, last_tag)`
pub fn schema_for(kind: DeviceKind) -> Schema {
    match kind {
        DeviceKind::Sensor => Schema::builder("sensor")
            .attr("id", ValueType::Int, AttrKind::NonSensory)
            .attr("loc", ValueType::Location, AttrKind::NonSensory)
            .attr("depth", ValueType::Int, AttrKind::NonSensory)
            .attr("accel_x", ValueType::Int, AttrKind::Sensory)
            .attr("accel_y", ValueType::Int, AttrKind::Sensory)
            .attr("temp", ValueType::Float, AttrKind::Sensory)
            .attr("light", ValueType::Int, AttrKind::Sensory)
            .attr("battery", ValueType::Float, AttrKind::Sensory)
            .build(),
        DeviceKind::Camera => Schema::builder("camera")
            .attr("id", ValueType::Int, AttrKind::NonSensory)
            .attr("ip", ValueType::Str, AttrKind::NonSensory)
            .attr("loc", ValueType::Location, AttrKind::NonSensory)
            .attr("pan", ValueType::Float, AttrKind::Sensory)
            .attr("tilt", ValueType::Float, AttrKind::Sensory)
            .attr("zoom", ValueType::Float, AttrKind::Sensory)
            .build(),
        DeviceKind::Phone => Schema::builder("phone")
            .attr("id", ValueType::Int, AttrKind::NonSensory)
            .attr("number", ValueType::Str, AttrKind::NonSensory)
            .attr("in_coverage", ValueType::Bool, AttrKind::Sensory)
            .build(),
        DeviceKind::Rfid => Schema::builder("rfid")
            .attr("id", ValueType::Int, AttrKind::NonSensory)
            .attr("loc", ValueType::Location, AttrKind::NonSensory)
            .attr("tag_count", ValueType::Int, AttrKind::Sensory)
            .attr("last_tag", ValueType::Str, AttrKind::Sensory)
            .build(),
    }
}

/// Generates the device-catalog XML for a kind.
///
/// # Example
///
/// ```
/// use aorta_device::{catalog_for, parse_catalog, DeviceKind};
///
/// let xml = catalog_for(DeviceKind::Sensor);
/// let schema = parse_catalog(&xml)?;
/// assert_eq!(schema.table(), "sensor");
/// assert!(schema.index_of("accel_x").is_some());
/// # Ok::<(), String>(())
/// ```
pub fn catalog_for(kind: DeviceKind) -> String {
    let schema = schema_for(kind);
    let mut root = Element::new("device_catalog").with_attr("device", kind.to_string());
    for attr in schema.iter() {
        let el = Element::new("attribute")
            .with_attr("name", attr.name())
            .with_attr("type", attr.value_type().to_string())
            .with_attr(
                "category",
                match attr.kind() {
                    AttrKind::Sensory => "sensory",
                    AttrKind::NonSensory => "non_sensory",
                },
            )
            .with_attr(
                "acquire",
                format!("builtin::{}::read_{}", kind, attr.name()),
            );
        root.push_child(Node::Element(el));
    }
    Document::new(root).to_pretty_string()
}

/// Parses a device-catalog XML document into a [`Schema`].
///
/// # Errors
///
/// Returns a message on XML syntax errors or missing/invalid attributes.
pub fn parse_catalog(xml: &str) -> Result<Schema, String> {
    let doc = Document::parse(xml).map_err(|e| e.to_string())?;
    let root = doc.root();
    if root.name() != "device_catalog" {
        return Err(format!(
            "expected <device_catalog>, found <{}>",
            root.name()
        ));
    }
    let kind: DeviceKind = root
        .attr("device")
        .ok_or("missing 'device' attribute")?
        .parse()?;
    let mut builder = Schema::builder(kind.table_name());
    for attr in root.children_named("attribute") {
        let name = attr
            .attr("name")
            .ok_or("an <attribute> is missing its 'name'")?;
        let ty: ValueType = attr
            .attr("type")
            .ok_or_else(|| format!("attribute '{name}' is missing its 'type'"))?
            .parse()
            .map_err(|e| format!("{e}"))?;
        let kind = match attr.attr("category") {
            Some("sensory") => AttrKind::Sensory,
            Some("non_sensory") => AttrKind::NonSensory,
            Some(other) => return Err(format!("unknown attribute category '{other}'")),
            None => return Err(format!("attribute '{name}' is missing its 'category'")),
        };
        builder = builder.attr(name, ty, kind);
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogs_round_trip_for_all_kinds() {
        for kind in DeviceKind::ALL {
            let xml = catalog_for(kind);
            let parsed = parse_catalog(&xml).unwrap();
            assert_eq!(parsed, schema_for(kind), "{kind}");
        }
    }

    #[test]
    fn sensor_schema_has_paper_attributes() {
        let s = schema_for(DeviceKind::Sensor);
        // The example query uses s.accel_x and s.loc (§2.2).
        assert!(s.index_of("accel_x").is_some());
        assert!(s.index_of("loc").is_some());
        // Battery voltage is classified sensory (§3.2).
        assert_eq!(s.require("battery").unwrap().kind(), AttrKind::Sensory);
        assert_eq!(s.require("loc").unwrap().kind(), AttrKind::NonSensory);
    }

    #[test]
    fn camera_schema_exposes_head_position() {
        let s = schema_for(DeviceKind::Camera);
        // Zoom level is explicitly called out as sensory in §3.2.
        assert_eq!(s.require("zoom").unwrap().kind(), AttrKind::Sensory);
        assert_eq!(s.require("ip").unwrap().kind(), AttrKind::NonSensory);
    }

    #[test]
    fn catalog_records_acquire_pointers() {
        let xml = catalog_for(DeviceKind::Phone);
        assert!(xml.contains("builtin::phone::read_in_coverage"), "{xml}");
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(parse_catalog("<nope/>").is_err());
        assert!(parse_catalog(r#"<device_catalog device="widget"/>"#).is_err());
        assert!(parse_catalog(
            r#"<device_catalog device="phone"><attribute name="x" type="INT" category="odd"/></device_catalog>"#
        )
        .is_err());
        assert!(parse_catalog(
            r#"<device_catalog device="phone"><attribute type="INT" category="sensory"/></device_catalog>"#
        )
        .is_err());
    }
}
