//! # aorta-device — simulated heterogeneous devices
//!
//! The paper's testbed had AXIS 2130 PTZ network cameras, Berkeley MICA2
//! motes (MTS310CA sensor boards) and MMS-capable phones. For all scheduling
//! experiments the authors themselves used "a homegrown camera simulator …
//! tuned through extensive tests on the real cameras" (§6.3); this crate is
//! that simulator, plus mote and phone equivalents:
//!
//! * [`Camera`] — pan/tilt/zoom kinematics calibrated so a `photo()` action
//!   costs between **0.36 s and 5.36 s** depending on head travel (the range
//!   the paper reports), with interference semantics for unsynchronized
//!   concurrent commands and a load-dependent failure model,
//! * [`Mote`] — sensory attributes (acceleration, temperature, light,
//!   battery), multi-hop depth, lossy radio, and a spike model that generates
//!   the *events* that trigger action-embedded queries,
//! * [`Phone`] — an SMS/MMS sink with a two-state coverage (reachability)
//!   model,
//! * [`OpCostTable`] — per-device-type atomic-operation cost tables with the
//!   paper's `atomic_operation_cost.xml` on-disk format,
//! * [`PervasiveLab`] — the paper's experimental floor plan (two
//!   ceiling-mounted cameras, ten motes at places of interest) as a reusable
//!   fixture.
//!
//! # Example
//!
//! ```
//! use aorta_device::{Camera, CameraSpec, PhotoSize};
//! use aorta_data::Location;
//!
//! let cam = Camera::ceiling_mounted(0, Location::new(2.0, 3.0, 3.0));
//! let target = cam.aim_at(&Location::new(4.0, 1.0, 1.0));
//! let cost = cam.estimate_photo_cost(cam.rest_position(), target, PhotoSize::Medium);
//! assert!(cost >= CameraSpec::axis_2130().capture_time(PhotoSize::Medium));
//! ```

#![warn(missing_docs)]

mod camera;
mod id;
mod lab;
mod op;
mod phone;
mod profile;
pub mod pushdown;
mod rfid;
mod sensor;
mod status;

pub use camera::{
    Camera, CameraFailureModel, CameraSpec, PhotoError, PhotoOutcome, PhotoRecord, PhotoSize,
    PtzPosition,
};
pub use id::{DeviceId, DeviceKind};
pub use lab::PervasiveLab;
pub use op::{AtomicCost, OpCostTable};
pub use phone::{CoverageModel, MessageKind, Phone};
pub use profile::{catalog_for, parse_catalog};
pub use rfid::{RfidReader, TagSchedule};
pub use sensor::{Mote, MoteReading, SpikeModel};
pub use status::PhysicalStatus;
