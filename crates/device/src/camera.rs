//! The PTZ network-camera simulator.
//!
//! The paper ran all scheduling experiments on "a homegrown camera simulator
//! … tuned through extensive tests on the real cameras" (AXIS 2130 PTZ,
//! §6.3). This module is that simulator: pan/tilt/zoom kinematics whose
//! `photo()` execution time spans the paper's reported **[0.36 s, 5.36 s]**
//! range depending on head travel, plus the failure and interference
//! behaviour §4 and §6.2 describe (blurred photos, wrong positions,
//! connection timeouts under concurrent unsynchronized commands).

use std::collections::VecDeque;
use std::fmt;

use aorta_data::Location;
use aorta_sim::{SimDuration, SimRng, SimTime};

use crate::{DeviceId, PhysicalStatus};

/// A camera head position: pan and tilt in degrees, zoom normalized to
/// `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PtzPosition {
    /// Pan angle, degrees, in the spec's pan range.
    pub pan: f64,
    /// Tilt angle, degrees, in the spec's tilt range.
    pub tilt: f64,
    /// Zoom, normalized to `[0, 1]` of the zoom travel.
    pub zoom: f64,
}

impl PtzPosition {
    /// The home (power-on) position: centred, zoomed out.
    pub const HOME: PtzPosition = PtzPosition {
        pan: 0.0,
        tilt: 0.0,
        zoom: 0.0,
    };

    /// Creates a position.
    pub fn new(pan: f64, tilt: f64, zoom: f64) -> Self {
        PtzPosition { pan, tilt, zoom }
    }

    /// Linear interpolation between two positions (`t` in `[0, 1]`).
    pub fn lerp(&self, other: &PtzPosition, t: f64) -> PtzPosition {
        let t = t.clamp(0.0, 1.0);
        PtzPosition {
            pan: self.pan + (other.pan - self.pan) * t,
            tilt: self.tilt + (other.tilt - self.tilt) * t,
            zoom: self.zoom + (other.zoom - self.zoom) * t,
        }
    }

    /// Angular distance to `other`, per axis `(pan, tilt, zoom)`.
    pub fn axis_distances(&self, other: &PtzPosition) -> (f64, f64, f64) {
        (
            (self.pan - other.pan).abs(),
            (self.tilt - other.tilt).abs(),
            (self.zoom - other.zoom).abs(),
        )
    }
}

impl fmt::Display for PtzPosition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pan={:.1}° tilt={:.1}° zoom={:.2}",
            self.pan, self.tilt, self.zoom
        )
    }
}

/// Requested photo size — an atomic-operation parameter with per-size
/// capture cost ("take a photo of a specified size (small, medium or large)",
/// §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhotoSize {
    /// Small frame.
    Small,
    /// Medium frame — the size the built-in `photo()` action takes (§2.2).
    Medium,
    /// Large frame.
    Large,
}

impl fmt::Display for PhotoSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PhotoSize::Small => "small",
            PhotoSize::Medium => "medium",
            PhotoSize::Large => "large",
        };
        f.write_str(s)
    }
}

impl std::str::FromStr for PhotoSize {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "small" => Ok(PhotoSize::Small),
            "medium" => Ok(PhotoSize::Medium),
            "large" => Ok(PhotoSize::Large),
            other => Err(format!("unknown photo size '{other}'")),
        }
    }
}

/// Kinematic and timing parameters of a camera model.
///
/// The default [`CameraSpec::axis_2130`] calibration makes the slowest
/// single-axis full travel take 5.0 s, so the cost of a medium `photo()` is
/// `0.36 s` (capture only) to `5.36 s` (full travel plus capture) — exactly
/// the range the paper samples action costs from in §6.3.
#[derive(Debug, Clone, PartialEq)]
pub struct CameraSpec {
    /// Pan travel limits, degrees.
    pub pan_range: (f64, f64),
    /// Tilt travel limits, degrees.
    pub tilt_range: (f64, f64),
    /// Pan angular speed, degrees/second.
    pub pan_speed: f64,
    /// Tilt angular speed, degrees/second.
    pub tilt_speed: f64,
    /// Zoom travel speed, normalized units/second.
    pub zoom_speed: f64,
    /// Capture latency for a small photo.
    pub capture_small: SimDuration,
    /// Capture latency for a medium photo.
    pub capture_medium: SimDuration,
    /// Capture latency for a large photo.
    pub capture_large: SimDuration,
    /// TCP connect + handshake latency.
    pub connect_time: SimDuration,
    /// Maximum distance at which a subject is usable, metres.
    pub view_range_m: f64,
    /// Mechanical timing variance: actual head-movement time is scaled by a
    /// uniform factor in `[1-j, 1+j]`. Zero (the default) gives exact
    /// kinematics; the cost-model-accuracy experiment (E6) enables it.
    pub move_jitter_frac: f64,
}

impl CameraSpec {
    /// Calibration matching the AXIS 2130 PTZ cameras of the paper's lab.
    pub fn axis_2130() -> Self {
        CameraSpec {
            pan_range: (-170.0, 170.0),
            tilt_range: (-90.0, 10.0),
            pan_speed: 68.0,  // 340° full travel in 5.0 s
            tilt_speed: 20.0, // 100° full travel in 5.0 s
            zoom_speed: 0.2,  // full zoom travel in 5.0 s
            capture_small: SimDuration::from_millis(240),
            capture_medium: SimDuration::from_millis(360),
            capture_large: SimDuration::from_millis(540),
            connect_time: SimDuration::from_millis(50),
            view_range_m: 12.0,
            move_jitter_frac: 0.0,
        }
    }

    /// Enables mechanical timing jitter, builder style.
    ///
    /// # Panics
    ///
    /// Panics if `frac` is not in `[0, 1)`.
    pub fn with_move_jitter(mut self, frac: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&frac),
            "jitter fraction must be in [0,1)"
        );
        self.move_jitter_frac = frac;
        self
    }

    /// Capture latency for a photo size.
    pub fn capture_time(&self, size: PhotoSize) -> SimDuration {
        match size {
            PhotoSize::Small => self.capture_small,
            PhotoSize::Medium => self.capture_medium,
            PhotoSize::Large => self.capture_large,
        }
    }

    /// Time to move the head between two positions.
    ///
    /// The three axes move in parallel (as on the real hardware), so the
    /// movement time is the maximum over axes.
    pub fn movement_time(&self, from: &PtzPosition, to: &PtzPosition) -> SimDuration {
        let (dp, dt, dz) = from.axis_distances(to);
        let secs = (dp / self.pan_speed)
            .max(dt / self.tilt_speed)
            .max(dz / self.zoom_speed);
        SimDuration::from_secs_f64(secs)
    }

    /// Full `photo()` execution time: head movement plus capture.
    pub fn photo_time(&self, from: &PtzPosition, to: &PtzPosition, size: PhotoSize) -> SimDuration {
        self.movement_time(from, to) + self.capture_time(size)
    }

    /// Clamps a position into the travel limits.
    pub fn clamp(&self, p: PtzPosition) -> PtzPosition {
        PtzPosition {
            pan: p.pan.clamp(self.pan_range.0, self.pan_range.1),
            tilt: p.tilt.clamp(self.tilt_range.0, self.tilt_range.1),
            zoom: p.zoom.clamp(0.0, 1.0),
        }
    }

    /// True when `p` lies within the travel limits (small tolerance).
    pub fn in_range(&self, p: &PtzPosition) -> bool {
        const EPS: f64 = 1e-9;
        p.pan >= self.pan_range.0 - EPS
            && p.pan <= self.pan_range.1 + EPS
            && p.tilt >= self.tilt_range.0 - EPS
            && p.tilt <= self.tilt_range.1 + EPS
            && (-EPS..=1.0 + EPS).contains(&p.zoom)
    }
}

/// Stochastic failure parameters of a camera.
#[derive(Debug, Clone, PartialEq)]
pub struct CameraFailureModel {
    /// Probability that a connection attempt times out, independent of load.
    pub connect_loss: f64,
    /// Probability that a command sent to a *busy* camera is outright
    /// rejected ("when a camera is busy with the first action, it will fail
    /// to execute the second action", §4).
    pub busy_reject: f64,
    /// Additional connect-failure probability per unit of recent utilization
    /// (the paper attributes the residual ~10% failure rate under
    /// synchronization to "the heavy workload caused by the ten queries
    /// continuously operating on the two cameras", §6.2).
    pub stress_factor: f64,
    /// Length of the sliding utilization window.
    pub stress_window: SimDuration,
}

impl CameraFailureModel {
    /// Calibration reproducing the §6.2 failure rates (~10% under load with
    /// synchronization).
    pub fn axis_default() -> Self {
        CameraFailureModel {
            connect_loss: 0.02,
            busy_reject: 0.4,
            stress_factor: 0.5,
            stress_window: SimDuration::from_secs(60),
        }
    }

    /// A perfectly reliable camera (used by the scheduling experiments,
    /// which study makespan rather than failures).
    pub fn reliable() -> Self {
        CameraFailureModel {
            connect_loss: 0.0,
            busy_reject: 0.0,
            stress_factor: 0.0,
            stress_window: SimDuration::from_secs(60),
        }
    }
}

/// How a photo turned out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhotoOutcome {
    /// Sharp photo of the requested target.
    Ok,
    /// The head was redirected during capture → blurred photo (§4).
    Blurred,
    /// The head was redirected during movement → photo of the wrong
    /// position (§4).
    WrongPosition,
}

/// Why a photo command failed before producing any photo.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhotoError {
    /// The connection to the camera timed out.
    ConnectTimeout,
    /// The camera was busy and rejected the command.
    BusyRejected,
    /// The requested head position is outside the camera's travel limits.
    OutOfRange,
}

impl fmt::Display for PhotoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PhotoError::ConnectTimeout => "connection to camera timed out",
            PhotoError::BusyRejected => "camera is busy and rejected the command",
            PhotoError::OutOfRange => "target position is outside camera travel limits",
        };
        f.write_str(s)
    }
}

impl std::error::Error for PhotoError {}

/// A completed or in-flight photo.
#[derive(Debug, Clone, PartialEq)]
pub struct PhotoRecord {
    /// Sequence number on this camera.
    pub seq: u64,
    /// When the command was accepted.
    pub requested_at: SimTime,
    /// When the photo completes (head settled + capture done).
    pub completes_at: SimTime,
    /// The requested head position.
    pub target: PtzPosition,
    /// Requested size.
    pub size: PhotoSize,
    /// How it turned out (may be downgraded retroactively by interference).
    pub outcome: PhotoOutcome,
}

#[derive(Debug, Clone)]
struct InFlight {
    start: SimTime,
    from: PtzPosition,
    target: PtzPosition,
    move_end: SimTime,
    record: usize,
}

/// A simulated PTZ network camera.
///
/// The camera itself enforces **no synchronization** — that is the engine's
/// job (§4). Sending it a command while busy triggers the interference
/// semantics the paper observed: the in-flight photo is retroactively
/// downgraded to [`PhotoOutcome::Blurred`] (if capturing) or
/// [`PhotoOutcome::WrongPosition`] (if still moving), and the new command
/// proceeds from wherever the head happens to be.
///
/// # Example
///
/// ```
/// use aorta_device::{Camera, PhotoSize};
/// use aorta_data::Location;
/// use aorta_sim::{SimRng, SimTime};
///
/// let mut cam = Camera::ceiling_mounted(0, Location::new(0.0, 0.0, 3.0));
/// let mut rng = SimRng::seed(1);
/// let target = cam.aim_at(&Location::new(2.0, 2.0, 1.0));
/// let ticket = cam.begin_photo(SimTime::ZERO, target, PhotoSize::Medium, &mut rng)?;
/// assert!(ticket.completes_at > SimTime::ZERO);
/// # Ok::<(), aorta_device::PhotoError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Camera {
    id: DeviceId,
    spec: CameraSpec,
    mount: Location,
    /// Bearing (degrees from +x axis) that pan=0 points at.
    orientation: f64,
    failure: CameraFailureModel,
    position: PtzPosition,
    busy_until: SimTime,
    in_flight: Option<InFlight>,
    busy_intervals: VecDeque<(SimTime, SimTime)>,
    photos: Vec<PhotoRecord>,
}

impl Camera {
    /// Creates a camera with explicit parameters.
    pub fn new(
        index: u32,
        spec: CameraSpec,
        mount: Location,
        orientation: f64,
        failure: CameraFailureModel,
    ) -> Self {
        Camera {
            id: DeviceId::camera(index),
            spec,
            mount,
            orientation,
            failure,
            position: PtzPosition::HOME,
            busy_until: SimTime::ZERO,
            in_flight: None,
            busy_intervals: VecDeque::new(),
            photos: Vec::new(),
        }
    }

    /// An AXIS-2130-class camera mounted on the ceiling at `mount`, facing
    /// the +x direction, with the default failure model.
    pub fn ceiling_mounted(index: u32, mount: Location) -> Self {
        Camera::new(
            index,
            CameraSpec::axis_2130(),
            mount,
            0.0,
            CameraFailureModel::axis_default(),
        )
    }

    /// Replaces the failure model (builder style).
    pub fn with_failure(mut self, failure: CameraFailureModel) -> Self {
        self.failure = failure;
        self
    }

    /// The device ID.
    pub fn id(&self) -> DeviceId {
        self.id
    }

    /// The camera's spec.
    pub fn spec(&self) -> &CameraSpec {
        &self.spec
    }

    /// The mount location.
    pub fn mount(&self) -> Location {
        self.mount
    }

    /// The head position the camera will rest at once the current command
    /// (if any) finishes. This is what a probe reports and what the cost
    /// model should plan from.
    pub fn rest_position(&self) -> PtzPosition {
        self.position
    }

    /// The instantaneous head position at `now` (interpolated mid-movement).
    pub fn position_at(&self, now: SimTime) -> PtzPosition {
        match &self.in_flight {
            Some(f) if now < f.move_end => {
                let total = (f.move_end - f.start).as_micros() as f64;
                let done = (now.saturating_duration_since(f.start)).as_micros() as f64;
                let t = if total <= 0.0 { 1.0 } else { done / total };
                f.from.lerp(&f.target, t)
            }
            _ => self.position,
        }
    }

    /// True while a command is executing at `now`.
    pub fn is_busy(&self, now: SimTime) -> bool {
        now < self.busy_until
    }

    /// The head position required to aim at `loc`, with zoom auto-tuned to
    /// the subject distance (§6.1: cameras "automatically tune \[their\] zoom
    /// level based on the distance").
    ///
    /// The result is *not* clamped; use [`Camera::covers`] to check
    /// feasibility or [`CameraSpec::clamp`] to force it into range.
    pub fn aim_at(&self, loc: &Location) -> PtzPosition {
        let bearing = self.mount.bearing_to(loc);
        let mut pan = bearing - self.orientation;
        // Normalize to (-180, 180].
        while pan > 180.0 {
            pan -= 360.0;
        }
        while pan <= -180.0 {
            pan += 360.0;
        }
        let tilt = self.mount.elevation_to(loc);
        let dist = self.mount.distance(loc);
        let zoom = (dist / self.spec.view_range_m).clamp(0.0, 1.0);
        PtzPosition::new(pan, tilt, zoom)
    }

    /// True when `loc` is inside this camera's view range — the
    /// `coverage(camera_id, location)` Boolean of the paper's example query.
    pub fn covers(&self, loc: &Location) -> bool {
        self.mount.distance(loc) <= self.spec.view_range_m && self.spec.in_range(&self.aim_at(loc))
    }

    /// Pure cost estimate for a photo from `from` to `target` (what the
    /// engine's cost model computes from the action profile).
    pub fn estimate_photo_cost(
        &self,
        from: PtzPosition,
        target: PtzPosition,
        size: PhotoSize,
    ) -> SimDuration {
        self.spec.photo_time(&from, &target, size)
    }

    /// Fraction of the failure-model window the camera has been busy.
    pub fn utilization(&self, now: SimTime) -> f64 {
        let window = self.failure.stress_window;
        if window.is_zero() {
            return 0.0;
        }
        let window_start = now - window;
        let mut busy = SimDuration::ZERO;
        // Recorded intervals extend to each command's completion time, so
        // clamping to `now` also covers the still-running command.
        for &(s, e) in &self.busy_intervals {
            let s = s.max(window_start);
            let e = e.min(now);
            if e > s {
                busy += e - s;
            }
        }
        (busy.as_secs_f64() / window.as_secs_f64()).clamp(0.0, 1.0)
    }

    /// Probes the camera: samples base connection loss only and returns the
    /// rest-position status on success (§4's probing mechanism).
    pub fn probe(&self, _now: SimTime, rng: &mut SimRng) -> Option<PhysicalStatus> {
        if rng.chance(self.failure.connect_loss) {
            None
        } else {
            Some(PhysicalStatus::CameraHead(self.position))
        }
    }

    /// Sends a `photo()` command at `now`.
    ///
    /// On success returns the record of the accepted photo (retrievable
    /// later via [`Camera::photos`]; its `outcome` may still be downgraded
    /// by a subsequent interfering command).
    ///
    /// # Errors
    ///
    /// * [`PhotoError::OutOfRange`] — target outside travel limits,
    /// * [`PhotoError::ConnectTimeout`] — sampled connection failure
    ///   (probability grows with recent utilization),
    /// * [`PhotoError::BusyRejected`] — sampled rejection by a busy camera.
    pub fn begin_photo(
        &mut self,
        now: SimTime,
        target: PtzPosition,
        size: PhotoSize,
        rng: &mut SimRng,
    ) -> Result<PhotoRecord, PhotoError> {
        if !self.spec.in_range(&target) {
            return Err(PhotoError::OutOfRange);
        }
        let p_connect = (self.failure.connect_loss
            + self.failure.stress_factor * self.utilization(now))
        .clamp(0.0, 1.0);
        if rng.chance(p_connect) {
            return Err(PhotoError::ConnectTimeout);
        }

        let mut start_pos = self.position;
        if self.is_busy(now) {
            if rng.chance(self.failure.busy_reject) {
                return Err(PhotoError::BusyRejected);
            }
            // Interference: the in-flight photo is ruined and the new
            // command starts from wherever the head happens to be.
            start_pos = self.position_at(now);
            if let Some(f) = self.in_flight.take() {
                let ruined = if now < f.move_end {
                    PhotoOutcome::WrongPosition
                } else {
                    PhotoOutcome::Blurred
                };
                self.photos[f.record].outcome = ruined;
                // Truncate the previous busy interval at the takeover point.
                if let Some(last) = self.busy_intervals.back_mut() {
                    if last.1 > now {
                        last.1 = now;
                    }
                }
            }
        }

        let mut move_time = self.spec.movement_time(&start_pos, &target);
        if self.spec.move_jitter_frac > 0.0 {
            let j = self.spec.move_jitter_frac;
            move_time = move_time.mul_f64(1.0 - j + 2.0 * j * rng.unit());
        }
        let move_end = now + move_time;
        let end = move_end + self.spec.capture_time(size);
        let record_idx = self.photos.len();
        let record = PhotoRecord {
            seq: record_idx as u64,
            requested_at: now,
            completes_at: end,
            target,
            size,
            outcome: PhotoOutcome::Ok,
        };
        self.photos.push(record.clone());
        self.in_flight = Some(InFlight {
            start: now,
            from: start_pos,
            target,
            move_end,
            record: record_idx,
        });
        self.position = target;
        self.busy_until = end;
        self.push_busy_interval(now, end);
        Ok(record)
    }

    fn push_busy_interval(&mut self, start: SimTime, end: SimTime) {
        self.busy_intervals.push_back((start, end));
        // Prune intervals that can no longer intersect the stress window.
        let horizon = start - self.failure.stress_window - self.failure.stress_window;
        while let Some(&(_, e)) = self.busy_intervals.front() {
            if e < horizon && self.busy_intervals.len() > 1 {
                self.busy_intervals.pop_front();
            } else {
                break;
            }
        }
    }

    /// All photos commanded so far (including ruined ones), oldest first.
    pub fn photos(&self) -> &[PhotoRecord] {
        &self.photos
    }

    /// Count of photos with the given outcome.
    pub fn count_outcome(&self, outcome: PhotoOutcome) -> usize {
        self.photos.iter().filter(|p| p.outcome == outcome).count()
    }

    /// Forces the head to a position immediately (test/setup helper).
    pub fn force_position(&mut self, p: PtzPosition) {
        self.position = p;
        self.in_flight = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn reliable_cam() -> Camera {
        Camera::ceiling_mounted(0, Location::new(0.0, 0.0, 3.0))
            .with_failure(CameraFailureModel::reliable())
    }

    #[test]
    fn photo_cost_matches_paper_range() {
        let spec = CameraSpec::axis_2130();
        let min = spec.photo_time(&PtzPosition::HOME, &PtzPosition::HOME, PhotoSize::Medium);
        assert_eq!(min, SimDuration::from_millis(360), "paper minimum 0.36s");
        let far_a = PtzPosition::new(-170.0, 0.0, 0.0);
        let far_b = PtzPosition::new(170.0, 0.0, 0.0);
        let max = spec.photo_time(&far_a, &far_b, PhotoSize::Medium);
        assert_eq!(max, SimDuration::from_millis(5360), "paper maximum 5.36s");
    }

    #[test]
    fn axes_move_in_parallel() {
        let spec = CameraSpec::axis_2130();
        let from = PtzPosition::HOME;
        let to = PtzPosition::new(68.0, 20.0, 0.2); // 1s on every axis
        assert_eq!(spec.movement_time(&from, &to), SimDuration::from_secs(1));
        let to2 = PtzPosition::new(136.0, 20.0, 0.2); // pan dominates: 2s
        assert_eq!(spec.movement_time(&from, &to2), SimDuration::from_secs(2));
    }

    #[test]
    fn aim_at_computes_pan_tilt_zoom() {
        let cam = reliable_cam();
        // Subject 3m east, 2m below the mount.
        let p = cam.aim_at(&Location::new(3.0, 0.0, 1.0));
        assert!((p.pan - 0.0).abs() < 1e-9);
        assert!(p.tilt < 0.0, "camera looks down, got {}", p.tilt);
        assert!(p.zoom > 0.0 && p.zoom < 1.0);
        // Subject to the north: pan 90.
        let p = cam.aim_at(&Location::new(0.0, 3.0, 3.0));
        assert!((p.pan - 90.0).abs() < 1e-9);
        assert_eq!(p.tilt, 0.0);
    }

    #[test]
    fn orientation_shifts_pan() {
        let cam = Camera::new(
            0,
            CameraSpec::axis_2130(),
            Location::ORIGIN,
            90.0,
            CameraFailureModel::reliable(),
        );
        let p = cam.aim_at(&Location::new(0.0, 3.0, 0.0));
        assert!(
            (p.pan - 0.0).abs() < 1e-9,
            "north is pan 0 when oriented north"
        );
    }

    #[test]
    fn coverage_respects_distance_and_travel() {
        let cam = reliable_cam();
        assert!(cam.covers(&Location::new(4.0, 2.0, 1.0)));
        assert!(!cam.covers(&Location::new(100.0, 0.0, 1.0)), "too far");
        // Straight up is outside the tilt range (max +10°).
        assert!(!cam.covers(&Location::new(0.0, 0.0, 8.0)));
    }

    #[test]
    fn successful_photo_updates_position_and_busy() {
        let mut cam = reliable_cam();
        let mut rng = SimRng::seed(1);
        let target = PtzPosition::new(34.0, -10.0, 0.1);
        let rec = cam
            .begin_photo(SimTime::ZERO, target, PhotoSize::Medium, &mut rng)
            .unwrap();
        // 34° pan at 68°/s = 0.5s move (dominates), + 0.36s capture.
        assert_eq!(rec.completes_at, SimTime::from_micros(860_000));
        assert!(cam.is_busy(SimTime::from_micros(500_000)));
        assert!(!cam.is_busy(SimTime::from_micros(900_000)));
        assert_eq!(cam.rest_position(), target);
        assert_eq!(cam.count_outcome(PhotoOutcome::Ok), 1);
    }

    #[test]
    fn sequence_dependent_cost() {
        let cam = reliable_cam();
        let near = PtzPosition::new(10.0, 0.0, 0.0);
        let far = PtzPosition::new(160.0, 0.0, 0.0);
        let from_home_to_near = cam.estimate_photo_cost(PtzPosition::HOME, near, PhotoSize::Medium);
        let from_far_to_near = cam.estimate_photo_cost(far, near, PhotoSize::Medium);
        assert!(
            from_far_to_near > from_home_to_near,
            "cost must depend on the starting head position"
        );
    }

    #[test]
    fn interference_ruins_in_flight_photo() {
        let mut cam = reliable_cam();
        let mut rng = SimRng::seed(2);
        let t1 = PtzPosition::new(150.0, 0.0, 0.0); // long move: ~2.2s
        let first = cam
            .begin_photo(SimTime::ZERO, t1, PhotoSize::Medium, &mut rng)
            .unwrap();
        assert_eq!(first.outcome, PhotoOutcome::Ok);
        // Second command arrives mid-movement.
        let t2 = PtzPosition::new(-30.0, 0.0, 0.0);
        let second = cam
            .begin_photo(
                SimTime::from_micros(1_000_000),
                t2,
                PhotoSize::Medium,
                &mut rng,
            )
            .unwrap();
        assert_eq!(cam.photos()[0].outcome, PhotoOutcome::WrongPosition);
        assert_eq!(second.outcome, PhotoOutcome::Ok);
        assert_eq!(cam.count_outcome(PhotoOutcome::Ok), 1);
        // The new command started from the interpolated position (~68°),
        // so its move is shorter than from 150°.
        let dur = second.completes_at - SimTime::from_micros(1_000_000);
        let from_interp =
            cam.spec()
                .photo_time(&PtzPosition::new(68.0, 0.0, 0.0), &t2, PhotoSize::Medium);
        let diff = dur.max(from_interp) - dur.min(from_interp);
        assert!(
            diff <= SimDuration::from_micros(5),
            "expected ~{from_interp}, got {dur}"
        );
    }

    #[test]
    fn interference_during_capture_blurs() {
        let mut cam = reliable_cam();
        let mut rng = SimRng::seed(3);
        let t1 = PtzPosition::new(6.8, 0.0, 0.0); // 0.1s move + 0.36 capture
        cam.begin_photo(SimTime::ZERO, t1, PhotoSize::Medium, &mut rng)
            .unwrap();
        // Arrives during the capture phase (after 0.1s move).
        let t2 = PtzPosition::new(0.0, -5.0, 0.0);
        cam.begin_photo(
            SimTime::from_micros(200_000),
            t2,
            PhotoSize::Medium,
            &mut rng,
        )
        .unwrap();
        assert_eq!(cam.photos()[0].outcome, PhotoOutcome::Blurred);
    }

    #[test]
    fn busy_reject_and_connect_timeout() {
        let mut cam = reliable_cam().with_failure(CameraFailureModel {
            connect_loss: 0.0,
            busy_reject: 1.0,
            stress_factor: 0.0,
            stress_window: SimDuration::from_secs(60),
        });
        let mut rng = SimRng::seed(4);
        cam.begin_photo(
            SimTime::ZERO,
            PtzPosition::new(100.0, 0.0, 0.0),
            PhotoSize::Medium,
            &mut rng,
        )
        .unwrap();
        let err = cam
            .begin_photo(
                SimTime::from_micros(10),
                PtzPosition::HOME,
                PhotoSize::Medium,
                &mut rng,
            )
            .unwrap_err();
        assert_eq!(err, PhotoError::BusyRejected);

        let mut cam2 = reliable_cam().with_failure(CameraFailureModel {
            connect_loss: 1.0,
            busy_reject: 0.0,
            stress_factor: 0.0,
            stress_window: SimDuration::from_secs(60),
        });
        let err = cam2
            .begin_photo(
                SimTime::ZERO,
                PtzPosition::HOME,
                PhotoSize::Medium,
                &mut rng,
            )
            .unwrap_err();
        assert_eq!(err, PhotoError::ConnectTimeout);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut cam = reliable_cam();
        let mut rng = SimRng::seed(5);
        let err = cam
            .begin_photo(
                SimTime::ZERO,
                PtzPosition::new(200.0, 0.0, 0.0),
                PhotoSize::Medium,
                &mut rng,
            )
            .unwrap_err();
        assert_eq!(err, PhotoError::OutOfRange);
        assert!(cam.photos().is_empty());
    }

    #[test]
    fn utilization_grows_under_load() {
        let mut cam = reliable_cam();
        let mut rng = SimRng::seed(6);
        assert_eq!(cam.utilization(SimTime::ZERO), 0.0);
        let rec = cam
            .begin_photo(
                SimTime::ZERO,
                PtzPosition::new(170.0, 0.0, 0.0),
                PhotoSize::Medium,
                &mut rng,
            )
            .unwrap();
        let after = rec.completes_at + SimDuration::from_secs(1);
        let u = cam.utilization(after);
        // ~2.86s busy inside the 60s window.
        assert!(u > 0.03 && u < 0.06, "got {u}");
    }

    #[test]
    fn probe_returns_rest_position() {
        let cam = reliable_cam();
        let mut rng = SimRng::seed(7);
        let st = cam.probe(SimTime::ZERO, &mut rng).unwrap();
        assert_eq!(st.as_camera_head(), Some(PtzPosition::HOME));
    }

    #[test]
    fn position_interpolates_mid_move() {
        let mut cam = reliable_cam();
        let mut rng = SimRng::seed(8);
        cam.begin_photo(
            SimTime::ZERO,
            PtzPosition::new(68.0, 0.0, 0.0),
            PhotoSize::Medium,
            &mut rng,
        )
        .unwrap(); // 1s move
        let mid = cam.position_at(SimTime::from_micros(500_000));
        assert!((mid.pan - 34.0).abs() < 1e-6, "got {}", mid.pan);
        let done = cam.position_at(SimTime::from_micros(2_000_000));
        assert_eq!(done.pan, 68.0);
    }

    proptest! {
        /// photo() cost is always within the paper's [0.36, 5.36]s bounds for
        /// medium photos between in-range positions.
        #[test]
        fn prop_cost_in_paper_bounds(
            p1 in -170.0..170.0f64, t1 in -90.0..10.0f64, z1 in 0.0..1.0f64,
            p2 in -170.0..170.0f64, t2 in -90.0..10.0f64, z2 in 0.0..1.0f64,
        ) {
            let spec = CameraSpec::axis_2130();
            let cost = spec.photo_time(
                &PtzPosition::new(p1, t1, z1),
                &PtzPosition::new(p2, t2, z2),
                PhotoSize::Medium,
            );
            prop_assert!(cost >= SimDuration::from_millis(360));
            prop_assert!(cost <= SimDuration::from_millis(5360));
        }

        /// Movement time is a metric: symmetric and satisfies the triangle
        /// inequality (needed for nearest-target greedy sequencing to be
        /// well-behaved).
        #[test]
        fn prop_movement_metric(
            a in -170.0..170.0f64, b in -170.0..170.0f64, c in -170.0..170.0f64,
        ) {
            let spec = CameraSpec::axis_2130();
            let pa = PtzPosition::new(a, 0.0, 0.0);
            let pb = PtzPosition::new(b, 0.0, 0.0);
            let pc = PtzPosition::new(c, 0.0, 0.0);
            prop_assert_eq!(spec.movement_time(&pa, &pb), spec.movement_time(&pb, &pa));
            let direct = spec.movement_time(&pa, &pc);
            let via = spec.movement_time(&pa, &pb) + spec.movement_time(&pb, &pc);
            prop_assert!(direct <= via + aorta_sim::SimDuration::from_micros(2));
        }

        /// aim_at always yields a coverable position for points well inside
        /// the view range, below the mount, and in front of the camera
        /// (points behind it fall into the ±10° wedge outside pan travel).
        #[test]
        fn prop_aim_in_range_for_floor_targets(x in 0.5..5.0f64, y in -5.0..5.0f64) {
            let cam = Camera::ceiling_mounted(0, Location::new(0.0, 0.0, 3.0));
            let target = Location::new(x, y, 1.0);
            prop_assert!(cam.covers(&target));
            let aim = cam.aim_at(&target);
            prop_assert!(cam.spec().in_range(&aim));
        }
    }
}

#[cfg(test)]
mod edge_case_tests {
    use super::*;

    #[test]
    fn tilt_dominated_movement() {
        let spec = CameraSpec::axis_2130();
        // 2° of pan but 60° of tilt: tilt (20°/s → 3 s) dominates.
        let t = spec.movement_time(
            &PtzPosition::new(0.0, -60.0, 0.0),
            &PtzPosition::new(2.0, 0.0, 0.0),
        );
        assert_eq!(t, SimDuration::from_secs(3));
    }

    #[test]
    fn zoom_dominated_movement() {
        let spec = CameraSpec::axis_2130();
        // Full zoom travel at 0.2/s = 5 s, dwarfing 10° of pan.
        let t = spec.movement_time(
            &PtzPosition::new(0.0, 0.0, 0.0),
            &PtzPosition::new(10.0, 0.0, 1.0),
        );
        assert_eq!(t, SimDuration::from_secs(5));
    }

    #[test]
    fn photo_sizes_order_capture_cost() {
        let spec = CameraSpec::axis_2130();
        let home = PtzPosition::HOME;
        let small = spec.photo_time(&home, &home, PhotoSize::Small);
        let medium = spec.photo_time(&home, &home, PhotoSize::Medium);
        let large = spec.photo_time(&home, &home, PhotoSize::Large);
        assert!(small < medium && medium < large);
        assert_eq!("medium".parse::<PhotoSize>(), Ok(PhotoSize::Medium));
        assert!("huge".parse::<PhotoSize>().is_err());
    }

    #[test]
    fn clamp_pins_out_of_range_targets() {
        let spec = CameraSpec::axis_2130();
        let clamped = spec.clamp(PtzPosition::new(500.0, -200.0, 3.0));
        assert_eq!(clamped.pan, 170.0);
        assert_eq!(clamped.tilt, -90.0);
        assert_eq!(clamped.zoom, 1.0);
        assert!(spec.in_range(&clamped));
    }

    #[test]
    fn triple_interference_ruins_both_predecessors() {
        let mut cam = Camera::ceiling_mounted(0, Location::new(0.0, 0.0, 3.0))
            .with_failure(CameraFailureModel::reliable());
        let mut rng = SimRng::seed(90);
        // Three long moves, each interrupting the previous mid-flight.
        cam.begin_photo(
            SimTime::ZERO,
            PtzPosition::new(160.0, 0.0, 0.0),
            PhotoSize::Medium,
            &mut rng,
        )
        .unwrap();
        cam.begin_photo(
            SimTime::from_micros(500_000),
            PtzPosition::new(-160.0, 0.0, 0.0),
            PhotoSize::Medium,
            &mut rng,
        )
        .unwrap();
        cam.begin_photo(
            SimTime::from_micros(1_000_000),
            PtzPosition::new(0.0, -45.0, 0.0),
            PhotoSize::Medium,
            &mut rng,
        )
        .unwrap();
        assert_eq!(
            cam.count_outcome(PhotoOutcome::Ok),
            1,
            "only the last survives"
        );
        assert_eq!(
            cam.count_outcome(PhotoOutcome::WrongPosition)
                + cam.count_outcome(PhotoOutcome::Blurred),
            2
        );
    }

    #[test]
    fn jittered_movement_stays_within_bounds() {
        let spec = CameraSpec::axis_2130().with_move_jitter(0.1);
        let mut cam = Camera::new(
            0,
            spec.clone(),
            Location::ORIGIN,
            0.0,
            CameraFailureModel::reliable(),
        );
        let mut rng = SimRng::seed(91);
        let target = PtzPosition::new(68.0, 0.0, 0.0); // nominal 1s move
        let mut t = SimTime::ZERO;
        for _ in 0..100 {
            cam.force_position(PtzPosition::HOME);
            let rec = cam
                .begin_photo(t, target, PhotoSize::Medium, &mut rng)
                .unwrap();
            let dur = (rec.completes_at - t).as_secs_f64();
            assert!((1.26..=1.47).contains(&dur), "got {dur}");
            t = rec.completes_at + SimDuration::from_secs(1);
        }
    }
}
