//! Atomic operations and their cost tables.
//!
//! "We define an atomic operation as the smallest unit of operation that a
//! type of devices can perform … for each type of devices, there is also an
//! `atomic_operation_cost.xml` file included in its profiles" (§3.1). The
//! engine's cost model composes these entries, per the action profile, into
//! whole-action cost estimates.

use std::collections::BTreeMap;

use aorta_sim::SimDuration;
use aorta_xml::{Document, Element};

use crate::camera::{CameraSpec, PhotoSize};
use crate::DeviceKind;

/// The estimated cost of one atomic operation.
///
/// Most operations have a fixed cost ("an atomic operation has almost the
/// same cost on devices of the same type", §3.1). Head movement is *rated*:
/// its cost is per unit of travel, which is how the physical-status
/// dependence of `photo()` enters the cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomicCost {
    /// A fixed duration per invocation.
    Fixed(SimDuration),
    /// A duration per unit of travel (e.g. per degree of pan).
    PerUnit(SimDuration),
}

impl AtomicCost {
    /// Evaluates the cost for `units` of travel (ignored for fixed costs).
    pub fn evaluate(self, units: f64) -> SimDuration {
        match self {
            AtomicCost::Fixed(d) => d,
            AtomicCost::PerUnit(d) => d.mul_f64(units.max(0.0)),
        }
    }
}

/// The per-device-type atomic-operation cost table
/// (`atomic_operation_cost.xml`).
///
/// # Example
///
/// ```
/// use aorta_device::{DeviceKind, OpCostTable};
///
/// let table = OpCostTable::defaults_for(DeviceKind::Camera);
/// let xml = table.to_xml();
/// let parsed = OpCostTable::from_xml(&xml)?;
/// assert_eq!(parsed, table);
/// # Ok::<(), String>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpCostTable {
    kind: DeviceKind,
    ops: BTreeMap<String, AtomicCost>,
}

impl OpCostTable {
    /// An empty table for a device kind.
    pub fn new(kind: DeviceKind) -> Self {
        OpCostTable {
            kind,
            ops: BTreeMap::new(),
        }
    }

    /// The table pre-populated with the measured defaults for a kind —
    /// the values our "homegrown measurement programs" (the simulators'
    /// specs) produce.
    pub fn defaults_for(kind: DeviceKind) -> Self {
        let mut t = OpCostTable::new(kind);
        match kind {
            DeviceKind::Camera => {
                let spec = CameraSpec::axis_2130();
                t.set("connect", AtomicCost::Fixed(spec.connect_time));
                // Per-degree pan cost: 1/pan_speed seconds.
                t.set(
                    "move_head_pan",
                    AtomicCost::PerUnit(SimDuration::from_secs_f64(1.0 / spec.pan_speed)),
                );
                t.set(
                    "move_head_tilt",
                    AtomicCost::PerUnit(SimDuration::from_secs_f64(1.0 / spec.tilt_speed)),
                );
                t.set(
                    "zoom",
                    AtomicCost::PerUnit(SimDuration::from_secs_f64(1.0 / spec.zoom_speed)),
                );
                t.set(
                    "capture_small",
                    AtomicCost::Fixed(spec.capture_time(PhotoSize::Small)),
                );
                t.set(
                    "capture_medium",
                    AtomicCost::Fixed(spec.capture_time(PhotoSize::Medium)),
                );
                t.set(
                    "capture_large",
                    AtomicCost::Fixed(spec.capture_time(PhotoSize::Large)),
                );
                t.set(
                    "transfer_photo",
                    AtomicCost::Fixed(SimDuration::from_millis(200)),
                );
            }
            DeviceKind::Sensor => {
                // Rated per hop: deeper motes cost more to reach (§2.3's
                // "the depth of a sensor in a multi-hop network affects the
                // cost of connecting the sensor").
                t.set(
                    "connect_hop",
                    AtomicCost::PerUnit(SimDuration::from_millis(30)),
                );
                t.set("read_attr", AtomicCost::Fixed(SimDuration::from_millis(20)));
                t.set("beep", AtomicCost::Fixed(SimDuration::from_millis(50)));
                t.set("blink", AtomicCost::Fixed(SimDuration::from_millis(50)));
            }
            DeviceKind::Phone => {
                t.set("connect", AtomicCost::Fixed(SimDuration::from_millis(1500)));
                t.set(
                    "receive_sms",
                    AtomicCost::Fixed(SimDuration::from_millis(800)),
                );
                t.set("receive_mms", AtomicCost::Fixed(SimDuration::from_secs(4)));
            }
            DeviceKind::Rfid => {
                t.set("connect", AtomicCost::Fixed(SimDuration::from_millis(20)));
                t.set(
                    "scan_inventory",
                    AtomicCost::Fixed(SimDuration::from_millis(80)),
                );
                t.set(
                    "write_tag",
                    AtomicCost::Fixed(SimDuration::from_millis(150)),
                );
            }
        }
        t
    }

    /// The device kind this table describes.
    pub fn kind(&self) -> DeviceKind {
        self.kind
    }

    /// Adds or replaces an operation's cost.
    pub fn set(&mut self, op: impl Into<String>, cost: AtomicCost) {
        self.ops.insert(op.into(), cost);
    }

    /// Looks up an operation's cost.
    pub fn get(&self, op: &str) -> Option<AtomicCost> {
        self.ops.get(op).copied()
    }

    /// Looks up an operation's cost.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing operation.
    pub fn require(&self, op: &str) -> Result<AtomicCost, String> {
        self.get(op).ok_or_else(|| {
            format!(
                "no atomic operation '{}' for device kind '{}'",
                op, self.kind
            )
        })
    }

    /// Iterates over `(name, cost)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, AtomicCost)> {
        self.ops.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Number of operations in the table.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Serializes to the `atomic_operation_cost.xml` format.
    pub fn to_xml(&self) -> String {
        let mut root =
            Element::new("atomic_operation_cost").with_attr("device", self.kind.to_string());
        for (name, cost) in &self.ops {
            let op = match cost {
                AtomicCost::Fixed(d) => Element::new("op")
                    .with_attr("name", name.clone())
                    .with_attr("kind", "fixed")
                    .with_attr("cost_us", d.as_micros().to_string()),
                AtomicCost::PerUnit(d) => Element::new("op")
                    .with_attr("name", name.clone())
                    .with_attr("kind", "per_unit")
                    .with_attr("cost_us", d.as_micros().to_string()),
            };
            root.push_child(aorta_xml::Node::Element(op));
        }
        Document::new(root).to_pretty_string()
    }

    /// Parses the `atomic_operation_cost.xml` format.
    ///
    /// # Errors
    ///
    /// Returns a message on XML syntax errors, an unknown device kind,
    /// missing/unparseable attributes, or an unknown cost kind.
    pub fn from_xml(xml: &str) -> Result<OpCostTable, String> {
        let doc = Document::parse(xml).map_err(|e| e.to_string())?;
        let root = doc.root();
        if root.name() != "atomic_operation_cost" {
            return Err(format!(
                "expected <atomic_operation_cost>, found <{}>",
                root.name()
            ));
        }
        let kind: DeviceKind = root
            .attr("device")
            .ok_or("missing 'device' attribute")?
            .parse()?;
        let mut table = OpCostTable::new(kind);
        for op in root.children_named("op") {
            let name = op
                .attr("name")
                .ok_or("an <op> is missing its 'name' attribute")?;
            let us: u64 = op.attr_parse("cost_us")?;
            let d = SimDuration::from_micros(us);
            let cost = match op.attr("kind").unwrap_or("fixed") {
                "fixed" => AtomicCost::Fixed(d),
                "per_unit" => AtomicCost::PerUnit(d),
                other => return Err(format!("unknown cost kind '{other}' for op '{name}'")),
            };
            table.set(name, cost);
        }
        Ok(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_cover_expected_ops() {
        let cam = OpCostTable::defaults_for(DeviceKind::Camera);
        for op in [
            "connect",
            "move_head_pan",
            "move_head_tilt",
            "zoom",
            "capture_medium",
            "transfer_photo",
        ] {
            assert!(cam.get(op).is_some(), "missing {op}");
        }
        assert!(OpCostTable::defaults_for(DeviceKind::Sensor)
            .get("beep")
            .is_some());
        assert!(OpCostTable::defaults_for(DeviceKind::Phone)
            .get("receive_mms")
            .is_some());
    }

    #[test]
    fn rated_cost_matches_camera_spec() {
        let cam = OpCostTable::defaults_for(DeviceKind::Camera);
        // 68 degrees of pan at 68°/s = 1s.
        let cost = cam.get("move_head_pan").unwrap().evaluate(68.0);
        assert!((cost.as_secs_f64() - 1.0).abs() < 0.001, "got {cost}");
        // Fixed cost ignores units.
        let cap = cam.get("capture_medium").unwrap();
        assert_eq!(cap.evaluate(999.0), SimDuration::from_millis(360));
    }

    #[test]
    fn negative_units_clamp_to_zero() {
        let c = AtomicCost::PerUnit(SimDuration::from_millis(10));
        assert_eq!(c.evaluate(-5.0), SimDuration::ZERO);
    }

    #[test]
    fn xml_round_trip_all_kinds() {
        for kind in DeviceKind::ALL {
            let table = OpCostTable::defaults_for(kind);
            let parsed = OpCostTable::from_xml(&table.to_xml()).unwrap();
            assert_eq!(parsed, table, "{kind}");
        }
    }

    #[test]
    fn from_xml_rejects_malformed() {
        assert!(OpCostTable::from_xml("not xml").is_err());
        assert!(OpCostTable::from_xml("<wrong/>").is_err());
        assert!(OpCostTable::from_xml(r#"<atomic_operation_cost device="toaster"/>"#).is_err());
        assert!(OpCostTable::from_xml(
            r#"<atomic_operation_cost device="camera"><op name="x" kind="weird" cost_us="1"/></atomic_operation_cost>"#
        )
        .is_err());
        assert!(OpCostTable::from_xml(
            r#"<atomic_operation_cost device="camera"><op cost_us="1"/></atomic_operation_cost>"#
        )
        .is_err());
    }

    #[test]
    fn require_names_the_missing_op() {
        let t = OpCostTable::new(DeviceKind::Phone);
        let err = t.require("teleport").unwrap_err();
        assert!(err.contains("teleport") && err.contains("phone"), "{err}");
    }

    #[test]
    fn iter_is_name_ordered() {
        let t = OpCostTable::defaults_for(DeviceKind::Sensor);
        let names: Vec<&str> = t.iter().map(|(n, _)| n).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        assert_eq!(t.len(), names.len());
        assert!(!t.is_empty());
    }
}
