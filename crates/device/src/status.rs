//! Device physical status.

use std::fmt;

use crate::camera::PtzPosition;

/// The current physical status of a device, as gathered by a probe (§4).
///
/// "An action execution may change the current physical status of the device
/// and in turn the cost of subsequent action executions" — for cameras the
/// relevant status is the head position; for sensors the depth in the
/// multi-hop network; for phones whether the owner is in coverage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PhysicalStatus {
    /// A camera's head position (pan, tilt, zoom).
    CameraHead(PtzPosition),
    /// A sensor's depth (hop count from the base station) and battery volts.
    SensorLink {
        /// Hops from the base station.
        depth: u8,
        /// Battery voltage.
        battery_volts: f64,
    },
    /// Whether a phone is currently inside provider coverage.
    PhoneCoverage {
        /// True when reachable.
        in_coverage: bool,
    },
    /// An RFID reader's field occupancy.
    RfidField {
        /// Tags currently detected in the field.
        tags_in_range: u32,
    },
}

impl PhysicalStatus {
    /// The camera head position, if this is camera status.
    pub fn as_camera_head(&self) -> Option<PtzPosition> {
        match self {
            PhysicalStatus::CameraHead(p) => Some(*p),
            _ => None,
        }
    }

    /// The sensor depth, if this is sensor status.
    pub fn as_sensor_depth(&self) -> Option<u8> {
        match self {
            PhysicalStatus::SensorLink { depth, .. } => Some(*depth),
            _ => None,
        }
    }

    /// Phone coverage, if this is phone status.
    pub fn as_phone_coverage(&self) -> Option<bool> {
        match self {
            PhysicalStatus::PhoneCoverage { in_coverage } => Some(*in_coverage),
            _ => None,
        }
    }
}

impl fmt::Display for PhysicalStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhysicalStatus::CameraHead(p) => write!(f, "head at {p}"),
            PhysicalStatus::SensorLink {
                depth,
                battery_volts,
            } => write!(f, "depth {depth}, {battery_volts:.2}V"),
            PhysicalStatus::PhoneCoverage { in_coverage } => {
                write!(
                    f,
                    "{}",
                    if *in_coverage {
                        "in coverage"
                    } else {
                        "out of coverage"
                    }
                )
            }
            PhysicalStatus::RfidField { tags_in_range } => {
                write!(f, "{tags_in_range} tags in field")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_are_kind_specific() {
        let cam = PhysicalStatus::CameraHead(PtzPosition::HOME);
        assert!(cam.as_camera_head().is_some());
        assert!(cam.as_sensor_depth().is_none());
        assert!(cam.as_phone_coverage().is_none());

        let sensor = PhysicalStatus::SensorLink {
            depth: 3,
            battery_volts: 2.9,
        };
        assert_eq!(sensor.as_sensor_depth(), Some(3));

        let phone = PhysicalStatus::PhoneCoverage { in_coverage: false };
        assert_eq!(phone.as_phone_coverage(), Some(false));
    }

    #[test]
    fn display_is_human_readable() {
        let s = PhysicalStatus::SensorLink {
            depth: 2,
            battery_volts: 3.0,
        };
        assert_eq!(s.to_string(), "depth 2, 3.00V");
        assert_eq!(
            PhysicalStatus::PhoneCoverage { in_coverage: true }.to_string(),
            "in coverage"
        );
    }
}
