//! The pervasive-lab fixture (§6.1).
//!
//! "The experiments involved … two AXIS 2130 PTZ network cameras, and ten
//! Berkeley MICA2 motes with MTS310CA sensor boards. The two cameras were
//! mounted on the ceiling of the pervasive lab. The ten motes were put at
//! ten different places of interest in the lab. The location of each mote
//! was in the view range of at least one camera."

use aorta_data::Location;
use aorta_sim::{SimDuration, SimRng};

use crate::camera::{Camera, CameraFailureModel};
use crate::phone::Phone;
use crate::sensor::{Mote, SpikeModel};

/// The standard experimental floor plan: an 8 m × 6 m lab, two
/// ceiling-mounted cameras, ten motes at places of interest, one manager
/// phone.
///
/// # Example
///
/// ```
/// use aorta_device::PervasiveLab;
///
/// let lab = PervasiveLab::standard();
/// assert_eq!(lab.cameras.len(), 2);
/// assert_eq!(lab.motes.len(), 10);
/// // Every mote is in the view range of at least one camera (§6.1).
/// for mote in &lab.motes {
///     assert!(lab.cameras.iter().any(|c| c.covers(&mote.location())));
/// }
/// ```
#[derive(Debug, Clone)]
pub struct PervasiveLab {
    /// Ceiling-mounted PTZ cameras.
    pub cameras: Vec<Camera>,
    /// Motes at the places of interest.
    pub motes: Vec<Mote>,
    /// The manager's phone (receives `sendphoto()` MMS messages).
    pub phones: Vec<Phone>,
}

impl PervasiveLab {
    /// Room extent, metres.
    pub const ROOM: (f64, f64) = (8.0, 6.0);
    /// Ceiling height, metres.
    pub const CEILING: f64 = 3.0;

    /// The paper's §6.1/§6.2 setup: 2 cameras, 10 motes, 1 phone.
    pub fn standard() -> Self {
        PervasiveLab::with_sizes(2, 10, 1)
    }

    /// A lab with the given number of cameras, motes and phones.
    ///
    /// Cameras spread along the room's long axis on the ceiling; motes form
    /// a grid of "places of interest" on the walls/furniture at 1 m height.
    pub fn with_sizes(cameras: usize, motes: usize, phones: usize) -> Self {
        let (w, h) = Self::ROOM;
        let cams = (0..cameras)
            .map(|i| {
                let frac = (i as f64 + 0.5) / cameras as f64;
                // Oriented north so the ±10° dead wedge behind the pan range
                // points at the south wall rather than across the room.
                Camera::new(
                    i as u32,
                    crate::camera::CameraSpec::axis_2130(),
                    Location::new(w * frac, h / 2.0, Self::CEILING),
                    90.0,
                    CameraFailureModel::axis_default(),
                )
            })
            .collect();
        let cols = (motes as f64).sqrt().ceil().max(1.0) as usize;
        let rows = motes.div_ceil(cols);
        let mote_list = (0..motes)
            .map(|i| {
                let c = i % cols;
                let r = i / cols;
                let x = w * (c as f64 + 0.5) / cols as f64;
                let y = h * (r as f64 + 0.5) / rows.max(1) as f64;
                Mote::new(i as u32, Location::new(x, y, 1.0), 1 + (i % 3) as u8)
            })
            .collect();
        let phone_list = (0..phones)
            .map(|i| Phone::new(i as u32, format!("852-5555-{:04}", i)))
            .collect();
        PervasiveLab {
            cameras: cams,
            motes: mote_list,
            phones: phone_list,
        }
    }

    /// Makes every camera perfectly reliable (scheduling experiments).
    pub fn with_reliable_cameras(mut self) -> Self {
        self.cameras = self
            .cameras
            .into_iter()
            .map(|c| c.with_failure(CameraFailureModel::reliable()))
            .collect();
        self
    }

    /// Configures mote `i` to spike every `period` (the §6.2 workload), with
    /// per-mote phase offsets spread by `stagger`.
    pub fn with_periodic_events(mut self, period: SimDuration, stagger: SimDuration) -> Self {
        self.motes = self
            .motes
            .into_iter()
            .enumerate()
            .map(|(i, m)| {
                m.with_spikes(SpikeModel::Periodic {
                    period,
                    offset: stagger * i as u64,
                    width: SimDuration::from_secs(2),
                })
            })
            .collect();
        self
    }

    /// Random target locations on the lab floor — the workload generator
    /// used by the scheduling experiments.
    pub fn random_floor_targets(&self, n: usize, rng: &mut SimRng) -> Vec<Location> {
        let (w, h) = Self::ROOM;
        (0..n)
            .map(|_| Location::new(rng.unit() * w, rng.unit() * h, 0.5 + rng.unit()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_lab_matches_paper_setup() {
        let lab = PervasiveLab::standard();
        assert_eq!(lab.cameras.len(), 2);
        assert_eq!(lab.motes.len(), 10);
        assert_eq!(lab.phones.len(), 1);
    }

    #[test]
    fn every_mote_covered_by_some_camera() {
        let lab = PervasiveLab::standard();
        for mote in &lab.motes {
            assert!(
                lab.cameras.iter().any(|c| c.covers(&mote.location())),
                "mote {} at {} uncovered",
                mote.id(),
                mote.location()
            );
        }
    }

    #[test]
    fn scaled_lab_covers_motes_too() {
        let lab = PervasiveLab::with_sizes(10, 30, 2);
        assert_eq!(lab.cameras.len(), 10);
        assert_eq!(lab.motes.len(), 30);
        for mote in &lab.motes {
            assert!(lab.cameras.iter().any(|c| c.covers(&mote.location())));
        }
    }

    #[test]
    fn devices_have_distinct_ids_and_positions() {
        let lab = PervasiveLab::standard();
        let mut ids: Vec<_> = lab.motes.iter().map(|m| m.id()).collect();
        ids.dedup();
        assert_eq!(ids.len(), 10);
        let c0 = lab.cameras[0].mount();
        let c1 = lab.cameras[1].mount();
        assert!(c0.distance(&c1) > 1.0, "cameras should be spread out");
    }

    #[test]
    fn periodic_events_stagger() {
        let lab = PervasiveLab::standard()
            .with_periodic_events(SimDuration::from_mins(1), SimDuration::from_secs(3));
        use aorta_sim::SimTime;
        assert!(lab.motes[0].spike_active(SimTime::ZERO));
        assert!(!lab.motes[5].spike_active(SimTime::ZERO));
        assert!(lab.motes[5].spike_active(SimTime::ZERO + SimDuration::from_secs(15)));
    }

    #[test]
    fn floor_targets_inside_room() {
        let lab = PervasiveLab::standard();
        let mut rng = SimRng::seed(9);
        for t in lab.random_floor_targets(100, &mut rng) {
            assert!((0.0..=8.0).contains(&t.x));
            assert!((0.0..=6.0).contains(&t.y));
            assert!(t.z < PervasiveLab::CEILING);
        }
    }

    #[test]
    fn reliable_cameras_never_fail_connect() {
        let lab = PervasiveLab::standard().with_reliable_cameras();
        let mut rng = SimRng::seed(10);
        use aorta_sim::SimTime;
        for _ in 0..100 {
            assert!(lab.cameras[0].probe(SimTime::ZERO, &mut rng).is_some());
        }
    }
}
